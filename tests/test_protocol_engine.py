"""Tests for the generator scheduler: round sharing, Fork, failure modes."""

import gc
import random
import weakref

import pytest

from repro.ncc.errors import ProtocolError
from repro.ncc.message import msg
from repro.primitives.protocol import (
    Fork,
    InboxView,
    Scheduler,
    fresh_ns,
    idle,
    ns_state,
    run_protocol,
    take,
    take_one,
)

from tests.conftest import make_net


def test_single_protocol_counts_rounds():
    net = make_net(4)

    def proto():
        yield []
        yield []
        return "done"

    assert run_protocol(net, proto()) == "done"
    assert net.rounds == 2


def test_fork_children_share_rounds():
    net = make_net(4)

    def child(k):
        for _ in range(k):
            yield []
        return k

    def parent():
        results = yield Fork([child(3), child(5), child(2)])
        return results

    results = run_protocol(net, parent())
    assert results == [3, 5, 2]
    # Concurrent children share rounds: total == the longest child.
    assert net.rounds == 5


def test_nested_forks():
    net = make_net(4)

    def leaf(k):
        for _ in range(k):
            yield []
        return k

    def mid():
        out = yield Fork([leaf(2), leaf(4)])
        return sum(out)

    def top():
        out = yield Fork([mid(), mid(), leaf(1)])
        return out

    assert run_protocol(net, top()) == [6, 6, 1]
    assert net.rounds == 4


def test_fork_with_immediate_returns():
    net = make_net(4)

    def instant():
        return 7
        yield  # pragma: no cover

    def parent():
        out = yield Fork([instant(), instant()])
        return out

    assert run_protocol(net, parent()) == [7, 7]
    assert net.rounds == 0


def test_empty_fork():
    net = make_net(4)

    def parent():
        out = yield Fork([])
        return out

    assert run_protocol(net, parent()) == []


def test_messages_flow_between_concurrent_tasks():
    net = make_net(4)
    ids = list(net.node_ids)

    def sender():
        yield [(ids[0], ids[1], msg("ping", data=(5,)))]
        return "sent"

    def receiver():
        inboxes = yield []
        got = take_one(inboxes, ids[1], "ping")
        return got.data[0] if got else None

    results = Scheduler(net).run(sender(), receiver())
    assert results == ["sent", 5]
    assert net.rounds == 1


def test_yield_from_sequential_composition():
    net = make_net(4)

    def inner():
        yield []
        return 1

    def outer():
        a = yield from inner()
        b = yield from inner()
        return a + b

    assert run_protocol(net, outer()) == 2
    assert net.rounds == 2


def test_bad_yield_type_raises():
    net = make_net(4)

    def proto():
        yield 42

    with pytest.raises(ProtocolError):
        run_protocol(net, proto())


def test_round_budget_enforced():
    net = make_net(4)

    def forever():
        while True:
            yield []

    with pytest.raises(ProtocolError):
        run_protocol(net, forever(), max_rounds=10)


def test_idle_helper():
    net = make_net(4)
    run_protocol(net, idle(3))
    assert net.rounds == 3


def test_take_and_take_one():
    net = make_net(4)
    ids = list(net.node_ids)

    def proto():
        inboxes = yield [
            (ids[0], ids[1], msg("a", data=(1,))),
            (ids[2], ids[1], msg("a", data=(2,))),
        ]
        both = take(inboxes, ids[1], "a")
        assert len(both) == 2
        with pytest.raises(ProtocolError):
            take_one(inboxes, ids[1], "a")
        assert take_one(inboxes, ids[1], "zzz") is None
        return True

    # ids[2] must know ids[1]: it doesn't on the path (knows ids[3]).
    net.grant_knowledge(ids[2], ids[1])
    assert run_protocol(net, proto())


def test_deeply_nested_forks():
    """A 60-deep fork chain completes and shares rounds correctly."""
    net = make_net(4)
    depth = 60

    def nest(level):
        if level == 0:
            yield []
            return 0
        out = yield Fork([nest(level - 1)])
        return out[0] + 1

    assert run_protocol(net, nest(depth)) == depth
    # Only the innermost leaf ever parks on a round barrier.
    assert net.rounds == 1


def test_wide_and_deep_fork_tree_deterministic():
    """A bushy fork tree twice over: identical results and RoundStats."""

    def leaf(k):
        for _ in range(k % 3):
            yield []
        return k

    def node(depth, fanout, k):
        if depth == 0:
            out = yield from leaf(k)
            return out
        out = yield Fork(
            [node(depth - 1, fanout, k * fanout + j) for j in range(fanout)]
        )
        return sum(out)

    snapshots = []
    for _ in range(2):
        net = make_net(4)
        result = run_protocol(net, node(4, 3, 1))
        snapshots.append((result, repr(net.stats()).encode()))
    assert snapshots[0] == snapshots[1]


def test_deadlock_error_path(monkeypatch):
    """The scheduler raises instead of spinning when nothing can advance.

    The condition (a live task that is neither runnable nor parked on a
    round barrier) cannot be produced by well-formed generator protocols
    — every fork child starts runnable and every advance ends in DONE,
    WAITING or BLOCKED-on-runnable-children — so the guard is exercised
    by wedging the root task record into BLOCKED before the loop runs.
    """
    from repro.primitives import protocol as protocol_mod

    class WedgedTask(protocol_mod._Task):
        def __init__(self, gen, parent, child_slot):
            super().__init__(gen, parent, child_slot)
            self.status = protocol_mod._Task.BLOCKED
            self.pending_children = 1

    monkeypatch.setattr(protocol_mod, "_Task", WedgedTask)
    net = make_net(2)
    with pytest.raises(ProtocolError, match="deadlock"):
        protocol_mod.Scheduler(net).run(idle(3))


def test_round_budget_exact_boundary():
    """max_rounds is inclusive: exactly-budget passes, one more raises."""
    net = make_net(4)
    assert run_protocol(net, idle(10), max_rounds=10) is None
    with pytest.raises(ProtocolError, match="round budget"):
        run_protocol(make_net(4), idle(11), max_rounds=10)


def test_completed_task_records_released():
    """Finished children are unlinked mid-run (no unbounded task growth)."""
    net = make_net(4)

    def child():
        yield []
        return None

    gens = [child() for _ in range(8)]
    refs = [weakref.ref(g) for g in gens]

    def parent():
        yield Fork(gens)
        gens.clear()
        gc.collect()
        alive = sum(1 for r in refs if r() is not None)
        assert alive == 0, f"{alive} finished child generators still retained"
        yield []
        return "done"

    assert run_protocol(net, parent()) == "done"


def test_scheduler_stats_byte_identical_multi_root():
    """Concurrent roots through Scheduler.run: byte-identical RoundStats."""
    snapshots = []
    for _ in range(2):
        net = make_net(12)
        ids = list(net.node_ids)
        rng = random.Random(5)

        def chatter(i):
            for r in range(rng.randrange(2, 5)):
                yield [(ids[i], ids[i + 1], msg("c", data=(i, r)))]
            return i

        results = Scheduler(net).run(*(chatter(i) for i in range(4)))
        snapshots.append((results, repr(net.stats()).encode()))
    assert snapshots[0][0] == [0, 1, 2, 3]
    assert snapshots[0] == snapshots[1]


class TestInboxView:
    """The per-round inbox view: dict compatibility + kind index."""

    def _view(self):
        m1 = msg("a", data=(1,)).with_src(7)
        m2 = msg("b", data=(2,)).with_src(8)
        m3 = msg("a", data=(3,)).with_src(9)
        return InboxView({5: [m1, m2, m3]}), (m1, m2, m3)

    def test_behaves_like_the_plain_dict(self):
        view, (m1, m2, m3) = self._view()
        assert view[5] == [m1, m2, m3]
        assert view.get(6) is None
        assert list(view) == [5]

    def test_take_filters_by_kind_in_arrival_order(self):
        view, (m1, _m2, m3) = self._view()
        assert take(view, 5, "a") == [m1, m3]
        assert take(view, 5, "zzz") == []
        assert take(view, 6, "a") == []

    def test_take_one_enforces_uniqueness(self):
        view, (_m1, m2, _m3) = self._view()
        assert take_one(view, 5, "b") is m2
        assert take_one(view, 5, "nope") is None
        with pytest.raises(ProtocolError):
            take_one(view, 5, "a")

    def test_index_is_cached_and_consistent(self):
        view, _ = self._view()
        first = take(view, 5, "a")
        again = take(view, 5, "a")
        assert first is again  # served from the per-node index
        assert view.kind_index(5)["b"] == take(view, 5, "b")

    def test_plain_dict_fallback(self):
        m = msg("k").with_src(3)
        plain = {4: [m]}
        assert take(plain, 4, "k") == [m]
        assert take_one(plain, 4, "k") is m


def test_fresh_ns_unique():
    assert fresh_ns("x") != fresh_ns("x")


def test_ns_state_isolated_per_namespace():
    net = make_net(2)
    v = net.node_ids[0]
    ns_state(net, v, "a")["k"] = 1
    ns_state(net, v, "b")["k"] = 2
    assert ns_state(net, v, "a")["k"] == 1
    assert ns_state(net, v, "b")["k"] == 2
