"""Tests for the generator scheduler: round sharing, Fork, failure modes."""

import pytest

from repro.ncc.errors import ProtocolError
from repro.ncc.message import msg
from repro.primitives.protocol import (
    Fork,
    Scheduler,
    fresh_ns,
    idle,
    ns_state,
    run_protocol,
    take,
    take_one,
)

from tests.conftest import make_net


def test_single_protocol_counts_rounds():
    net = make_net(4)

    def proto():
        yield []
        yield []
        return "done"

    assert run_protocol(net, proto()) == "done"
    assert net.rounds == 2


def test_fork_children_share_rounds():
    net = make_net(4)

    def child(k):
        for _ in range(k):
            yield []
        return k

    def parent():
        results = yield Fork([child(3), child(5), child(2)])
        return results

    results = run_protocol(net, parent())
    assert results == [3, 5, 2]
    # Concurrent children share rounds: total == the longest child.
    assert net.rounds == 5


def test_nested_forks():
    net = make_net(4)

    def leaf(k):
        for _ in range(k):
            yield []
        return k

    def mid():
        out = yield Fork([leaf(2), leaf(4)])
        return sum(out)

    def top():
        out = yield Fork([mid(), mid(), leaf(1)])
        return out

    assert run_protocol(net, top()) == [6, 6, 1]
    assert net.rounds == 4


def test_fork_with_immediate_returns():
    net = make_net(4)

    def instant():
        return 7
        yield  # pragma: no cover

    def parent():
        out = yield Fork([instant(), instant()])
        return out

    assert run_protocol(net, parent()) == [7, 7]
    assert net.rounds == 0


def test_empty_fork():
    net = make_net(4)

    def parent():
        out = yield Fork([])
        return out

    assert run_protocol(net, parent()) == []


def test_messages_flow_between_concurrent_tasks():
    net = make_net(4)
    ids = list(net.node_ids)

    def sender():
        yield [(ids[0], ids[1], msg("ping", data=(5,)))]
        return "sent"

    def receiver():
        inboxes = yield []
        got = take_one(inboxes, ids[1], "ping")
        return got.data[0] if got else None

    results = Scheduler(net).run(sender(), receiver())
    assert results == ["sent", 5]
    assert net.rounds == 1


def test_yield_from_sequential_composition():
    net = make_net(4)

    def inner():
        yield []
        return 1

    def outer():
        a = yield from inner()
        b = yield from inner()
        return a + b

    assert run_protocol(net, outer()) == 2
    assert net.rounds == 2


def test_bad_yield_type_raises():
    net = make_net(4)

    def proto():
        yield 42

    with pytest.raises(ProtocolError):
        run_protocol(net, proto())


def test_round_budget_enforced():
    net = make_net(4)

    def forever():
        while True:
            yield []

    with pytest.raises(ProtocolError):
        run_protocol(net, forever(), max_rounds=10)


def test_idle_helper():
    net = make_net(4)
    run_protocol(net, idle(3))
    assert net.rounds == 3


def test_take_and_take_one():
    net = make_net(4)
    ids = list(net.node_ids)

    def proto():
        inboxes = yield [
            (ids[0], ids[1], msg("a", data=(1,))),
            (ids[2], ids[1], msg("a", data=(2,))),
        ]
        both = take(inboxes, ids[1], "a")
        assert len(both) == 2
        with pytest.raises(ProtocolError):
            take_one(inboxes, ids[1], "a")
        assert take_one(inboxes, ids[1], "zzz") is None
        return True

    # ids[2] must know ids[1]: it doesn't on the path (knows ids[3]).
    net.grant_knowledge(ids[2], ids[1])
    assert run_protocol(net, proto())


def test_fresh_ns_unique():
    assert fresh_ns("x") != fresh_ns("x")


def test_ns_state_isolated_per_namespace():
    net = make_net(2)
    v = net.node_ids[0]
    ns_state(net, v, "a")["k"] = 1
    ns_state(net, v, "b")["k"] = 2
    assert ns_state(net, v, "a")["k"] == 1
    assert ns_state(net, v, "b")["k"] == 2
