"""The batch realization service: envelopes, registry, executor, serve.

Covers request validation and JSON round-trips, scenario materialization
guarantees (determinism, feasibility), all six workload kinds end to
end, the response cache (cached ≡ fresh by determinism), warm-vs-cold
response identity, threaded-vs-sequential identity, and the JSONL
front ends.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.sequential import is_graphic
from repro.sequential.trees import is_tree_realizable
from repro.service import (
    KINDS,
    BatchExecutor,
    NetworkPool,
    RealizationRequest,
    RealizationResponse,
    ServiceError,
    default_registry,
    run_batch_lines,
    serve,
)
from repro.service.registry import DEFAULT_REGISTRY


def request_mix(n: int = 14, seed: int = 2):
    """One request per kind (a small but complete service batch)."""
    return [
        RealizationRequest(kind="degree_implicit", scenario="regular", n=n,
                           seed=seed, request_id="imp"),
        RealizationRequest(kind="degree_explicit", scenario="random_graphic",
                           n=n, seed=seed, request_id="exp"),
        RealizationRequest(kind="degree_envelope", scenario="near_graphic",
                           n=n, seed=seed, request_id="env"),
        RealizationRequest(kind="tree", scenario="tree_random", n=n, seed=seed,
                           request_id="tree"),
        RealizationRequest(kind="connectivity", scenario="rho_uniform", n=n,
                           seed=seed, request_id="conn0"),
        RealizationRequest(kind="connectivity", scenario="rho_uniform", n=n,
                           seed=seed, model="ncc1", request_id="conn1"),
        RealizationRequest(kind="approximate", scenario="regular", n=n,
                           seed=seed, request_id="apx"),
    ]


class TestRequestEnvelope:
    def test_roundtrip_through_dict(self):
        request = RealizationRequest(
            kind="tree", scenario="tree_random", n=12, seed=9,
            engine="reference", tree_variant="max_diameter",
            params=(("spine_degree", 5),), request_id="r1",
        ).validate()
        again = RealizationRequest.from_dict(request.to_dict())
        assert again == request

    def test_inline_degrees_roundtrip(self):
        request = RealizationRequest.from_dict(
            {"kind": "degree_implicit", "degrees": [3, 3, 2, 2, 2], "seed": 4}
        )
        assert request.degrees == (3, 3, 2, 2, 2)
        assert request.size == 5
        assert RealizationRequest.from_dict(request.to_dict()) == request

    def test_rho_alias(self):
        request = RealizationRequest.from_dict(
            {"kind": "connectivity", "rho": [2, 2, 1, 1], "model": "ncc1"}
        )
        assert request.degrees == (2, 2, 1, 1)
        assert request.config().variant.value == "NCC1"

    def test_tree_variant_aliases(self):
        request = RealizationRequest.from_dict(
            {"kind": "tree", "degrees": [1, 1], "tree_variant": "max"}
        )
        assert request.tree_variant == "max_diameter"

    @pytest.mark.parametrize(
        "payload,fragment",
        [
            ({"kind": "nope", "degrees": [1, 1]}, "unknown kind"),
            ({"kind": "tree"}, "exactly one"),
            ({"kind": "tree", "degrees": [1, 1], "scenario": "tree_random",
              "n": 2}, "exactly one"),
            ({"kind": "tree", "scenario": "tree_random"}, "positive 'n'"),
            ({"kind": "tree", "degrees": []}, "non-empty"),
            ({"kind": "tree", "degrees": [1, 1], "n": 3}, "disagrees"),
            ({"kind": "tree", "degrees": [1, 1], "engine": "warp"}, "engine"),
            ({"kind": "tree", "degrees": [1, 1], "sort_fidelity": "psychic"},
             "sort_fidelity"),
            ({"kind": "connectivity", "rho": [1, 1], "model": "ncc9"}, "model"),
            ({"kind": "tree", "degrees": [1, 1], "wat": 1}, "unknown request field"),
            ({"kind": "tree", "degrees": ["x"]}, "integers"),
        ],
    )
    def test_validation_errors(self, payload, fragment):
        with pytest.raises(ServiceError, match=fragment):
            RealizationRequest.from_dict(payload)

    @pytest.mark.parametrize(
        "payload,fragment",
        [
            ({"kind": "degree_implicit", "scenario": "regular", "n": 8,
              "params": {"degree": [3]}}, "scalar"),
            ({"kind": "tree", "degrees": [1, 1], "params": [1, 2]},
             "must be an object"),
            ({"kind": "tree", "degrees": [1, 1], "repairs": "3"}, "repairs"),
            ({"kind": "tree", "degrees": [1, 1], "seed": "x"}, "seed"),
            ({"kind": "tree", "degrees": [1, 1], "n": "2"}, "'n'"),
            ({"kind": "tree", "scenario": "tree_star", "n": True}, "'n'"),
            ({"kind": "tree", "degrees": [1, 1], "seed": True}, "seed"),
            ({"kind": "degree_implicit", "degrees": [2.7, 2.7, 3.4]},
             "integers only"),
            ({"kind": "degree_implicit", "degrees": [2, True]}, "integers only"),
        ],
    )
    def test_malformed_but_parseable_fields_rejected(self, payload, fragment):
        """These used to crash the serve loop (TypeError/AttributeError
        escaping the ServiceError-only handlers) instead of enveloping."""
        with pytest.raises(ServiceError, match=fragment):
            RealizationRequest.from_dict(payload)

    def test_malformed_fields_become_error_responses_in_serve(self):
        lines = "\n".join(
            [
                '{"request_id": "p1", "kind": "tree", "degrees": [1, 1],'
                ' "params": [1, 2]}',
                '{"request_id": "p2", "kind": "tree", "degrees": [1, 1],'
                ' "seed": "x"}',
                '{"request_id": "p3", "kind": "tree", "degrees": [1, 1]}',
            ]
        )
        out = io.StringIO()
        assert serve(io.StringIO(lines), out) == (3, 2)  # the stream survives
        rows = [json.loads(line) for line in out.getvalue().splitlines()]
        assert [r["verdict"] for r in rows] == ["ERROR", "ERROR", "REALIZED"]
        assert [r["request_id"] for r in rows] == ["p1", "p2", "p3"]

    def test_string_degrees_rejected(self):
        # "234" must not be iterated into the degree vector (2, 3, 4).
        with pytest.raises(ServiceError, match="not a string"):
            RealizationRequest.from_dict(
                {"kind": "degree_implicit", "degrees": "234"}
            )

    def test_redundant_n_is_normalised(self):
        with_n = RealizationRequest.from_dict(
            {"kind": "tree", "degrees": [1, 1], "n": 2}
        )
        without_n = RealizationRequest.from_dict(
            {"kind": "tree", "degrees": [1, 1]}
        )
        assert with_n == without_n
        assert with_n.cache_key() == without_n.cache_key()
        assert RealizationRequest.from_dict(with_n.to_dict()) == with_n

    def test_cache_key_ignores_request_id_only(self):
        a = RealizationRequest(kind="tree", scenario="tree_random", n=8,
                               request_id="a")
        b = RealizationRequest(kind="tree", scenario="tree_random", n=8,
                               request_id="b")
        c = RealizationRequest(kind="tree", scenario="tree_random", n=8, seed=1,
                               request_id="a")
        assert a.cache_key() == b.cache_key()
        assert a.cache_key() != c.cache_key()
        assert hash(a.cache_key()) == hash(b.cache_key())

    def test_cache_key_ignores_kind_irrelevant_options(self):
        base = RealizationRequest(kind="degree_implicit", degrees=(2, 2, 2))
        noisy = RealizationRequest(kind="degree_implicit", degrees=(2, 2, 2),
                                   tree_variant="max_diameter", repairs=3,
                                   model="ncc1", explicit_envelope=True)
        assert base.cache_key() == noisy.cache_key()
        # ...but fields the kind consumes still split the key.
        t1 = RealizationRequest(kind="tree", degrees=(2, 1, 1))
        t2 = RealizationRequest(kind="tree", degrees=(2, 1, 1),
                                tree_variant="max_diameter")
        assert t1.cache_key() != t2.cache_key()

    def test_directly_constructed_alias_variant_runs(self):
        # "min"/"max" normalize in __post_init__, not only in from_dict,
        # so the direct-API path reaches realize_tree with a valid name.
        request = RealizationRequest(kind="tree", degrees=(2, 1, 1),
                                     tree_variant="min")
        assert request.tree_variant == "min_diameter"
        response = BatchExecutor().handle(request)
        assert response.verdict == "REALIZED", response.error


class TestScenarioRegistry:
    def test_materialization_is_deterministic_and_cached(self):
        registry = default_registry()
        first = registry.materialize("power_law", 32, seed=5)
        second = registry.materialize("power_law", 32, seed=5)
        assert first == second
        assert registry.cache_hits == 1
        fresh = registry.materialize("power_law", 32, seed=5, use_cache=False)
        assert fresh == first

    @pytest.mark.parametrize(
        "name", ["regular", "random_graphic", "power_law", "concentrated",
                 "star_like", "capacity_classes"]
    )
    def test_degree_scenarios_are_graphic(self, name):
        seq = DEFAULT_REGISTRY.materialize(name, 32, seed=3)
        assert len(seq) == 32
        assert is_graphic(sorted(seq, reverse=True))

    @pytest.mark.parametrize(
        "name", ["tree_random", "tree_star", "tree_path", "tree_caterpillar",
                 "tree_balanced"]
    )
    def test_tree_scenarios_are_tree_realizable(self, name):
        seq = DEFAULT_REGISTRY.materialize(name, 24, seed=3)
        assert len(seq) == 24
        assert is_tree_realizable(list(seq))

    @pytest.mark.parametrize("name", ["rho_uniform", "rho_bimodal",
                                      "rho_power_law", "rho_ranked"])
    def test_rho_scenarios_are_feasible(self, name):
        rho = DEFAULT_REGISTRY.materialize(name, 24, seed=3)
        assert len(rho) == 24
        assert all(0 <= r <= 23 for r in rho)

    def test_params_change_the_instance(self):
        base = DEFAULT_REGISTRY.materialize("regular", 16, seed=0)
        thick = DEFAULT_REGISTRY.materialize("regular", 16, seed=0,
                                             params={"degree": 6})
        assert set(base) == {4} and set(thick) == {6}

    def test_unknown_scenario_and_primitive_rejected(self):
        with pytest.raises(ServiceError, match="unknown scenario"):
            DEFAULT_REGISTRY.materialize("wat", 8)
        with pytest.raises(ServiceError, match="primitive"):
            DEFAULT_REGISTRY.materialize("sorting", 8)

    def test_every_kind_has_a_scenario(self):
        kinds_covered = {s.kind for s in DEFAULT_REGISTRY if not s.is_primitive}
        assert {"degree_implicit", "degree_envelope", "tree",
                "connectivity"} <= kinds_covered


class TestExecutor:
    def test_all_kinds_end_to_end(self):
        executor = BatchExecutor(pool=NetworkPool())
        responses = executor.run(request_mix())
        by_id = {r.request_id: r for r in responses}
        assert len(by_id) == 7
        for rid, response in by_id.items():
            assert response.error is None, (rid, response.error)
        assert by_id["imp"].verdict == "REALIZED"
        assert by_id["exp"].detail and dict(by_id["exp"].detail)["explicit"]
        assert by_id["env"].verdict == "REALIZED"
        assert by_id["tree"].verdict == "REALIZED"
        assert dict(by_id["conn0"].detail)["approximation_ratio"] <= 2.0
        assert dict(by_id["conn1"].detail)["explicit"] is False
        assert by_id["apx"].verdict == "APPROXIMATED"
        assert {r.kind for r in responses} == set(KINDS)

    def test_unrealizable_verdict(self):
        executor = BatchExecutor()
        response = executor.handle(
            RealizationRequest(kind="degree_implicit", degrees=(1, 1, 1))
        )
        assert response.verdict == "UNREALIZABLE" and not response.ok
        assert dict(response.detail)["announced_by"] >= 1

    def test_infeasible_run_becomes_error_response(self):
        executor = BatchExecutor()
        response = executor.handle(
            RealizationRequest(kind="approximate", degrees=(3, 1, 1))  # odd sum
        )
        assert response.verdict == "ERROR" and not response.ok
        assert "even degree sum" in (response.error or "")

    def test_error_responses_are_not_cached(self):
        # An ERROR may be transient (environment failure); a repeat must
        # re-run, not replay a poisoned cache entry.
        executor = BatchExecutor()
        request = RealizationRequest(kind="approximate", degrees=(3, 1, 1))
        first = executor.handle(request)
        second = executor.handle(request)
        assert first.verdict == second.verdict == "ERROR"
        assert not second.cached
        assert executor.response_cache_hits == 0

    def test_response_cache_is_bounded(self):
        executor = BatchExecutor(max_cached_responses=2)
        for size in (8, 10, 12):
            executor.handle(
                RealizationRequest(kind="tree", scenario="tree_star", n=size)
            )
        assert len(executor._response_cache) == 2
        # The oldest entry (n=8) was evicted; re-requesting re-runs it.
        again = executor.handle(
            RealizationRequest(kind="tree", scenario="tree_star", n=8)
        )
        assert not again.cached

    def test_response_cache_hit_is_field_identical(self):
        executor = BatchExecutor(pool=NetworkPool())
        req = RealizationRequest(kind="tree", scenario="tree_random", n=12,
                                 seed=3, request_id="first")
        fresh = executor.handle(req)
        cached = executor.handle(
            RealizationRequest(kind="tree", scenario="tree_random", n=12,
                               seed=3, request_id="second")
        )
        assert not fresh.cached and cached.cached
        assert cached.request_id == "second"
        assert cached.fingerprint() == fresh.fingerprint()
        assert executor.response_cache_hits == 1

    def test_cache_disabled_reruns(self):
        executor = BatchExecutor(pool=NetworkPool(), cache_responses=False)
        req = RealizationRequest(kind="tree", scenario="tree_star", n=10)
        assert not executor.handle(req).cached
        assert not executor.handle(req).cached
        assert executor.response_cache_hits == 0

    def test_warm_equals_cold_fingerprints(self):
        """The service stack must not change any answer."""
        cold = BatchExecutor(pool=None, cache_responses=False,
                             registry=default_registry())
        warm = BatchExecutor(pool=NetworkPool(), cache_responses=True,
                             registry=default_registry())
        batch = request_mix() + request_mix()  # repeats exercise the cache
        cold_fps = [r.fingerprint() for r in cold.run(batch)]
        warm_fps = [r.fingerprint() for r in warm.run(batch)]
        assert warm_fps == cold_fps

    def test_threaded_equals_sequential(self):
        batch = request_mix() + request_mix(n=10, seed=7)
        sequential = BatchExecutor(pool=NetworkPool(), mode="sequential",
                                   registry=default_registry())
        threaded = BatchExecutor(pool=NetworkPool(), mode="threads", workers=3,
                                 registry=default_registry())
        seq_fps = [r.fingerprint() for r in sequential.run(batch)]
        thr_fps = [r.fingerprint() for r in threaded.run(batch)]
        assert thr_fps == seq_fps

    def test_engine_choice_is_bit_identical(self):
        executor = BatchExecutor(pool=NetworkPool())
        fast = executor.handle(
            RealizationRequest(kind="degree_implicit", scenario="power_law",
                               n=16, seed=5, engine="fast")
        )
        reference = executor.handle(
            RealizationRequest(kind="degree_implicit", scenario="power_law",
                               n=16, seed=5, engine="reference")
        )
        assert not reference.cached  # different engine => different key
        assert fast.fingerprint() == reference.fingerprint()

    def test_pool_is_exercised(self):
        pool = NetworkPool()
        executor = BatchExecutor(pool=pool, cache_responses=False)
        req = RealizationRequest(kind="tree", scenario="tree_path", n=10)
        executor.run([req, req, req])
        stats = pool.stats()
        assert stats["constructions"] == 1 and stats["pool_hits"] == 2


class TestJSONLFrontEnds:
    def test_run_batch_lines_preserves_order_and_reports_errors(self):
        lines = [
            '{"request_id": "good", "kind": "tree", "scenario": "tree_star", "n": 8}',
            "not json",
            '{"request_id": "bad", "kind": "wat", "degrees": [1, 1]}',
            "",
            '{"request_id": "good2", "kind": "degree_implicit", "degrees": [2, 2, 2]}',
        ]
        responses = run_batch_lines(lines)
        assert [r.request_id for r in responses] == ["good", "", "bad", "good2"]
        assert [r.verdict for r in responses] == [
            "REALIZED", "ERROR", "ERROR", "REALIZED",
        ]

    def test_serve_loop(self):
        requests = "\n".join(
            [
                '{"request_id": "a", "kind": "tree", "scenario": "tree_star", "n": 8}',
                "garbage",
                '{"request_id": "a2", "kind": "tree", "scenario": "tree_star", "n": 8}',
            ]
        )
        out = io.StringIO()
        handled = serve(io.StringIO(requests), out)
        assert handled == (3, 1)
        rows = [json.loads(line) for line in out.getvalue().splitlines()]
        assert [row["verdict"] for row in rows] == ["REALIZED", "ERROR", "REALIZED"]
        assert rows[2]["cached"] is True
        assert rows[0]["num_edges"] == rows[2]["num_edges"]

    def test_response_roundtrip(self):
        response = run_batch_lines(
            ['{"request_id": "x", "kind": "degree_implicit", "degrees": [2,2,2]}']
        )[0]
        again = RealizationResponse.from_dict(response.to_dict())
        # elapsed_sec is rounded in the JSON form; everything else survives.
        assert again.fingerprint() == response.fingerprint()
        assert again.request_id == response.request_id
