"""Durability: the write-ahead request journal, exactly-once replay,
session resume, and the crash-restart supervisor.

The acceptance properties, layer by layer:

* **Framing** — every record is length+CRC32C framed; recovery after a
  torn tail (partial final write) truncates to the last whole record
  and keeps everything before it; a corrupted record mid-file drops it
  and everything after (no resync heuristics — the journal is the
  source of truth, guessing is worse than losing the tail).
* **Exactly-once** — a duplicate submission carrying the same
  ``idempotency_key`` is answered from the journal, field-identical to
  the original response, without re-execution; this holds within one
  process, across a restart, and across drain modes.
* **Recovery** — ``admitted``-but-not-``completed`` records are
  re-executed exactly once at startup, and their completions are
  journaled against the original admission.
* **Session resume** — a reconnecting client presents its token and
  receives the responses it missed, in order, field-identical.
* **Supervision** — a SIGKILLed server child is respawned with bounded
  seeded backoff, and the composed system (supervisor + journal +
  session resume) delivers every admitted response exactly once even
  with a kill -9 mid-load (the integration test at the bottom).
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import signal
import socket as socket_module
import struct
import subprocess
import sys
import time

import pytest

from repro.service import (
    BatchExecutor,
    FaultPlan,
    FaultRule,
    NetworkPool,
    RealizationRequest,
    RequestJournal,
    ServiceError,
    SocketServer,
    default_registry,
    error_response,
    retry_after_hint,
    supervisor_policy,
)
from repro.service import faults
from repro.service.journal import FSYNC_POLICIES, JournalError
from repro.service.server import (
    ADMISSION_REJECTED,
    RETRY_AFTER_DRAINING_MS,
    SESSION_UNKNOWN,
)
from repro.service.supervise import supervise_loop

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def make_request(request_id, key=None, n=12, seed=1):
    return RealizationRequest(
        request_id=request_id, kind="degree_implicit", scenario="regular",
        n=n, seed=seed, idempotency_key=key,
    )


def make_executor(journal=None, **kwargs):
    return BatchExecutor(
        pool=NetworkPool(), registry=default_registry(), journal=journal,
        **kwargs,
    )


def strip(row):
    """Response fields minus identity and measurement volatiles."""
    if not isinstance(row, dict):
        row = row.to_dict()
    return {k: v for k, v in row.items()
            if k not in ("request_id", "cached", "elapsed_sec", "session_seq")}


def record_offsets(path):
    """Byte offsets of each framed record in a journal file."""
    header = struct.Struct("<II")
    blob = open(path, "rb").read()
    offsets, pos = [], 0
    while pos + header.size <= len(blob):
        length, _ = header.unpack_from(blob, pos)
        offsets.append(pos)
        pos += header.size + length
    return offsets, len(blob)


# --------------------------------------------------------------------- #
# Framing and recovery                                                  #
# --------------------------------------------------------------------- #


class TestJournalFraming:
    def test_round_trip_and_restart_replay(self, tmp_path):
        path = str(tmp_path / "j.bin")
        journal = RequestJournal(path, fsync="never")
        executor = make_executor(journal=journal)
        try:
            fresh = executor.handle(make_request("r1", key="k1"))
            dup = executor.handle(make_request("r1-dup", key="k1"))
        finally:
            executor.close()
            journal.close()
        assert fresh.verdict == "REALIZED"
        assert dup.request_id == "r1-dup"
        assert strip(dup) == strip(fresh)  # replayed, not re-executed
        assert journal.stats()["replays"] == 1
        assert journal.stats()["admitted"] == 1  # the dup never re-admitted

        # A fresh process: replay state is rebuilt from the file alone.
        journal2 = RequestJournal(path, fsync="never")
        executor2 = make_executor(journal=journal2)
        try:
            assert executor2.recover_journal() == {}
            again = executor2.handle(make_request("r1-again", key="k1"))
        finally:
            executor2.close()
            journal2.close()
        assert again.request_id == "r1-again"
        assert strip(again) == strip(fresh)
        assert journal2.stats()["recovered_records"] == 2
        assert journal2.stats()["replays"] == 1

    def test_torn_tail_is_truncated_and_counted(self, tmp_path, capsys):
        path = str(tmp_path / "j.bin")
        journal = RequestJournal(path, fsync="never")
        executor = make_executor(journal=journal)
        try:
            executor.handle(make_request("whole", key="kw"))
        finally:
            executor.close()
            journal.close()
        intact_size = os.path.getsize(path)
        # A torn final write: a frame header promising more payload than
        # the file holds (what a crash mid-write leaves behind).
        with open(path, "ab") as fh:
            fh.write(struct.pack("<II", 1 << 20, 0) + b"torn")
        journal2 = RequestJournal(path, fsync="never")
        try:
            stats = journal2.stats()
            assert stats["torn_tail"] is True
            assert stats["truncated_bytes"] == struct.calcsize("<II") + 4
            assert stats["recovered_records"] == 2  # admitted + completed
            # The file was truncated back to the last whole record.
            assert os.path.getsize(path) == intact_size
            # And the intact prefix still answers replays.
            replay = journal2.replay_idempotent(make_request("dup", key="kw"))
            assert replay is not None and replay.verdict == "REALIZED"
        finally:
            journal2.close()
        assert "torn" in capsys.readouterr().err.lower()

    def test_bad_crc_mid_file_drops_rest(self, tmp_path, capsys):
        path = str(tmp_path / "j.bin")
        journal = RequestJournal(path, fsync="never")
        executor = make_executor(journal=journal)
        try:
            executor.handle(make_request("a", key="ka"))
            executor.handle(make_request("b", key="kb", seed=2))
        finally:
            executor.close()
            journal.close()
        offsets, _ = record_offsets(path)
        assert len(offsets) == 4  # admitted+completed per request
        # Flip one payload byte of record 3 (request b's admission).
        with open(path, "r+b") as fh:
            fh.seek(offsets[2] + struct.calcsize("<II"))
            byte = fh.read(1)
            fh.seek(offsets[2] + struct.calcsize("<II"))
            fh.write(bytes([byte[0] ^ 0xFF]))
        journal2 = RequestJournal(path, fsync="never")
        try:
            stats = journal2.stats()
            assert stats["torn_tail"] is True
            assert stats["recovered_records"] == 2  # only request a's pair
            assert stats["truncated_bytes"] > 0
            assert journal2.replay_idempotent(make_request("x", key="ka"))
            assert journal2.replay_idempotent(make_request("x", key="kb")) is None
        finally:
            journal2.close()
        assert "torn" in capsys.readouterr().err.lower()

    def test_duplicate_completed_records_first_wins(self, tmp_path):
        path = str(tmp_path / "j.bin")
        journal = RequestJournal(path, fsync="never")
        seq = journal.append_admitted(make_request("r", key="k"))
        first = error_response("r", "degree_implicit", "first answer")
        journal.append_completed(seq, first)
        journal.close()
        # A buggy writer double-completes the same admission with a
        # different payload; recovery must keep the first (the one the
        # client may already have acked).
        second = error_response("r", "degree_implicit", "second answer")
        with open(path, "ab") as fh:
            fh.write(RequestJournal._frame(("completed", 99, seq, second.to_wire())))
        journal2 = RequestJournal(path, fsync="never")
        try:
            assert journal2.stats()["duplicate_completions"] == 1
            replay = journal2.replay_idempotent(make_request("dup", key="k"))
            assert replay.error == "first answer"
        finally:
            journal2.close()

    @pytest.mark.parametrize("policy", FSYNC_POLICIES)
    def test_fsync_policies_all_durable_after_flush(self, tmp_path, policy):
        path = str(tmp_path / f"j-{policy}.bin")
        journal = RequestJournal(path, fsync=policy, batch_every=2)
        executor = make_executor(journal=journal)
        try:
            executor.handle(make_request("p", key="kp"))
        finally:
            executor.close()
            journal.close()
        if policy == "always":
            assert journal.stats()["fsyncs"] >= 2  # one per record
        journal2 = RequestJournal(path, fsync=policy)
        try:
            assert journal2.stats()["recovered_records"] == 2
        finally:
            journal2.close()

    def test_unknown_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(JournalError, match="fsync"):
            RequestJournal(str(tmp_path / "j.bin"), fsync="sometimes")

    def test_compaction_shrinks_and_preserves_replay(self, tmp_path):
        path = str(tmp_path / "j.bin")
        journal = RequestJournal(path, fsync="never")
        executor = make_executor(journal=journal)
        try:
            baseline = executor.handle(make_request("c", key="kc"))
            for i in range(5):  # unkeyed traffic only bloats the log
                executor.handle(make_request(f"f{i}", seed=3 + i))
            before = os.path.getsize(path)
            journal.compact()
            after = os.path.getsize(path)
            assert after < before
            assert journal.stats()["compactions"] == 1
            # The compacted log still answers the keyed replay...
            dup = executor.handle(make_request("c-dup", key="kc"))
            assert strip(dup) == strip(baseline)
        finally:
            executor.close()
            journal.close()
        # ...and so does a restart over the compacted file.
        journal2 = RequestJournal(path, fsync="never")
        try:
            replay = journal2.replay_idempotent(make_request("c2", key="kc"))
            assert replay is not None and strip(replay) == strip(baseline)
        finally:
            journal2.close()


# --------------------------------------------------------------------- #
# Idempotency keys                                                      #
# --------------------------------------------------------------------- #


class TestIdempotencyKey:
    @pytest.mark.parametrize("bad", ["", 7, 1.5, True, ("k",)])
    def test_validation_rejects_non_string_keys(self, bad):
        with pytest.raises(ServiceError, match="idempotency_key"):
            make_request("r", key=bad).validate()

    def test_cache_key_neutral(self):
        """The key names the *submission*, not the workload: it must not
        split the response cache."""
        with_key = make_request("a", key="k").cache_key()
        without = make_request("b").cache_key()
        assert with_key == without

    def test_wire_round_trip(self):
        req = make_request("r", key="k-42")
        assert RealizationRequest.from_wire(req.to_wire()).idempotency_key == "k-42"
        assert RealizationRequest.from_dict(req.to_dict()).idempotency_key == "k-42"
        assert make_request("r").to_dict().get("idempotency_key") is None

    def test_threads_mode_replay_is_field_identical(self, tmp_path):
        """Exactly-once holds on the futures drain path too (submit),
        not just the sequential handle path."""
        path = str(tmp_path / "j.bin")
        journal = RequestJournal(path, fsync="never")
        executor = make_executor(journal=journal, mode="threads", workers=2)
        try:
            fresh = executor.submit(make_request("t1", key="kt")).result(timeout=120)
            dup = executor.submit(make_request("t2", key="kt")).result(timeout=120)
        finally:
            executor.close()
            journal.close()
        assert fresh.verdict == "REALIZED"
        assert dup.request_id == "t2"
        assert strip(dup) == strip(fresh)
        assert journal.stats()["admitted"] == 1
        assert journal.stats()["replays"] == 1


# --------------------------------------------------------------------- #
# Recovery of in-flight work                                            #
# --------------------------------------------------------------------- #


class TestRecovery:
    def test_incomplete_admission_re_executed_exactly_once(self, tmp_path):
        path = str(tmp_path / "j.bin")
        # Simulate a crash between admission and completion: the record
        # exists, the response never made it.
        journal = RequestJournal(path, fsync="never")
        journal.append_admitted(make_request("lost", key="kl"), session=("tok", 0))
        journal.close()

        journal2 = RequestJournal(path, fsync="never")
        executor = make_executor(journal=journal2)
        try:
            assert journal2.stats()["recovered_incomplete"] == 1
            sessions = executor.recover_journal()
            # The re-execution was journaled against the original
            # admission: nothing is incomplete any more...
            assert journal2.stats()["incomplete"] == 0
            # ...the session tail carries the recovered response...
            assert list(sessions) == ["tok"]
            (sidx, response), = sessions["tok"]
            assert sidx == 0 and response.verdict == "REALIZED"
            # ...and a duplicate submission replays instead of rerunning.
            dup = executor.handle(make_request("dup", key="kl"))
            assert strip(dup) == strip(response)
            assert executor.stats()["requests_handled"] == 2  # recovery + replay
        finally:
            executor.close()
            journal2.close()

        # A third process sees a fully completed log: nothing to redo.
        journal3 = RequestJournal(path, fsync="never")
        try:
            assert journal3.stats()["recovered_incomplete"] == 0
        finally:
            journal3.close()


# --------------------------------------------------------------------- #
# retry_after_ms                                                        #
# --------------------------------------------------------------------- #


class TestRetryAfter:
    def test_hint_is_deterministic_and_monotone(self):
        values = [retry_after_hint(i, 8) for i in range(9)]
        assert values == [retry_after_hint(i, 8) for i in range(9)]
        assert values == sorted(values)
        assert values[0] >= 1 and values[-1] == 100
        assert retry_after_hint(50, 8) == 100  # saturates at full window

    @pytest.mark.parametrize("bad", [0, -5, 1.5, True, "100"])
    def test_error_response_validates_hint(self, bad):
        with pytest.raises(ValueError, match="retry_after_ms"):
            error_response("r", "stats", "m", retry_after_ms=bad)

    def test_rejection_envelope_carries_hint(self):
        response = error_response(
            "r", "degree_implicit", "window full", code=ADMISSION_REJECTED,
            retry_after_ms=retry_after_hint(4, 4),
        )
        row = response.to_dict()
        assert row["detail"]["retry_after_ms"] == 100
        assert RETRY_AFTER_DRAINING_MS == 1000


# --------------------------------------------------------------------- #
# Session resume over the socket server                                 #
# --------------------------------------------------------------------- #


def run(coro, timeout=120):
    return asyncio.run(asyncio.wait_for(coro, timeout=timeout))


async def send_line(writer, payload):
    writer.write((json.dumps(payload) + "\n").encode())
    await writer.drain()


async def recv_line(reader, timeout=60):
    raw = await asyncio.wait_for(reader.readline(), timeout=timeout)
    assert raw, "connection closed before the expected response"
    return json.loads(raw)


def request_payload(request_id, n=12, seed=1):
    return {"request_id": request_id, "kind": "degree_implicit",
            "scenario": "regular", "n": n, "seed": seed}


class TestSessionResume:
    def test_handshake_resume_replay_and_ack(self, tmp_path):
        journal = RequestJournal(str(tmp_path / "j.bin"), fsync="never")
        executor = make_executor(journal=journal)

        async def scenario():
            server = await SocketServer(executor, port=0, window=8).start()
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            await send_line(writer, {"kind": "session"})
            handshake = await recv_line(reader)
            assert handshake["verdict"] == "SESSION"
            assert handshake["resumed"] is False and handshake["replayed"] == 0
            token = handshake["session"]
            await send_line(writer, request_payload("s0", seed=1))
            await send_line(writer, request_payload("s1", seed=2))
            r0 = await recv_line(reader)
            r1 = await recv_line(reader)
            assert [r0["session_seq"], r1["session_seq"]] == [0, 1]
            writer.close()  # vanish without acking anything
            await writer.wait_closed()

            # Reconnect: client saw s0 but not s1 -> acked=1 replays s1.
            reader2, writer2 = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            await send_line(writer2, {"kind": "session", "session": token,
                                      "acked": 1})
            resumed = await recv_line(reader2)
            assert resumed["resumed"] is True and resumed["replayed"] == 1
            replayed = await recv_line(reader2)
            assert replayed["session_seq"] == 1
            assert strip(replayed) == strip(r1)
            # New traffic continues the sequence after the replay.
            await send_line(writer2, request_payload("s2", seed=3))
            r2 = await recv_line(reader2)
            assert r2["session_seq"] == 2

            # Unknown token: typed error, connection survives.
            await send_line(writer2, {"kind": "session", "session": "feedbeef",
                                      "acked": 0})
            unknown = await recv_line(reader2)
            assert unknown["error_code"] == SESSION_UNKNOWN
            await send_line(writer2, request_payload("s3", seed=4))
            assert (await recv_line(reader2))["verdict"] == "REALIZED"

            writer2.close()
            await writer2.wait_closed()
            server.drain()
            await server.wait_done()
            return server

        server = run(scenario())
        try:
            assert server.sessions_created == 1
            assert server.sessions_resumed == 1
            assert server.session_replayed == 1
        finally:
            executor.close()
            journal.close()

    def test_resume_across_restart_from_journal(self, tmp_path):
        """The durable half: the *replacement* server (fresh process
        state, sessions seeded from the journal) replays the tail."""
        path = str(tmp_path / "j.bin")
        journal = RequestJournal(path, fsync="never")
        executor = make_executor(journal=journal)
        holder = {}

        async def first_life():
            server = await SocketServer(executor, port=0, window=8).start()
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            await send_line(writer, {"kind": "session"})
            holder["token"] = (await recv_line(reader))["session"]
            await send_line(writer, request_payload("r0", seed=5))
            holder["r0"] = await recv_line(reader)
            writer.close()
            await writer.wait_closed()
            server.drain()
            await server.wait_done()

        run(first_life())
        executor.close()
        journal.close()

        journal2 = RequestJournal(path, fsync="never")
        executor2 = make_executor(journal=journal2)
        sessions = executor2.recover_journal()
        assert holder["token"] in sessions

        async def second_life():
            server = await SocketServer(
                executor2, port=0, window=8, sessions=sessions
            ).start()
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            await send_line(writer, {"kind": "session",
                                     "session": holder["token"], "acked": 0})
            resumed = await recv_line(reader)
            assert resumed["resumed"] is True and resumed["replayed"] == 1
            replayed = await recv_line(reader)
            writer.close()
            await writer.wait_closed()
            server.drain()
            await server.wait_done()
            return replayed

        try:
            replayed = run(second_life())
        finally:
            executor2.close()
            journal2.close()
        assert replayed["session_seq"] == 0
        assert strip(replayed) == strip(holder["r0"])


# --------------------------------------------------------------------- #
# Fault actions                                                         #
# --------------------------------------------------------------------- #


class TestFaultActions:
    def test_fsync_error_degrades_but_keeps_serving(self, tmp_path, monkeypatch):
        plan = FaultPlan([FaultRule(action="fsync_error")])
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        faults.clear()
        journal = RequestJournal(str(tmp_path / "j.bin"), fsync="always")
        executor = make_executor(journal=journal)
        try:
            response = executor.handle(make_request("f", key="kf"))
        finally:
            faults.clear()
            executor.close()
            journal.close()
        assert response.verdict == "REALIZED"
        assert journal.stats()["fsync_errors"] >= 2
        assert journal.stats()["fsyncs"] == 0

    def test_state_path_bounds_fires_across_plan_instances(self, tmp_path):
        """max_fires with state_path is a *cross-process* bound: a
        re-parsed plan (what a respawned child does) sees prior fires."""
        state = str(tmp_path / "fires.log")
        plan = FaultPlan([FaultRule(action="crash", max_fires=1)],
                         state_path=state)
        assert plan.match("crash", "r1") is not None
        assert plan.match("crash", "r2") is None  # in-process bound
        # A fresh process re-parses the same JSON plan: without the
        # shared ledger it would fire again; with it, it must not.
        reborn = FaultPlan.from_dict(json.loads(plan.to_json()))
        assert reborn.state_path == state
        assert reborn.match("crash", "r3") is None
        # An unrelated action is unaffected.
        assert reborn.match("fsync_error", "r3") is None  # no such rule

    def test_server_kill_action_is_known(self):
        assert "server_kill" in faults.ACTIONS
        plan = FaultPlan.from_dict(
            {"rules": [{"action": "server_kill", "request_ids": ["x"]}]}
        )
        assert plan.match("server_kill", "x") is not None


# --------------------------------------------------------------------- #
# Supervisor                                                            #
# --------------------------------------------------------------------- #


class _FakeChild:
    def __init__(self, code):
        self.pid = 4242
        self._code = code

    def wait(self):
        return self._code

    def poll(self):
        return self._code

    def send_signal(self, signum):  # pragma: no cover - not exercised
        pass


class TestSupervisorLoop:
    def _run(self, codes, max_restarts=3):
        spawned, slept, out = [], [], []

        class Sink:
            def write(self, text):
                out.append(text)

            def flush(self):
                pass

        def popen(argv):
            spawned.append(list(argv))
            return _FakeChild(codes[len(spawned) - 1])

        rc = supervise_loop(
            ["serve", "--port", "0"], policy=supervisor_policy(seed=7),
            max_restarts=max_restarts, stream=Sink(),
            sleep=slept.append, popen=popen,
        )
        return rc, spawned, slept, "".join(out)

    def test_clean_exit_passes_through(self):
        for code in (0, 1):
            rc, spawned, slept, _ = self._run([code])
            assert rc == code
            assert len(spawned) == 1 and slept == []

    def test_crashes_respawn_with_seeded_backoff_then_clean(self):
        rc, spawned, slept, log = self._run([-9, 137, 0])
        assert rc == 0
        assert len(spawned) == 3
        policy = supervisor_policy(seed=7)
        assert slept == [policy.delay_sec(2), policy.delay_sec(3)]
        assert "respawn 1/3" in log and "respawn 2/3" in log

    def test_restart_bound_gives_up(self):
        rc, spawned, _, log = self._run([-9, -9, -9], max_restarts=2)
        assert rc == 2
        assert len(spawned) == 3  # original + 2 respawns
        assert "giving up" in log

    def test_schedule_matches_delays(self):
        policy = supervisor_policy(seed=3)
        assert policy.schedule(4) == [policy.delay_sec(k) for k in (1, 2, 3, 4)]
        assert policy.schedule(1) == [0.0]

    def test_negative_max_restarts_rejected(self):
        with pytest.raises(ValueError, match="max_restarts"):
            supervise_loop(["x"], max_restarts=-1)


# --------------------------------------------------------------------- #
# Kill -9 integration: supervisor + journal + session resume            #
# --------------------------------------------------------------------- #


class _StderrWatcher:
    def __init__(self, proc):
        self.proc = proc
        self.lines = []

    def expect(self, pattern, timeout=60):
        deadline = time.time() + timeout
        while time.time() < deadline:
            line = self.proc.stderr.readline()
            if not line:
                if self.proc.poll() is not None:
                    break
                time.sleep(0.02)
                continue
            self.lines.append(line)
            match = re.search(pattern, line)
            if match:
                return match
        raise AssertionError(
            f"never saw {pattern!r} in supervisor stderr:\n{''.join(self.lines)}"
        )


def _connect(port):
    sock = socket_module.create_connection(("127.0.0.1", port), timeout=30)
    return sock, sock.makefile("r", encoding="utf-8")


def _send(sock, payload):
    sock.sendall((json.dumps(payload) + "\n").encode())


class TestKillNineIntegration:
    def test_sigkill_mid_load_exactly_once(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        journal_path = str(tmp_path / "journal.bin")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "supervise", "--port", "0",
             "--journal", journal_path, "--fsync", "batch",
             "--max-restarts", "3"],
            stderr=subprocess.PIPE, text=True, env=env, cwd=str(tmp_path),
        )
        watcher = _StderrWatcher(proc)
        try:
            child_pid = int(watcher.expect(r"supervise: child pid (\d+)").group(1))
            port = int(watcher.expect(r"listening on 127\.0\.0\.1:(\d+)").group(1))

            sock, reader = _connect(port)
            _send(sock, {"kind": "session"})
            token = json.loads(reader.readline())["session"]
            _send(sock, {**request_payload("r1", seed=11),
                         "idempotency_key": "once-1"})
            r1 = json.loads(reader.readline())
            assert r1["verdict"] == "REALIZED" and r1["session_seq"] == 0

            os.kill(child_pid, signal.SIGKILL)
            new_pid = int(watcher.expect(r"supervise: child pid (\d+)").group(1))
            assert new_pid != child_pid
            port2 = int(
                watcher.expect(r"listening on 127\.0\.0\.1:(\d+)").group(1)
            )
            sock.close()

            sock2, reader2 = _connect(port2)
            _send(sock2, {"kind": "session", "session": token, "acked": 1})
            resumed = json.loads(reader2.readline())
            assert resumed["resumed"] is True and resumed["replayed"] == 0

            # Exactly-once across the kill: the duplicate is answered
            # from the recovered journal, field-identical, not rerun.
            _send(sock2, {**request_payload("r1-dup", seed=11),
                          "idempotency_key": "once-1"})
            dup = json.loads(reader2.readline())
            assert dup["request_id"] == "r1-dup"
            assert strip(dup) == strip(r1)

            _send(sock2, {"kind": "stats"})
            stats = json.loads(reader2.readline())
            jstats = stats["executor"]["journal"]
            assert jstats["replays"] >= 1
            assert jstats["incomplete"] == 0
            sock2.close()

            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) in (0, 1)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
