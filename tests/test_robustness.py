"""Robustness tests: alternative Gk, tiny networks, failure injection,
model-parameter edges, and moderate-scale stress."""

import pytest

from repro.ncc.config import NCCConfig, Variant
from repro.ncc.errors import MessageTooLarge, NCCError
from repro.ncc.knowledge import cycle_knowledge, random_tree_knowledge
from repro.ncc.network import Network
from repro.core.degree_realization import realize_degree_sequence
from repro.core.tree_realization import realize_tree
from repro.core.connectivity import realize_connectivity_ncc0
from repro.primitives.broadcast import global_aggregate
from repro.primitives.bbst import build_bbst
from repro.primitives.protocol import run_protocol
from repro.primitives.sorting import distributed_sort
from repro.validation import check_degree_match, check_tree
from repro.workloads import random_tree_sequence, regular_sequence

from tests.conftest import make_net


class TestAlternativeKnowledgeGraphs:
    def test_cycle_gk_runs_identically(self):
        """Extra initial knowledge (a cycle's back edge) is harmless."""
        config = NCCConfig(seed=1)
        ids = Network(12, config).node_ids  # same seed -> same ids
        net = Network(12, config, knowledge=cycle_knowledge(ids))
        seq = regular_sequence(12, 3)
        result = realize_degree_sequence(net, dict(zip(net.node_ids, seq)))
        assert result.realized
        assert check_degree_match(result.edges, dict(zip(net.node_ids, seq)), net.node_ids)

    def test_tree_gk_lacks_path_pointers(self):
        """A random-tree Gk does not provide the path structure the
        bootstrap assumes; the simulator catches the illegal send."""
        config = NCCConfig(seed=2)
        ids = Network(8, config).node_ids
        net = Network(8, config, knowledge=random_tree_knowledge(ids, seed=3))
        with pytest.raises(NCCError):
            run_protocol(net, build_bbst(net))


class TestTinyNetworks:
    def test_n1_everything(self):
        net = make_net(1, seed=4)
        result = realize_degree_sequence(net, {net.node_ids[0]: 0})
        assert result.realized and result.num_edges == 0

        net = make_net(1, seed=5)
        tree = realize_tree(net, {net.node_ids[0]: 0})
        assert tree.realized and tree.diameter == 0

        net = make_net(1, seed=6)
        conn = realize_connectivity_ncc0(net, {net.node_ids[0]: 0})
        assert conn.num_edges == 0

    def test_n1_sort(self):
        net = make_net(1, seed=7)
        ns, order = run_protocol(net, distributed_sort(net, lambda v: 0))
        assert order == list(net.node_ids)

    def test_n2_realizations(self):
        net = make_net(2, seed=8)
        demands = dict(zip(net.node_ids, (1, 1)))
        result = realize_degree_sequence(net, demands)
        assert result.realized and result.num_edges == 1


class TestFailureInjection:
    def test_tiny_word_budget_breaks_protocols_loudly(self):
        """With max_words=2 the sort's handle delegation cannot fit; the
        simulator must refuse the oversized message, not truncate it."""
        net = make_net(16, seed=9, max_words=2)
        with pytest.raises(MessageTooLarge):
            run_protocol(net, distributed_sort(net, lambda v: v % 5))

    def test_protocol_errors_do_not_corrupt_counters(self):
        net = make_net(16, seed=10, max_words=2)
        try:
            run_protocol(net, distributed_sort(net, lambda v: v % 5))
        except MessageTooLarge:
            pass
        # The network remains consistent and usable for fresh protocols
        # with valid messages.
        before = net.rounds
        net.idle_round()
        assert net.rounds == before + 1


class TestLeaderConventions:
    def test_aggregate_with_remote_leader(self):
        """'A designated leader known to all nodes' (Theorem 4's setup):
        the root must know the leader to hand the result over."""
        net = make_net(20, seed=11)

        def proto():
            ns, root = yield from build_bbst(net)
            members = list(net.node_ids)
            leader = members[-1]
            net.grant_knowledge(root, leader)  # leader is common knowledge
            out = yield from global_aggregate(
                net, ns, members, root, leader,
                value_of=lambda v: 1, combine=lambda a, b: a + b,
            )
            return ns, out, leader

        ns, out, leader = run_protocol(net, proto())
        assert out == 20
        from repro.primitives.protocol import ns_state

        assert ns_state(net, leader, ns)["agg_result"] == 20


class TestModerateScale:
    def test_charged_pipeline_at_n_256(self):
        net = make_net(256, seed=12)
        seq = regular_sequence(256, 4)
        result = realize_degree_sequence(
            net, dict(zip(net.node_ids, seq)), sort_fidelity="charged"
        )
        assert result.realized
        assert check_degree_match(
            result.edges, dict(zip(net.node_ids, seq)), net.node_ids
        )
        assert result.phases <= 10

    def test_tree_at_n_200(self):
        seq = random_tree_sequence(200, seed=13)
        net = make_net(200, seed=13)
        result = realize_tree(
            net, dict(zip(net.node_ids, seq)), variant="min_diameter",
            sort_fidelity="charged",
        )
        assert result.realized
        assert check_tree(result.edges, list(net.node_ids))

    def test_overlays_accumulate_by_design(self):
        """Composing realizations on one network accumulates edges (how
        Algorithm 6 layers phase 2 over phase 1)."""
        net = make_net(10, seed=14)
        first = realize_degree_sequence(net, {v: 1 for v in net.node_ids})
        assert first.realized
        edges_before = set(first.edges)
        second = realize_degree_sequence(net, {v: 1 for v in net.node_ids})
        assert edges_before <= set(second.edges)
