"""Tests for Algorithm 3 (Theorem 11, Lemma 10) — implicit realization."""

import math
import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.degree_realization import realize_degree_sequence
from repro.sequential import is_graphic
from repro.validation import check_degree_match, check_implicit, check_simple
from repro.workloads import (
    concentrated_sequence,
    random_graphic_sequence,
    regular_sequence,
    star_like_sequence,
)

from tests.conftest import make_net


def run_realization(seq, seed=0, mode="strict", fidelity="full"):
    net = make_net(len(seq), seed=seed)
    demands = dict(zip(net.node_ids, seq))
    result = realize_degree_sequence(net, demands, mode=mode, sort_fidelity=fidelity)
    return net, demands, result


class TestGraphicInputs:
    @pytest.mark.parametrize(
        "seq",
        [
            [0],
            [0, 0],
            [1, 1],
            [2, 2, 2],
            [3, 3, 3, 3],
            [3, 2, 2, 2, 1],
            [4, 4, 4, 4, 4] + [0] * 3,
            [5, 5, 4, 3, 3, 2, 2, 2, 1, 1],
        ],
    )
    def test_exact_realization(self, seq):
        assert is_graphic(seq)
        net, demands, result = run_realization(seq, seed=len(seq))
        assert result.realized
        assert result.announced_unrealizable_by == ()
        assert check_simple(result.edges)
        assert check_degree_match(result.edges, demands, net.node_ids)
        assert check_implicit(net)

    def test_regular_graphs(self):
        for n, d in [(8, 3), (12, 4), (16, 5)]:
            seq = regular_sequence(n, d)
            net, demands, result = run_realization(seq, seed=n)
            assert result.realized
            assert check_degree_match(result.edges, demands, net.node_ids)

    def test_random_graph_sequences(self):
        for seed in range(3):
            seq = random_graphic_sequence(14, p=0.4, seed=seed)
            net, demands, result = run_realization(seq, seed=seed)
            assert result.realized
            assert check_degree_match(result.edges, demands, net.node_ids)

    def test_star_like(self):
        seq = star_like_sequence(12, hubs=2)
        net, demands, result = run_realization(seq, seed=3)
        assert result.realized
        assert check_degree_match(result.edges, demands, net.node_ids)

    def test_concentrated(self):
        seq = concentrated_sequence(16, k=5, seed=1)
        net, demands, result = run_realization(seq, seed=4)
        assert result.realized
        assert check_degree_match(result.edges, demands, net.node_ids)

    @settings(max_examples=12, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_random_graphic(self, seed):
        rng = random.Random(seed)
        n = rng.randrange(4, 14)
        graph = nx.gnp_random_graph(n, 0.5, seed=seed)
        seq = [d for _, d in graph.degree()]
        net, demands, result = run_realization(seq, seed=seed)
        assert result.realized
        assert check_degree_match(result.edges, demands, net.node_ids)


class TestUnrealizableInputs:
    @pytest.mark.parametrize(
        "seq",
        [
            [1],                 # single node wanting a partner
            [1, 1, 1],           # odd sum
            [5, 5, 1, 1, 1, 1],  # even sum, EG fails at k=2
            [4, 4, 4, 4, 0],     # even sum, EG fails
            [3, 3, 3, 1],        # EG fails
        ],
    )
    def test_announced(self, seq):
        assert not is_graphic(seq)
        net, demands, result = run_realization(seq, seed=len(seq) * 7)
        assert not result.realized
        assert len(result.announced_unrealizable_by) >= 1
        announcers = set(result.announced_unrealizable_by)
        assert announcers <= set(net.node_ids)

    def test_degree_too_large(self):
        seq = [5, 1, 1, 1]  # d >= n
        net, demands, result = run_realization(seq, seed=9)
        assert not result.realized

    @settings(max_examples=12, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_verdict_matches_erdos_gallai(self, seed):
        rng = random.Random(seed)
        n = rng.randrange(3, 12)
        seq = [rng.randrange(0, n) for _ in range(n)]
        net, demands, result = run_realization(seq, seed=seed)
        assert result.realized == is_graphic(seq)


class TestPhaseBounds:
    def test_lemma_10_phase_bound(self):
        """phases <= 2*min(sqrt(m), Δ) + 2 on assorted workloads."""
        cases = [
            regular_sequence(16, 4),
            random_graphic_sequence(20, 0.3, seed=2),
            concentrated_sequence(24, 6, seed=3),
            star_like_sequence(14, hubs=1),
        ]
        for seq in cases:
            net, demands, result = run_realization(seq, seed=sum(seq))
            if not result.realized:
                continue
            m = sum(seq) / 2
            delta = max(seq)
            bound = 2 * min(math.sqrt(max(1, m)), max(1, delta)) + 2
            assert result.phases <= bound, (seq, result.phases, bound)

    def test_zero_sequence_single_phase(self):
        net, demands, result = run_realization([0] * 6, seed=1)
        assert result.realized
        assert result.phases == 1
        assert result.num_edges == 0


class TestDeterminismAndModes:
    def test_same_seed_same_result(self):
        seq = random_graphic_sequence(12, 0.4, seed=5)
        _, _, first = run_realization(seq, seed=42)
        _, _, second = run_realization(seq, seed=42)
        assert first.edges == second.edges
        assert first.stats.rounds == second.stats.rounds

    def test_charged_fidelity_matches_full(self):
        seq = random_graphic_sequence(12, 0.4, seed=6)
        _, _, full = run_realization(seq, seed=7, fidelity="full")
        _, _, charged = run_realization(seq, seed=7, fidelity="charged")
        assert full.realized and charged.realized
        assert full.edges == charged.edges
        assert charged.stats.charged_rounds > 0

    def test_caps_respected_throughout(self):
        seq = regular_sequence(24, 5)
        net, _, result = run_realization(seq, seed=8)
        assert result.realized
        assert net.max_round_load <= net.recv_cap
