"""Tests for the butterfly emulation and group primitives (Thms 6-8)."""

import math
import random

import pytest

from repro.ncc.errors import ProtocolError
from repro.primitives.bbst import build_indexed_path
from repro.primitives.butterfly import (
    AggGroup,
    ButterflyEmulation,
    ColGroup,
    McGroup,
)
from repro.primitives.groups import local_aggregate, local_multicast, token_collect
from repro.primitives.path_ops import build_undirected_path
from repro.primitives.protocol import ns_state, run_protocol

from tests.conftest import make_net


def indexed_net(n, seed=0):
    net = make_net(n, seed=seed)

    def proto():
        head = yield from build_undirected_path(net, "ip")
        yield from build_indexed_path(net, "ip", list(net.node_ids), head)
        return None

    run_protocol(net, proto())
    return net


class TestWiring:
    def test_next_hop_fixes_lowest_bit_first(self):
        net = indexed_net(16, seed=1)
        emu = ButterflyEmulation(net, "ip")
        ids = list(net.node_ids)
        # from row 0 to row 5 (101b): first hop flips bit 0 -> row 1.
        neighbor, dim = emu.next_hop(ids[0], 5)
        assert dim == 0
        assert neighbor == ids[1]

    def test_next_hop_descends_from_outside_subcube(self):
        net = indexed_net(20, seed=2)  # k = 4, rows 0..15; positions 16..19 outside
        emu = ButterflyEmulation(net, "ip")
        ids = list(net.node_ids)
        neighbor, dim = emu.next_hop(ids[17], 3)
        assert dim == 4
        assert neighbor == ids[1]  # 17 ^ 16 = 1

    def test_route_terminates_at_target(self):
        net = indexed_net(32, seed=3)
        emu = ButterflyEmulation(net, "ip")
        ids = list(net.node_ids)
        for start in (0, 7, 19, 31):
            pos = start
            hops = 0
            while True:
                hop = emu.next_hop(ids[pos], 13)
                if hop is None:
                    break
                neighbor, _dim = hop
                pos = list(net.node_ids).index(neighbor)
                hops += 1
                assert hops <= 10
            assert pos == 13

    def test_rendezvous_in_subcube_and_deterministic(self):
        net = indexed_net(24, seed=4)
        emu = ButterflyEmulation(net, "ip")
        for gid in range(50):
            row = emu.rendezvous_row(gid)
            assert 0 <= row < 16
            assert row == emu.rendezvous_row(gid)

    def test_requires_positions(self):
        net = make_net(8, seed=5)
        with pytest.raises(ProtocolError):
            ButterflyEmulation(net, "nowhere")


class TestAggregation:
    def test_sum_max_min(self):
        net = indexed_net(30, seed=6)
        ids = list(net.node_ids)
        groups = [
            AggGroup(gid=1, members={ids[i]: i for i in range(10)}, dest=ids[25], op="sum"),
            AggGroup(gid=2, members={ids[i]: i for i in range(5, 25)}, dest=ids[0], op="max"),
            AggGroup(gid=3, members={ids[i]: i + 3 for i in range(4, 9)}, dest=ids[29], op="min"),
        ]
        res = run_protocol(net, local_aggregate(net, "ip", groups))
        assert res == {1: 45, 2: 24, 3: 7}
        assert ns_state(net, ids[25], "ip")["agg:1"] == 45

    def test_overlapping_groups(self):
        net = indexed_net(20, seed=7)
        ids = list(net.node_ids)
        groups = [
            AggGroup(gid=g, members={ids[i]: 1 for i in range(20)}, dest=ids[g], op="sum")
            for g in range(5)
        ]
        res = run_protocol(net, local_aggregate(net, "ip", groups))
        assert all(res[g] == 20 for g in range(5))

    def test_singleton_group(self):
        net = indexed_net(12, seed=8)
        ids = list(net.node_ids)
        res = run_protocol(
            net,
            local_aggregate(
                net, "ip", [AggGroup(gid=9, members={ids[3]: 42}, dest=ids[8], op="sum")]
            ),
        )
        assert res == {9: 42}

    def test_caps_respected(self):
        net = indexed_net(64, seed=9)
        ids = list(net.node_ids)
        rng = random.Random(1)
        groups = [
            AggGroup(
                gid=g,
                members={v: 1 for v in rng.sample(ids, 20)},
                dest=rng.choice(ids),
                op="sum",
            )
            for g in range(12)
        ]
        run_protocol(net, local_aggregate(net, "ip", groups))
        assert net.max_round_load <= net.recv_cap


class TestMulticast:
    def test_token_reaches_all_members(self):
        net = indexed_net(26, seed=10)
        ids = list(net.node_ids)
        members = tuple(ids[i] for i in range(0, 26, 3))
        group = McGroup(gid=5, source=ids[25], members=members, token=(ids[25],), data=(1,))
        deliveries = run_protocol(net, local_multicast(net, "ip", [group]))
        assert deliveries == len(members)
        for v in members:
            assert ns_state(net, v, "ip")["mc:5"] == ((ids[25],), (1,))

    def test_many_groups(self):
        net = indexed_net(40, seed=11)
        ids = list(net.node_ids)
        rng = random.Random(2)
        groups = []
        for g in range(8):
            members = tuple(rng.sample(ids, 6))
            source = rng.choice(ids)
            groups.append(McGroup(gid=g, source=source, members=members, data=(g,)))
        deliveries = run_protocol(net, local_multicast(net, "ip", groups))
        assert deliveries == 8 * 6
        for group in groups:
            for v in group.members:
                assert ns_state(net, v, "ip")[f"mc:{group.gid}"][1] == (group.gid,)

    def test_source_is_member(self):
        net = indexed_net(15, seed=12)
        ids = list(net.node_ids)
        group = McGroup(gid=1, source=ids[4], members=(ids[4], ids[9]), data=(7,))
        deliveries = run_protocol(net, local_multicast(net, "ip", [group]))
        assert deliveries == 2


class TestCollection:
    def test_dest_known_tokens_teach_ids(self):
        net = indexed_net(24, seed=13)
        ids = list(net.node_ids)
        tokens = {ids[i]: ((ids[i],), (i,)) for i in range(10)}
        group = ColGroup(gid=3, tokens=tokens, dest=ids[20])
        res = run_protocol(net, token_collect(net, "ip", [group]))
        assert sorted(d for _i, d in res[3]) == [(i,) for i in range(10)]
        # The destination learned every holder's address.
        for i in range(10):
            assert net.knows(ids[20], ids[i])

    def test_claim_based_destination(self):
        """Both sides only share the group id (Theorem 8's device)."""
        net = indexed_net(24, seed=14)
        ids = list(net.node_ids)
        sender, collector = ids[2], ids[17]
        assert not net.knows(sender, collector)
        group = ColGroup(
            gid=99,
            tokens={sender: ((sender,), (5,))},
            dest=None,
            claimant=collector,
        )
        res = run_protocol(net, token_collect(net, "ip", [group]))
        assert res[99] == [((sender,), (5,))]
        assert net.knows(collector, sender)

    def test_mixed_groups(self):
        net = indexed_net(30, seed=15)
        ids = list(net.node_ids)
        groups = [
            ColGroup(gid=1, tokens={ids[0]: ((ids[0],), (1,))}, dest=ids[10]),
            ColGroup(gid=2, tokens={ids[5]: ((ids[5],), (2,))}, dest=None, claimant=ids[20]),
            ColGroup(
                gid=3,
                tokens={ids[i]: ((ids[i],), (i,)) for i in range(12, 18)},
                dest=ids[29],
            ),
        ]
        res = run_protocol(net, token_collect(net, "ip", groups))
        assert len(res[1]) == 1 and len(res[2]) == 1 and len(res[3]) == 6

    def test_group_without_dest_or_claimant_rejected(self):
        net = indexed_net(8, seed=16)
        ids = list(net.node_ids)
        group = ColGroup(gid=1, tokens={ids[0]: ((ids[0],), ())}, dest=None)
        with pytest.raises(ProtocolError):
            run_protocol(net, token_collect(net, "ip", [group]))

    def test_caps_respected_with_hot_destination(self):
        net = indexed_net(48, seed=17)
        ids = list(net.node_ids)
        # Two groups share the same destination (l2 = 2).
        groups = [
            ColGroup(
                gid=g,
                tokens={ids[i]: ((ids[i],), (g, i)) for i in range(g * 12, g * 12 + 12)},
                dest=ids[47],
            )
            for g in range(2)
        ]
        res = run_protocol(net, token_collect(net, "ip", groups))
        assert len(res[0]) == 12 and len(res[1]) == 12
        assert net.max_round_load <= net.recv_cap
