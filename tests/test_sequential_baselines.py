"""Tests for the classical baselines, cross-checked against networkx."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequential.connectivity import (
    connectivity_lower_bound_edges,
    frank_chou_realization,
)
from repro.sequential.envelope import discrepancy, sequential_envelope
from repro.sequential.erdos_gallai import erdos_gallai_check, is_graphic
from repro.sequential.havel_hakimi import degree_sequence_of, havel_hakimi
from repro.sequential.trees import (
    greedy_tree,
    is_tree_realizable,
    max_diameter_tree,
    min_tree_diameter_bruteforce,
    tree_diameter,
)


degree_lists = st.lists(st.integers(0, 12), min_size=1, max_size=14)


class TestErdosGallai:
    def test_known_graphic(self):
        assert is_graphic([3, 3, 3, 3])
        assert is_graphic([2, 2, 2])
        assert is_graphic([0])
        assert is_graphic([])
        assert is_graphic([1, 1])

    def test_known_non_graphic(self):
        assert not is_graphic([3, 1])          # too large for n
        assert not is_graphic([1, 1, 1])       # odd sum
        assert not is_graphic([4, 4, 4, 4, 0])  # fails EG at k=4
        assert not is_graphic([5, 1, 1, 1, 1, 1, 1])  # fails EG

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            is_graphic([2, -1])

    @settings(max_examples=200, deadline=None)
    @given(degree_lists)
    def test_matches_networkx_oracle(self, degrees):
        assert erdos_gallai_check(degrees) == nx.is_graphical(degrees)

    @settings(max_examples=100, deadline=None)
    @given(degree_lists)
    def test_order_invariant(self, degrees):
        shuffled = list(degrees)
        random.Random(0).shuffle(shuffled)
        assert erdos_gallai_check(degrees) == erdos_gallai_check(shuffled)


class TestHavelHakimi:
    @settings(max_examples=150, deadline=None)
    @given(degree_lists)
    def test_constructs_iff_graphic(self, degrees):
        edges = havel_hakimi(degrees)
        if is_graphic(degrees):
            assert edges is not None
            assert degree_sequence_of(edges, len(degrees)) == list(degrees)
        else:
            assert edges is None

    def test_simple_graph_output(self):
        edges = havel_hakimi([3, 3, 2, 2, 2])
        graph = nx.Graph(edges)
        assert graph.number_of_edges() == len(edges)  # no duplicates
        assert all(u != v for u, v in edges)

    def test_empty_and_zero(self):
        assert havel_hakimi([]) == []
        assert havel_hakimi([0, 0]) == []

    def test_degree_sequence_of_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            degree_sequence_of([(0, 0)], 2)
        with pytest.raises(ValueError):
            degree_sequence_of([(0, 1), (1, 0)], 2)


class TestSequentialEnvelope:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(0, 9), min_size=1, max_size=10))
    def test_envelope_guarantees(self, degrees):
        n = len(degrees)
        clamped = [min(d, n - 1) for d in degrees]
        edges, realized = sequential_envelope(degrees)
        assert all(r >= c for r, c in zip(realized, clamped))
        assert sum(realized) <= 2 * sum(clamped)
        graph = nx.Graph(edges)
        assert graph.number_of_edges() == len(edges)

    def test_graphic_input_zero_discrepancy(self):
        degrees = [3, 3, 2, 2, 2]
        edges, realized = sequential_envelope(degrees)
        assert realized == degrees
        assert discrepancy(degrees, realized) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            sequential_envelope([-1])


@st.composite
def tree_sequences(draw):
    """Valid tree sequences generated constructively via Prüfer counts."""
    n = draw(st.integers(2, 9))
    prufer = draw(st.lists(st.integers(0, n - 1), min_size=n - 2, max_size=n - 2))
    degrees = [1] * n
    for x in prufer:
        degrees[x] += 1
    return degrees


class TestTrees:
    def test_realizability_condition(self):
        assert is_tree_realizable([1, 1])
        assert is_tree_realizable([2, 2, 1, 1])
        assert is_tree_realizable([0])
        assert not is_tree_realizable([2, 2, 2])
        assert not is_tree_realizable([1, 1, 1, 1])
        assert not is_tree_realizable([])
        assert not is_tree_realizable([0, 1])

    @settings(max_examples=60, deadline=None)
    @given(tree_sequences())
    def test_both_constructions_realize(self, seq):
        n = len(seq)
        for builder in (max_diameter_tree, greedy_tree):
            edges = builder(seq)
            assert edges is not None
            graph = nx.Graph(edges)
            graph.add_nodes_from(range(n))
            assert nx.is_tree(graph)
            assert sorted(dict(graph.degree).values()) == sorted(seq)

    @settings(max_examples=40, deadline=None)
    @given(tree_sequences())
    def test_greedy_minimizes_caterpillar_maximizes(self, seq):
        n = len(seq)
        greedy_edges = greedy_tree(seq)
        cat_edges = max_diameter_tree(seq)
        dg = tree_diameter(greedy_edges, n)
        dc = tree_diameter(cat_edges, n)
        best = min_tree_diameter_bruteforce(seq)
        assert dg == best
        assert dc >= dg

    def test_unrealizable_returns_none(self):
        assert max_diameter_tree([3, 3, 1, 1]) is None
        assert greedy_tree([2, 2, 2]) is None

    def test_star_and_path_extremes(self):
        star = [4, 1, 1, 1, 1]
        path = [2, 2, 2, 1, 1]
        assert tree_diameter(greedy_tree(star), 5) == 2
        assert tree_diameter(max_diameter_tree(path), 5) == 4

    def test_single_edge(self):
        assert max_diameter_tree([1, 1]) == [(0, 1)]
        assert greedy_tree([1, 1]) == [(0, 1)]


class TestFrankChou:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(4, 12).flatmap(
            lambda n: st.lists(st.integers(0, min(5, n - 1)), min_size=n, max_size=n)
        )
    )
    def test_thresholds_and_ratio(self, rho):
        n = len(rho)
        edges = frank_chou_realization(rho)
        graph = nx.Graph(edges)
        graph.add_nodes_from(range(n))
        for u in range(n):
            for v in range(u + 1, n):
                need = min(rho[u], rho[v])
                if need:
                    assert (
                        nx.algorithms.connectivity.local_edge_connectivity(graph, u, v)
                        >= need
                    )
        assert len(edges) <= sum(rho)  # 2-approximation

    def test_lower_bound(self):
        assert connectivity_lower_bound_edges([3, 2, 1]) == 3
        assert connectivity_lower_bound_edges([0, 0]) == 0

    def test_infeasible_rejected(self):
        with pytest.raises(ValueError):
            frank_chou_realization([5, 1, 1])
        with pytest.raises(ValueError):
            frank_chou_realization([-1, 0])

    def test_zero_demands(self):
        assert frank_chou_realization([0, 0, 0]) == []
