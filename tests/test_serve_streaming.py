"""Streaming ``serve --mode processes``, the async submit API, and the
shard-count validation satellites.

The acceptance property for streaming is *incrementality*: a client that
writes one line and then blocks on the response must see it without
closing stdin (no batch-drain buffering), while emission order stays the
input order.  The tests drive ``serve`` from a writer thread that
interleaves writes with blocking reads.  The streams are queue-backed
rather than OS pipes: fork-started pool workers inherit every open fd of
this *test* process, including a pipe's write end, which would keep the
in-process serve loop from ever seeing EOF (in production the write end
lives in the client process, so EOF works — the CI smoke step drives the
real ``python -m repro serve`` over real pipes).
"""

from __future__ import annotations

import json
import multiprocessing
import queue
import threading

import pytest

import repro.service.executor as executor_module
from repro.ncc.config import NCCConfig
from repro.service import (
    BatchExecutor,
    FaultPlan,
    FaultRule,
    NetworkPool,
    RealizationRequest,
    ServiceError,
    default_registry,
    serve,
)
from repro.service import faults

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def req(kind="degree_implicit", scenario="regular", n=32, seed=0, **kw):
    return RealizationRequest(kind=kind, scenario=scenario, n=n, seed=seed, **kw)


def line(request_id, n=16, seed=1, kind="degree_implicit", scenario="regular"):
    return json.dumps(
        {"request_id": request_id, "kind": kind, "scenario": scenario,
         "n": n, "seed": seed}
    )


class _LineSource:
    """A blocking line iterator the test feeds; ends when closed."""

    _EOF = object()

    def __init__(self):
        self._lines: "queue.Queue" = queue.Queue()

    def put(self, text: str) -> None:
        self._lines.put(text + "\n")

    def close(self) -> None:
        self._lines.put(self._EOF)

    def __iter__(self):
        return self

    def __next__(self):
        item = self._lines.get()
        if item is self._EOF:
            raise StopIteration
        return item


class _LineSink:
    """Collects ``write``/``flush`` output as complete lines."""

    def __init__(self):
        self.lines: "queue.Queue" = queue.Queue()
        self._buffer = ""

    def write(self, text: str) -> None:
        self._buffer += text
        while "\n" in self._buffer:
            line_text, self._buffer = self._buffer.split("\n", 1)
            self.lines.put(line_text)

    def flush(self) -> None:
        pass


class _ServeHarness:
    """``serve`` on queue-backed streams, driven from the test thread."""

    def __init__(self, executor):
        self.source = _LineSource()
        self.sink = _LineSink()
        self.handled = None

        def run():
            self.handled = serve(self.source, self.sink, executor)

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()

    def send(self, text):
        self.source.put(text)

    def recv(self, timeout=120):
        return json.loads(self.sink.lines.get(timeout=timeout))

    def finish(self, timeout=60):
        self.source.close()
        self.thread.join(timeout=timeout)
        assert not self.thread.is_alive(), "serve loop failed to end at EOF"
        return self.handled


@pytest.fixture()
def processes_executor():
    executor = BatchExecutor(pool=NetworkPool(), registry=default_registry(),
                             mode="processes", workers=2)
    yield executor
    executor.close()


class TestStreamingServe:
    def test_interleaved_write_read_cycle(self, processes_executor):
        """One line in, its response out, stdin still open — repeated."""
        harness = _ServeHarness(processes_executor)
        for i in range(3):
            harness.send(line(f"r{i}", seed=i))
            response = harness.recv()  # must arrive before the next write
            assert response["request_id"] == f"r{i}"
            assert response["verdict"] == "REALIZED"
        assert harness.finish() == (3, 0)

    def test_pipelined_lines_emit_in_input_order(self, processes_executor):
        """A burst of lines (slow first) still comes back in input order."""
        harness = _ServeHarness(processes_executor)
        harness.send(line("slow", n=64, seed=5))  # largest => slowest
        for i in range(3):
            harness.send(line(f"q{i}", n=12, seed=i))
        got = [harness.recv()["request_id"] for _ in range(4)]
        assert got == ["slow", "q0", "q1", "q2"]
        assert harness.finish() == (4, 0)

    def test_parse_errors_interleave_without_stalling(self, processes_executor):
        harness = _ServeHarness(processes_executor)
        harness.send("this is not json")
        bad = harness.recv()
        assert bad["verdict"] == "ERROR" and "bad JSON" in bad["error"]
        harness.send(line("after"))
        assert harness.recv()["request_id"] == "after"
        assert harness.finish() == (2, 1)

    def test_repeated_requests_hit_the_parent_cache(self, processes_executor):
        harness = _ServeHarness(processes_executor)
        harness.send(line("first", seed=9))
        first = harness.recv()
        harness.send(line("second", seed=9))
        second = harness.recv()
        assert harness.finish() == (2, 0)
        assert not first["cached"] and second["cached"]
        fields = lambda r: {k: v for k, v in r.items()
                            if k not in ("request_id", "cached", "elapsed_sec")}
        assert fields(first) == fields(second)

    def test_worker_crash_mid_stream_is_typed_and_recovers(self, monkeypatch):
        plan = FaultPlan([FaultRule(action="crash", request_ids=("boom",))])
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        faults.clear()
        executor = BatchExecutor(pool=NetworkPool(), registry=default_registry(),
                                 cache_responses=False, mode="processes",
                                 workers=2)
        try:
            harness = _ServeHarness(executor)
            harness.send(line("ok0", seed=1))
            assert harness.recv()["verdict"] == "REALIZED"
            harness.send(line("boom", seed=99))
            crashed = harness.recv()
            assert crashed["verdict"] == "ERROR"
            assert crashed["error_code"] == "WORKER_CRASHED"
            harness.send(line("ok1", seed=2))  # the stream keeps serving
            assert harness.recv()["verdict"] == "REALIZED"
            assert harness.finish() == (3, 1)
            assert executor.stats()["worker_crashes"] >= 1
        finally:
            faults.clear()
            executor.close()

    def test_reader_failure_propagates_not_silent_eof(self, processes_executor):
        """A dying input stream must raise from serve(), as the
        synchronous modes do — not masquerade as a clean EOF."""

        class _ExplodingSource(_LineSource):
            def __next__(self):
                item = self._lines.get()
                if item is self._EOF:
                    raise UnicodeDecodeError("utf-8", b"", 0, 1, "corrupt stream")
                return item

        source = _ExplodingSource()
        sink = _LineSink()
        outcome = []

        def run():
            try:
                serve(source, sink, processes_executor)
                outcome.append("returned")
            except UnicodeDecodeError:
                outcome.append("raised")

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        source.put(line("pre-failure"))
        assert json.loads(sink.lines.get(timeout=120))["request_id"] == "pre-failure"
        source.close()  # the exploding source raises instead of ending
        thread.join(timeout=60)
        assert outcome == ["raised"]

    def test_sequential_mode_unchanged(self):
        """Non-process executors keep the synchronous line loop."""
        import io

        executor = BatchExecutor(pool=NetworkPool(), registry=default_registry())
        out = io.StringIO()
        handled = serve(io.StringIO(line("a") + "\n" + line("b") + "\n"), out, executor)
        assert handled == (2, 0)
        ids = [json.loads(text)["request_id"] for text in out.getvalue().splitlines()]
        assert ids == ["a", "b"]


class TestSubmitApi:
    def test_validation_and_cache_resolve_immediately(self, processes_executor):
        bad = processes_executor.submit(
            RealizationRequest(kind="nope", degrees=(2, 2), request_id="bad")
        )
        assert bad.done() and bad.result().verdict == "ERROR"
        first = processes_executor.submit(req(seed=3, request_id="a")).result()
        assert first.verdict == "REALIZED" and not first.cached
        hit = processes_executor.submit(req(seed=3, request_id="b"))
        assert hit.done()  # cache hit: resolved synchronously
        assert hit.result().cached and hit.result().request_id == "b"

    def test_concurrent_identical_submits_share_one_execution(
        self, processes_executor
    ):
        futures = [
            processes_executor.submit(req(seed=11, n=48, request_id=f"c{i}"))
            for i in range(4)
        ]
        responses = [future.result(timeout=120) for future in futures]
        assert len({r.fingerprint() for r in responses}) == 1
        assert [r.request_id for r in responses] == [f"c{i}" for i in range(4)]
        assert sum(1 for r in responses if not r.cached) == 1
        stats = processes_executor.stats()
        # Followers either coalesced onto the in-flight execution or (if
        # the leader finished first) hit the cache; the counters are
        # disjoint and must account for all three.
        assert stats["coalesced_hits"] + stats["response_cache_hits"] == 3

    def test_sequential_submit_returns_completed_future(self):
        executor = BatchExecutor(pool=NetworkPool(), registry=default_registry())
        future = executor.submit(req(seed=1, request_id="sync"))
        assert future.done() and future.result().verdict == "REALIZED"

    def test_close_with_in_flight_requests_resolves_their_futures(self):
        """close() cancels queued work; every handed-out future must
        still resolve (an unresolved future would hang the stream)."""
        executor = BatchExecutor(pool=NetworkPool(), registry=default_registry(),
                                 cache_responses=False, mode="processes",
                                 workers=1)
        futures = [
            executor.submit(req(seed=i, n=64, request_id=f"f{i}"))
            for i in range(4)
        ]
        executor.close()
        responses = [future.result(timeout=120) for future in futures]
        assert all(r is not None for r in responses)
        for r in responses:  # completed before the cut, or enveloped
            assert r.verdict in ("REALIZED", "ERROR")

    def test_close_with_coalesced_followers_does_not_resurrect_pool(self):
        """Followers of a leader cancelled by close() must be enveloped,
        not resubmitted — resubmission would silently rebuild a worker
        pool that nothing ever shuts down again."""
        executor = BatchExecutor(pool=NetworkPool(), registry=default_registry(),
                                 mode="processes", workers=1)
        # Identical requests: one leader in flight, the rest coalesce.
        futures = [
            executor.submit(req(seed=7, n=64, request_id=f"c{i}"))
            for i in range(4)
        ]
        executor.close()
        responses = [future.result(timeout=120) for future in futures]
        assert all(r is not None for r in responses)
        assert executor._process_pool is None  # nothing resurrected it
        executor.close()  # still idempotent


class TestServeWindowKnob:
    def test_validate_window_rule(self):
        from repro.service import SERVE_STREAM_WINDOW, validate_window

        assert validate_window(None) == SERVE_STREAM_WINDOW
        assert validate_window(1) == 1
        assert validate_window(512) == 512
        for bad in (0, -3, True, 2.5, "8"):
            with pytest.raises(ValueError, match="window"):
                validate_window(bad)

    def test_serve_rejects_bad_window_before_reading(self):
        import io

        executor = BatchExecutor(pool=NetworkPool(), registry=default_registry())
        with pytest.raises(ValueError, match="window"):
            serve(io.StringIO(line("x") + "\n"), io.StringIO(), executor, window=0)

    def test_streaming_with_window_one_stays_in_order(self, processes_executor):
        """The plumbed knob reaches the bounded queue: the tightest
        window still drains a pipelined burst correctly and in order."""
        source = _LineSource()
        sink = _LineSink()
        result = []

        def run():
            result.append(serve(source, sink, processes_executor, window=1))

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        for i in range(4):
            source.put(line(f"w{i}", n=12, seed=i))
        source.close()
        got = [json.loads(sink.lines.get(timeout=120))["request_id"]
               for _ in range(4)]
        thread.join(timeout=60)
        assert not thread.is_alive()
        assert got == [f"w{i}" for i in range(4)]
        assert result == [(4, 0)]


class TestExecutorLifecycle:
    def test_stats_freeze_at_close_and_thaw_on_reopen(self):
        """cmd_batch's summary bug: stats() after close() must describe
        the executor as it was at close time, not a torn-down pool."""
        executor = BatchExecutor(pool=NetworkPool(), registry=default_registry())
        executor.handle(req(seed=1, request_id="x"))
        live = executor.stats()
        assert live["closed"] is False and live["requests_handled"] == 1
        executor.close()
        frozen = executor.stats()
        assert frozen["closed"] is True
        assert frozen["requests_handled"] == 1
        assert frozen["pool"] == live["pool"]  # close-time snapshot
        # Public entry points re-open; stats go live again.
        executor.handle(req(seed=2, request_id="y"))
        thawed = executor.stats()
        assert thawed["closed"] is False and thawed["requests_handled"] == 2
        executor.close()

    def test_latency_recorder_percentiles(self):
        from repro.service import LatencyRecorder

        recorder = LatencyRecorder()
        assert recorder.snapshot() == {
            "count": 0, "mean_ms": 0.0, "p50_ms": 0.0, "p99_ms": 0.0,
        }
        for ms in range(1, 101):
            recorder.record(ms / 1000.0)
        snap = recorder.snapshot()
        assert snap["count"] == 100
        assert snap["p50_ms"] == 50.0  # nearest-rank
        assert snap["p99_ms"] == 99.0
        assert snap["mean_ms"] == 50.5
        with pytest.raises(ValueError):
            LatencyRecorder(capacity=0)

    def test_handle_records_latency(self):
        executor = BatchExecutor(pool=NetworkPool(), registry=default_registry())
        executor.handle(req(seed=1, request_id="l1"))
        executor.handle(req(seed=1, request_id="l2"))  # cache hit counts too
        latency = executor.stats()["latency"]
        assert latency["count"] == 2
        assert latency["p99_ms"] >= latency["p50_ms"] >= 0.0

    def test_drain_pending_cancels_and_observes_futures(self):
        """The writer-failure drain must not abandon in-flight futures:
        pending ones are cancelled, completed ones observed (so no
        'exception was never retrieved' teardown noise)."""
        from concurrent.futures import Future
        from queue import Queue

        from repro.service.executor import _drain_pending

        q = Queue()
        pending = Future()  # never started: cancel() must succeed
        failed = Future()
        failed.set_running_or_notify_cancel()
        failed.set_exception(RuntimeError("boom"))
        done = Future()
        done.set_running_or_notify_cancel()
        done.set_result("ok")
        for item in (pending, failed, done, "payload"):
            q.put(item)
        assert _drain_pending(q) == 4
        assert q.empty()
        assert pending.cancelled()
        assert isinstance(failed.exception(timeout=0), RuntimeError)
        assert done.result(timeout=0) == "ok"

    def test_resolve_future_tolerates_racing_cancellation(self):
        from concurrent.futures import Future

        from repro.service import error_response
        from repro.service.executor import _resolve_future

        cancelled = Future()
        cancelled.cancel()
        _resolve_future(cancelled, error_response("x", "?", "late"))  # no raise
        live = Future()
        _resolve_future(live, error_response("y", "?", "msg"))
        assert live.result(timeout=0).verdict == "ERROR"


class TestWordCacheBound:
    def test_shared_caches_evict_oldest_beyond_limit(self, monkeypatch):
        import repro.ncc.message as message_module

        int_cache, scalar_cache = message_module.word_caches(48)
        int_cache.clear()
        int_cache.update({i: 1 for i in range(10)})
        monkeypatch.setattr(message_module, "_WORD_CACHE_LIMIT", 8)
        before = message_module.word_cache_evictions(48)
        again_int, _ = message_module.word_caches(48)
        assert again_int is int_cache  # same shared dict, trimmed in place
        # Evicts oldest-inserted down to half the bound; the rest re-warm.
        assert dict(int_cache) == {i: 1 for i in range(6, 10)}
        assert message_module.word_cache_evictions(48) - before == 6
        assert message_module.word_cache_evictions() >= 6


class TestShardsValidation:
    def test_cli_rejects_out_of_range_shards(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit, match="--shards must be >= 1"):
            main(["realize", "--degrees", "3,3,2,2", "--fast",
                  "--engine", "sharded", "--shards", "0"])
        with pytest.raises(SystemExit, match="exceeds the network size"):
            main(["realize", "--degrees", "3,3,2,2", "--fast",
                  "--engine", "sharded", "--shards", "9"])

    def test_cli_default_shards_still_clamp(self, capsys):
        """No explicit --shards: tiny networks keep working (engine
        default, clamped) instead of erroring on the default of 2."""
        from repro.__main__ import main

        assert main(["tree", "--degrees", "1,1", "--fast",
                     "--engine", "sharded"]) == 0
        assert "REALIZED" in capsys.readouterr().out

    def test_config_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError, match="engine_shards"):
            NCCConfig(engine_shards=0)
        with pytest.raises(ValueError, match="engine_shards"):
            NCCConfig(engine_shards=-2)
        with pytest.raises(ValueError, match="engine_shards"):
            NCCConfig(engine_shards=True)  # True == 1 must not slip through

    def test_request_rejects_shards_above_n(self):
        with pytest.raises(ServiceError, match="cannot exceed n"):
            req(n=8, engine="sharded", shards=9).validate()
        req(n=8, engine="sharded", shards=8).validate()
        # Only the sharded engine consumes the knob; a stray value on an
        # in-process engine stays neutralised (and cache-key-invisible).
        req(n=8, shards=9).validate()


class TestWireEnvelopes:
    def test_request_wire_round_trip(self):
        request = req(seed=5, shards=0, max_rounds=70, request_id="w")
        clone = RealizationRequest.from_wire(request.to_wire())
        assert clone == request and hash(clone) == hash(request)
        inline = RealizationRequest(
            kind="degree_implicit", degrees=(3, 3, 2, 2), request_id="i",
        )
        clone = RealizationRequest.from_wire(inline.to_wire())
        assert clone == inline and clone.degrees == (3, 3, 2, 2)
        assert type(clone.degrees) is tuple

    def test_request_wire_survives_giant_degree_values(self):
        giant = RealizationRequest(kind="degree_implicit", degrees=(2**70, 2))
        clone = RealizationRequest.from_wire(giant.to_wire())
        assert clone.degrees == (2**70, 2)

    def test_response_wire_round_trip(self):
        executor = BatchExecutor(pool=NetworkPool(), registry=default_registry())
        response = executor.handle(req(seed=2, request_id="r"))
        from repro.service import RealizationResponse

        clone = RealizationResponse.from_wire(response.to_wire())
        assert clone == response
        assert clone.fingerprint() == response.fingerprint()
