"""Integration tests: full pipelines across modules, cross-model checks."""

import math
import random

import networkx as nx
import pytest

from repro import NCCConfig, Network, Variant
from repro.core.degree_realization import realize_degree_sequence
from repro.core.explicit import realize_degree_sequence_explicit
from repro.core.envelope import envelope_holds, realize_envelope
from repro.core.lower_bounds import degree_lower_bounds, polylog_envelope, tightness_ratio
from repro.core.tree_realization import realize_tree
from repro.core.connectivity import realize_connectivity_ncc0, realize_connectivity_ncc1
from repro.sequential import havel_hakimi, is_graphic
from repro.sequential.havel_hakimi import degree_sequence_of
from repro.validation import (
    check_connectivity_thresholds,
    check_degree_match,
    check_explicit,
    overlay_graph,
)
from repro.workloads import (
    power_law_sequence,
    random_graphic_sequence,
    random_tree_sequence,
    regular_sequence,
    uniform_rho,
)

from tests.conftest import make_ncc1, make_net


class TestDistributedMatchesSequential:
    """The distributed realizer and classical Havel-Hakimi must agree on
    feasibility, and both outputs must realize the same sequence."""

    @pytest.mark.parametrize("seed", range(5))
    def test_same_verdict_and_degrees(self, seed):
        rng = random.Random(seed)
        n = rng.randrange(5, 14)
        seq = [rng.randrange(0, n) for _ in range(n)]
        sequential_edges = havel_hakimi(seq)

        net = make_net(n, seed=seed)
        demands = dict(zip(net.node_ids, seq))
        result = realize_degree_sequence(net, demands)

        assert result.realized == (sequential_edges is not None)
        if result.realized:
            assert check_degree_match(result.edges, demands, net.node_ids)
            assert degree_sequence_of(sequential_edges, n) == seq


class TestModelVariants:
    def test_ncc0_algorithms_run_in_ncc1(self):
        """The paper's remark: NCC0 algorithms work unchanged in NCC1."""
        seq = regular_sequence(10, 3)
        net0 = make_net(10, seed=1)
        net1 = make_ncc1(10, seed=1)
        res0 = realize_degree_sequence(net0, dict(zip(net0.node_ids, seq)))
        res1 = realize_degree_sequence(net1, dict(zip(net1.node_ids, seq)))
        assert res0.realized and res1.realized
        assert res0.phases == res1.phases

    def test_ncc1_connectivity_beats_ncc0_in_rounds(self):
        """Theorem 17 (Õ(1)) vs Theorem 18 (Õ(Δ)): with a large Δ the
        NCC1 implicit algorithm must be much cheaper."""
        n = 24
        rho_values = uniform_rho(n, 8)
        net1 = make_ncc1(n, seed=2)
        res1 = realize_connectivity_ncc1(net1, dict(zip(net1.node_ids, rho_values)))
        net0 = make_net(n, seed=2)
        res0 = realize_connectivity_ncc0(net0, dict(zip(net0.node_ids, rho_values)))
        assert res1.stats.rounds < res0.stats.rounds / 4


class TestFidelityEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_pipeline_outputs_identical(self, seed):
        seq = random_graphic_sequence(14, 0.35, seed=seed)
        results = {}
        for fidelity in ("full", "charged"):
            net = make_net(14, seed=seed)
            demands = dict(zip(net.node_ids, seq))
            results[fidelity] = realize_degree_sequence(
                net, demands, sort_fidelity=fidelity
            )
        assert results["full"].edges == results["charged"].edges
        assert results["full"].phases == results["charged"].phases

    def test_charged_mode_round_accounting(self):
        seq = regular_sequence(16, 3)
        net = make_net(16, seed=4)
        result = realize_degree_sequence(
            net, dict(zip(net.node_ids, seq)), sort_fidelity="charged"
        )
        stats = result.stats
        assert stats.charged_rounds > 0
        assert stats.rounds == stats.simulated_rounds + stats.charged_rounds


class TestOverlayConsistency:
    def test_overlay_graph_matches_result_edges(self):
        seq = random_graphic_sequence(12, 0.4, seed=5)
        net = make_net(12, seed=5)
        demands = dict(zip(net.node_ids, seq))
        result = realize_degree_sequence_explicit(net, demands)
        graph = overlay_graph(net)
        assert set(graph.edges()) == {
            (u, v) for u, v in result.edges
        } or set(map(frozenset, graph.edges())) == set(map(frozenset, result.edges))

    def test_holders_know_partners(self):
        seq = regular_sequence(10, 3)
        net = make_net(10, seed=6)
        realize_degree_sequence(net, dict(zip(net.node_ids, seq)))
        from repro.core.result import NBRS_KEY

        for v in net.node_ids:
            for u in net.mem[v].get(NBRS_KEY, ()):
                assert net.knows(v, u)


class TestEndToEndScenarios:
    def test_degree_then_connectivity_composition(self):
        """Two realizations on separate networks model a two-tier system:
        a degree-bounded overlay plus a resilient backbone."""
        n = 12
        net_a = make_net(n, seed=7)
        res_a = realize_degree_sequence(net_a, {v: 3 for v in net_a.node_ids})
        assert res_a.realized

        net_b = make_net(n, seed=8)
        rho = {v: 2 for v in net_b.node_ids}
        res_b = realize_connectivity_ncc0(net_b, rho)
        assert check_connectivity_thresholds(res_b.edges, rho, list(net_b.node_ids))

    def test_tree_overlay_for_power_law_demands(self):
        seq = random_tree_sequence(18, seed=9)
        net = make_net(18, seed=9)
        result = realize_tree(net, dict(zip(net.node_ids, seq)), variant="min_diameter")
        assert result.realized
        graph = nx.Graph(result.edges)
        assert nx.is_tree(graph)

    def test_lower_bound_tightness_on_real_run(self):
        """Theorems 19/20: measured rounds / lower bound <= polylog."""
        seq = regular_sequence(16, 5)
        net = make_net(16, seed=10)
        result = realize_degree_sequence_explicit(net, dict(zip(net.node_ids, seq)))
        bounds = degree_lower_bounds(seq, recv_cap=net.recv_cap)
        ratio = tightness_ratio(result.stats.rounds, bounds.explicit_rounds)
        assert ratio <= polylog_envelope(16, power=4, constant=256)


class TestSeedStability:
    def test_different_seeds_both_valid(self):
        seq = power_law_sequence(14, seed=3)
        for seed in (0, 1, 2):
            net = make_net(14, seed=seed)
            demands = dict(zip(net.node_ids, seq))
            result = realize_degree_sequence(net, demands)
            assert result.realized == is_graphic(seq)
            if result.realized:
                assert check_degree_match(result.edges, demands, net.node_ids)

    def test_id_randomization_does_not_change_verdict(self):
        seq = random_graphic_sequence(12, 0.4, seed=11)
        net_random = Network(12, NCCConfig(seed=1, random_ids=True))
        net_sequential = Network(12, NCCConfig(seed=1, random_ids=False))
        res_r = realize_degree_sequence(net_random, dict(zip(net_random.node_ids, seq)))
        res_s = realize_degree_sequence(
            net_sequential, dict(zip(net_sequential.node_ids, seq))
        )
        assert res_r.realized and res_s.realized
        assert res_r.phases == res_s.phases
