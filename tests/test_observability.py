"""The observability layer: tracing, metrics registry, exporters.

Covers :mod:`repro.obs` in isolation (span trees, the columnar span
codec, the int-like registry counters, Prometheus text exposition,
Chrome/JSONL trace export, the scrape HTTP listener) and its
integration with the serve stack: root spans opened at admission in
every drain mode, trace context shipped over the wire to pool workers
under both fork and spawn start methods, worker subtrees reassembled in
the parent, chaos paths (crash / watchdog timeout / deadline) tagged
with their typed error codes, and the executor's ``stats()`` keys
staying a plain-int view over the registry instruments.
"""

from __future__ import annotations

import asyncio
import io
import json
import multiprocessing
import urllib.request
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.ncc import wire as wire_mod
from repro.ncc.network import Network
from repro.obs import (
    Counter,
    LatencyRecorder,
    MetricsRegistry,
    RoundPhaseAggregate,
    Span,
    Tracer,
    chrome_trace,
    decode_span_columns,
    encode_span_columns,
    span_to_dict,
    start_metrics_http,
    write_trace_jsonl,
)
from repro.obs.trace import MAX_CHILDREN
from repro.service import (
    BatchExecutor,
    FaultPlan,
    FaultRule,
    NetworkPool,
    RealizationRequest,
    SocketServer,
    faults,
)
from repro.service.executor import (
    _process_worker_init,
    _process_worker_run_wire,
)

HAS_SPAWN = "spawn" in multiprocessing.get_all_start_methods()


def req(kind="degree_implicit", scenario="regular", n=16, seed=0, **kw):
    return RealizationRequest(kind=kind, scenario=scenario, n=n, seed=seed, **kw)


def run(coro, timeout=120):
    return asyncio.run(asyncio.wait_for(coro, timeout=timeout))


# ---------------------------------------------------------------------- #
# Metrics registry                                                       #
# ---------------------------------------------------------------------- #


class TestMetrics:
    def test_counter_is_int_like(self):
        c = Counter("x_total", "")
        assert c == 0 and not c
        c.inc()
        c.inc(2)
        assert c == 3 and c > 2 and c <= 3 and int(c) == 3 and c
        with pytest.raises(ValueError):
            c.inc(-1)
        # += must fail loudly: counters are not silently rebindable ints.
        with pytest.raises(TypeError):
            c += 1

    def test_labeled_counter_as_dict_and_total(self):
        reg = MetricsRegistry()
        c = reg.counter("req_total", "requests", ("kind",))
        c.labels(kind="tree").inc()
        c.labels(kind="tree").inc()
        c.labels(kind="approx").inc()
        assert c.as_dict() == {"tree": 2, "approx": 1}
        assert c.value == 3
        with pytest.raises(ValueError):
            c.inc()  # labeled family needs .labels()
        with pytest.raises(ValueError):
            c.labels(nope=1)

    def test_registry_idempotent_by_name_and_type_checked(self):
        reg = MetricsRegistry()
        a = reg.counter("c_total", "")
        assert reg.counter("c_total", "") is a
        with pytest.raises(ValueError):
            reg.gauge("c_total", "")

    def test_gauge_callback_read_at_scrape(self):
        reg = MetricsRegistry()
        box = {"v": 1}
        reg.gauge("depth", "queue depth", fn=lambda: box["v"])
        assert "depth 1" in reg.render()
        box["v"] = 7
        assert "depth 7" in reg.render()

    def test_histogram_exposition_and_snapshot(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        text = reg.render()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text
        snap = h.snapshot()
        assert snap["count"] == 3 and snap["p50_ms"] == 500.0

    def test_collectors_join_exposition_and_replace_by_key(self):
        reg = MetricsRegistry()
        reg.register_collector(
            "ext", lambda: [("ext_v", "gauge", "", [("ext_v", (), 1.0)])]
        )
        assert "ext_v 1" in reg.render()
        reg.register_collector(
            "ext", lambda: [("ext_v", "gauge", "", [("ext_v", (), 2.0)])]
        )
        assert "ext_v 2" in reg.render()
        reg.unregister_collector("ext")
        assert "ext_v" not in reg.render()

    def test_render_is_wellformed_prometheus_text(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "help a").inc()
        reg.histogram("b_seconds", "help b").observe(0.01)
        for line in reg.render().strip().splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
            else:
                name_part, value = line.rsplit(" ", 1)
                float(value)  # every sample value parses
                assert name_part[0].isalpha()

    def test_latency_recorder_snapshot_shape(self):
        rec = LatencyRecorder()
        assert rec.snapshot() == {
            "count": 0, "mean_ms": 0.0, "p50_ms": 0.0, "p99_ms": 0.0,
        }
        rec.record(0.002)
        assert rec.snapshot()["count"] == 1


# ---------------------------------------------------------------------- #
# Spans and the columnar codec                                           #
# ---------------------------------------------------------------------- #


class TestSpans:
    def test_tree_roundtrip_through_columns(self):
        root = Span("request", kind="tree")
        child = root.child("run")
        child.child("rounds", observed_rounds=3).finish()
        child.finish()
        root.finish(verdict="REALIZED")
        clone = decode_span_columns(encode_span_columns(root))
        assert [s.name for s in clone.walk()] == [
            s.name for s in root.walk()
        ]
        assert [s.tags for s in clone.walk()] == [s.tags for s in root.walk()]
        assert clone.find("rounds").tags["observed_rounds"] == 3
        assert clone.trace_id == root.trace_id

    def test_child_bound_counts_drops(self):
        root = Span("request")
        for i in range(MAX_CHILDREN + 5):
            root.child(f"c{i}")
        root.finish()
        assert len(root.children) == MAX_CHILDREN
        assert root.tags["dropped_children"] == 5

    def test_from_context_links_parent(self):
        root = Span("request")
        worker = Span.from_context("worker", root.context(), pid=1)
        assert worker.trace_id == root.trace_id
        assert worker.parent_id == root.span_id

    def test_finish_is_idempotent(self):
        span = Span("x")
        span.finish()
        first = span.end
        span.finish()
        assert span.end == first

    def test_tracer_bounds_collected_traces(self):
        tracer = Tracer(max_traces=2)
        for _ in range(4):
            tracer.collect(tracer.start("request"))
        assert len(tracer) == 2
        assert tracer.overflowed == 2
        assert len(tracer.drain()) == 2
        assert len(tracer) == 0

    def test_round_phase_aggregate(self):
        agg = RoundPhaseAggregate()
        agg(1, {"validate": 0.5, "deliver": 1.0}, 4, 0)
        agg(2, {"validate": 0.25, "deliver": 0.5}, 2, 3)
        span = Span("run")
        agg.attach(span)
        rounds = span.find("rounds")
        assert rounds.tags["observed_rounds"] == 2
        assert rounds.tags["validate_s"] == 0.75
        assert rounds.tags["max_queue_depth"] == 4
        assert rounds.tags["max_defer_backlog"] == 3
        seen = {}
        agg.observe(lambda phase, sec: seen.__setitem__(phase, sec))
        assert seen == {"validate": 0.75, "deliver": 1.5}


class TestExporters:
    def _traced_root(self):
        root = Span("request", request_id="r")
        worker = Span.from_context("worker", root.context(), pid=12345)
        worker.child("run").finish()
        worker.finish()
        root.adopt(worker)
        root.finish()
        return root

    def test_jsonl_export(self):
        out = io.StringIO()
        assert write_trace_jsonl([self._traced_root()], out) == 1
        doc = json.loads(out.getvalue())
        assert doc["name"] == "request"
        assert doc["children"][0]["name"] == "worker"

    def test_span_to_dict_nests(self):
        doc = span_to_dict(self._traced_root())
        assert doc["children"][0]["children"][0]["name"] == "run"
        assert doc["duration_ms"] >= 0

    def test_chrome_trace_worker_gets_its_own_track(self):
        doc = chrome_trace([self._traced_root()])
        events = doc["traceEvents"]
        assert all(e["ph"] == "X" for e in events)
        pids = {e["name"]: e["pid"] for e in events}
        assert pids["worker"] == 12345  # worker track from the pid tag
        assert pids["request"] != 12345

    def test_metrics_http_listener(self):
        reg = MetricsRegistry()
        reg.counter("up_total", "").inc(3)
        httpd, _thread = start_metrics_http(reg, port=0)
        try:
            port = httpd.server_address[1]
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=10
            ) as body:
                text = body.read().decode()
                assert body.headers["Content-Type"].startswith("text/plain")
            assert "up_total 3" in text
        finally:
            httpd.shutdown()


# ---------------------------------------------------------------------- #
# Wire trailers                                                          #
# ---------------------------------------------------------------------- #


class TestWireTrailers:
    def test_untraced_envelope_is_bare(self):
        request = req(request_id="w")
        wire = request.to_wire()
        assert len(wire) == len(RealizationRequest._WIRE_KEYS)
        assert RealizationRequest.wire_trace(wire) is None
        assert RealizationRequest.from_wire(wire) == request

    def test_trace_context_rides_the_request_envelope(self):
        request = req(request_id="w")
        wire = request.to_wire(trace=("t-1", 42))
        assert RealizationRequest.wire_trace(wire) == ("t-1", 42)
        assert RealizationRequest.from_wire(wire) == request

    def test_span_columns_ride_the_response_envelope(self):
        from repro.service.api import RealizationResponse, error_response

        span = Span("worker")
        span.finish()
        response = error_response("r", "tree", "boom")
        wire = response.to_wire(spans=encode_span_columns(span))
        assert RealizationResponse.from_wire(wire) == response
        clone = decode_span_columns(RealizationResponse.wire_spans(wire))
        assert clone.name == "worker"
        assert RealizationResponse.wire_spans(response.to_wire()) is None

    def test_trailer_helpers(self):
        body = (1, 2, 3)
        wired = wire_mod.attach_trailer(body, "ctx")
        assert wire_mod.wire_body(wired, 3) == body
        assert wire_mod.wire_trailer(wired, 3) == "ctx"
        assert wire_mod.wire_trailer(body, 3) is None


# ---------------------------------------------------------------------- #
# Executor integration                                                   #
# ---------------------------------------------------------------------- #


class TestExecutorTracing:
    def test_sequential_handle_traces_with_engine_rounds(self):
        tracer = Tracer()
        executor = BatchExecutor(pool=NetworkPool(), tracer=tracer)
        try:
            response = executor.handle(req(request_id="r1"))
        finally:
            executor.close()
        assert response.verdict == "REALIZED"
        (root,) = tracer.drain()
        names = [s.name for s in root.walk()]
        assert names == ["request", "pool.lease", "run", "rounds"]
        assert root.tags["verdict"] == "REALIZED"
        rounds = root.find("rounds")
        assert rounds.tags["observed_rounds"] > 0
        # Engine phase timings landed in the labeled histogram too.
        phases = executor.engine_phase_hist
        assert phases.labels(phase="validate").count >= 1
        assert phases.labels(phase="deliver").count >= 1

    def test_cache_hit_trace_tagged_cached(self):
        tracer = Tracer()
        executor = BatchExecutor(pool=NetworkPool(), tracer=tracer)
        try:
            executor.handle(req(request_id="r1"))
            response = executor.handle(req(request_id="r2"))
        finally:
            executor.close()
        assert response.cached
        roots = tracer.drain()
        assert roots[1].tags.get("cached") is True
        assert [s.name for s in roots[1].walk()] == ["request"]

    def test_tracing_disabled_is_the_default_and_collects_nothing(self):
        executor = BatchExecutor(pool=NetworkPool())
        try:
            assert executor.tracer is None
            response = executor.handle(req())
        finally:
            executor.close()
        assert response.verdict == "REALIZED"

    def test_stats_view_keys_are_plain_ints(self):
        executor = BatchExecutor(pool=NetworkPool())
        try:
            executor.handle(req())
            stats = executor.stats()
        finally:
            executor.close()
        for key in (
            "requests_handled", "response_cache_hits", "coalesced_hits",
            "worker_crashes", "worker_timeouts", "retries",
            "deadline_exceeded", "degraded_handled",
        ):
            assert type(stats[key]) is int, key
        assert stats["requests_handled"] == 1
        assert stats["requests_by_kind"] == {"degree_implicit": 1}
        assert stats["latency_stages"]["execution"]["count"] == 1
        assert stats["latency_stages"]["queue_wait"]["count"] == 1
        json.dumps(stats)  # the serve stats envelope serializes verbatim

    def test_prometheus_exposition_covers_the_stack(self):
        executor = BatchExecutor(pool=NetworkPool())
        try:
            executor.handle(req())
            text = executor.metrics.render()
        finally:
            executor.close()
        assert "repro_requests_total 1" in text
        assert 'repro_requests_by_kind_total{kind="degree_implicit"} 1' in text
        assert "repro_pool_leases_total 1" in text
        assert "repro_breaker_state 0" in text
        assert "repro_request_execution_seconds_count 1" in text

    def test_observer_does_not_change_results(self):
        # Bit-identity: the same request with and without tracing.
        baseline = BatchExecutor(pool=NetworkPool())
        traced = BatchExecutor(pool=NetworkPool(), tracer=Tracer())
        try:
            a = baseline.handle(req(request_id="x"))
            b = traced.handle(req(request_id="x"))
        finally:
            baseline.close()
            traced.close()
        assert a.fingerprint() == b.fingerprint()

    def test_round_observer_cleared_by_reset(self):
        net = Network(8)
        net.set_round_observer(lambda *a: None)
        assert net.round_observer is not None
        net.reset()
        assert net.round_observer is None
        net.close()


class TestProcessTracing:
    def test_submit_reassembles_worker_subtree(self):
        tracer = Tracer()
        executor = BatchExecutor(
            mode="processes", workers=2, pool=NetworkPool(), tracer=tracer
        )
        try:
            response = executor.submit(req(request_id="p1")).result(timeout=120)
        finally:
            executor.close()
        assert response.verdict == "REALIZED"
        (root,) = tracer.drain()
        names = [s.name for s in root.walk()]
        assert names == ["request", "worker", "pool.lease", "run", "rounds"]
        worker = root.find("worker")
        assert worker.trace_id == root.trace_id
        assert worker.parent_id == root.span_id
        assert worker.tags["pid"] != root.tags["pid"]

    def test_batch_processes_traced_per_job(self):
        tracer = Tracer()
        executor = BatchExecutor(
            mode="processes", workers=2, pool=NetworkPool(), tracer=tracer
        )
        try:
            out = executor.run(
                [req(request_id="a"), req(request_id="b", n=12)]
            )
        finally:
            executor.close()
        assert [r.verdict for r in out] == ["REALIZED", "REALIZED"]
        roots = tracer.drain()
        assert len(roots) == 2
        for root in roots:
            assert root.find("worker") is not None

    def test_crash_recovery_spans_typed(self, monkeypatch):
        plan = FaultPlan([FaultRule(action="crash", request_ids=("boom",))])
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        faults.clear()
        tracer = Tracer()
        executor = BatchExecutor(
            mode="processes", workers=2, pool=NetworkPool(), tracer=tracer,
            cache_responses=False,
        )
        try:
            response = executor.submit(req(request_id="boom")).result(timeout=120)
        finally:
            executor.close()
            faults.clear()
        assert response.error_code == "WORKER_CRASHED"
        (root,) = tracer.drain()
        assert root.tags["error_code"] == "WORKER_CRASHED"
        recoveries = [s for s in root.walk() if s.name == "crash_recovery"]
        assert recoveries and recoveries[0].tags["attempt"] >= 1

    def test_watchdog_timeout_span_typed(self, monkeypatch):
        plan = FaultPlan([FaultRule(action="hang", request_ids=("stuck",))])
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        faults.clear()
        tracer = Tracer()
        executor = BatchExecutor(
            mode="processes", workers=2, pool=NetworkPool(), tracer=tracer,
            cache_responses=False, hang_timeout=0.5, watchdog_interval=0.05,
        )
        try:
            response = executor.submit(req(request_id="stuck")).result(timeout=120)
        finally:
            executor.close()
            faults.clear()
        assert response.error_code == "WORKER_TIMEOUT"
        (root,) = tracer.drain()
        assert root.tags["error_code"] == "WORKER_TIMEOUT"
        recovery = root.find("crash_recovery")
        assert recovery is not None and recovery.tags["timed_out"] is True

    def test_deadline_exceeded_span_typed(self):
        tracer = Tracer()
        executor = BatchExecutor(
            mode="processes", workers=2, pool=NetworkPool(), tracer=tracer,
            cache_responses=False,
        )
        try:
            response = executor.submit(
                req(request_id="dl", deadline_ms=1)
            ).result(timeout=120)
        finally:
            executor.close()
        assert response.error_code == "DEADLINE_EXCEEDED"
        (root,) = tracer.drain()
        assert root.tags["error_code"] == "DEADLINE_EXCEEDED"

    @pytest.mark.skipif(not HAS_SPAWN, reason="spawn start method unavailable")
    def test_trace_context_propagates_under_spawn(self):
        # The context travels in the wire envelope, not inherited process
        # state — so a spawn worker (fresh interpreter, nothing forked)
        # must produce the same linked subtree a fork worker does.
        root = Span("request", request_id="sp")
        ctx = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(
            max_workers=1,
            mp_context=ctx,
            initializer=_process_worker_init,
            initargs=(True, True),
        ) as pool:
            wire = pool.submit(
                _process_worker_run_wire,
                req(request_id="sp").to_wire(trace=root.context()),
                None,
            ).result(timeout=180)
        from repro.service.api import RealizationResponse

        response = RealizationResponse.from_wire(wire)
        assert response.verdict == "REALIZED"
        worker = decode_span_columns(RealizationResponse.wire_spans(wire))
        root.adopt(worker)
        root.finish()
        assert worker.trace_id == root.trace_id
        assert worker.parent_id == root.span_id
        assert [s.name for s in root.walk()] == [
            "request", "worker", "pool.lease", "run", "rounds",
        ]


# ---------------------------------------------------------------------- #
# Socket serve                                                           #
# ---------------------------------------------------------------------- #


class TestSocketObservability:
    def test_metrics_kind_and_uptime(self):
        async def scenario():
            tracer = Tracer()
            executor = BatchExecutor(pool=NetworkPool(), tracer=tracer)
            server = await SocketServer(executor, port=0, window=8).start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )

            async def roundtrip(payload):
                writer.write((json.dumps(payload) + "\n").encode())
                await writer.drain()
                return json.loads(await reader.readline())

            realized = await roundtrip(
                {"request_id": "a", "kind": "degree_implicit",
                 "scenario": "regular", "n": 12}
            )
            assert realized["verdict"] == "REALIZED"
            stats = await roundtrip({"kind": "stats", "request_id": "s"})
            assert stats["server"]["uptime_s"] >= 0
            assert stats["executor"]["requests_by_kind"] == {
                "degree_implicit": 1
            }
            metrics = await roundtrip({"kind": "metrics", "request_id": "m"})
            assert metrics["verdict"] == "METRICS"
            assert metrics["content_type"].startswith("text/plain")
            assert "repro_requests_total 1" in metrics["text"]
            assert "repro_server_handled_total" in metrics["text"]
            assert "repro_server_uptime_seconds" in metrics["text"]
            writer.close()
            server.drain()
            await server.wait_done()
            executor.close()
            (root,) = tracer.drain()
            assert root.tags["verdict"] == "REALIZED"

        run(scenario())
