"""Tests for the Õ(1)-phase approximate degree realization (stub pairing)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approximate import (
    StubPairing,
    approximate_degree_realization,
)
from repro.ncc.errors import ProtocolError
from repro.validation import check_explicit, check_simple
from repro.workloads import (
    concentrated_sequence,
    power_law_sequence,
    regular_sequence,
)

from tests.conftest import make_net


class TestStubPairing:
    @pytest.mark.parametrize("two_m", [2, 4, 6, 16, 50, 256, 1000])
    def test_fixed_point_free_involution(self, two_m):
        pairing = StubPairing(two_m, seed=7)
        seen = set()
        for t in range(two_m):
            u = pairing.pair(t)
            assert 0 <= u < two_m
            assert u != t
            assert pairing.pair(u) == t
            seen.add(frozenset((t, u)))
        assert len(seen) == two_m // 2  # a perfect matching on stubs

    def test_different_seeds_differ(self):
        a = StubPairing(64, seed=1)
        b = StubPairing(64, seed=2)
        assert any(a.pair(t) != b.pair(t) for t in range(64))

    def test_rejects_odd_or_empty(self):
        with pytest.raises(ValueError):
            StubPairing(3, seed=0)
        with pytest.raises(ValueError):
            StubPairing(0, seed=0)

    def test_out_of_range_stub_rejected(self):
        pairing = StubPairing(10, seed=0)
        with pytest.raises(ValueError):
            pairing.pair(10)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 500), st.integers(0, 2**32))
    def test_property_involution(self, half_m, seed):
        two_m = 2 * half_m
        pairing = StubPairing(two_m, seed=seed)
        rng = random.Random(seed)
        for _ in range(10):
            t = rng.randrange(two_m)
            u = pairing.pair(t)
            assert u != t and pairing.pair(u) == t


class TestApproximateRealization:
    def test_explicit_and_simple(self):
        net = make_net(24, seed=1)
        seq = regular_sequence(24, 4)
        result = approximate_degree_realization(net, dict(zip(net.node_ids, seq)))
        assert check_simple(result.edges)
        assert check_explicit(net)
        # never over-realizes
        for v, d in result.demanded.items():
            assert result.realized_degrees[v] <= d

    def test_error_accounting_consistent(self):
        net = make_net(32, seed=2)
        seq = regular_sequence(32, 6)
        result = approximate_degree_realization(net, dict(zip(net.node_ids, seq)))
        # L1 error == 2 * (self_pairs + duplicate_pairs) when no repairs ran
        assert result.l1_error == 2 * (result.self_pairs + result.duplicate_pairs)

    def test_relative_error_small_for_sparse(self):
        net = make_net(48, seed=3)
        seq = regular_sequence(48, 4)
        result = approximate_degree_realization(net, dict(zip(net.node_ids, seq)))
        assert result.relative_error <= 0.15

    def test_repair_rounds_reduce_error(self):
        seq = regular_sequence(32, 8)
        errors = []
        for repair in (0, 2):
            net = make_net(32, seed=4)
            result = approximate_degree_realization(
                net, dict(zip(net.node_ids, seq)), repair_rounds=repair
            )
            errors.append(result.l1_error)
        assert errors[1] <= errors[0]

    def test_rounds_single_phase_not_delta_phases(self):
        """Unlike Algorithm 3, cost does not multiply with Δ phases."""
        rounds = {}
        for d in (4, 12):
            net = make_net(32, seed=5)
            seq = regular_sequence(32, d)
            result = approximate_degree_realization(
                net, dict(zip(net.node_ids, seq))
            )
            rounds[d] = result.stats.rounds
        # tripling Δ must cost far less than 3x (one-shot vs phase loop).
        assert rounds[12] <= 2 * rounds[4]

    def test_power_law_workload(self):
        seq = power_law_sequence(40, seed=6)
        if sum(seq) % 2:
            seq[0] += 1
        net = make_net(40, seed=6)
        result = approximate_degree_realization(net, dict(zip(net.node_ids, seq)))
        assert check_simple(result.edges)
        assert result.relative_error <= 0.5

    def test_zero_demands(self):
        net = make_net(8, seed=7)
        result = approximate_degree_realization(net, {v: 0 for v in net.node_ids})
        assert result.num_edges == 0
        assert result.l1_error == 0

    def test_odd_sum_rejected(self):
        net = make_net(5, seed=8)
        demands = dict(zip(net.node_ids, (1, 0, 0, 0, 0)))
        with pytest.raises(ProtocolError):
            approximate_degree_realization(net, demands)

    def test_negative_rejected(self):
        net = make_net(4, seed=9)
        demands = dict(zip(net.node_ids, (-1, 1, 0, 0)))
        with pytest.raises(ProtocolError):
            approximate_degree_realization(net, demands)

    def test_caps_respected(self):
        net = make_net(40, seed=10)
        seq = regular_sequence(40, 6)
        approximate_degree_realization(net, dict(zip(net.node_ids, seq)))
        assert net.max_round_load <= net.recv_cap

    def test_deterministic_per_seed(self):
        seq = regular_sequence(24, 4)
        first = approximate_degree_realization(
            make_net(24, seed=11), dict(zip(make_net(24, seed=11).node_ids, seq))
        )
        second = approximate_degree_realization(
            make_net(24, seed=11), dict(zip(make_net(24, seed=11).node_ids, seq))
        )
        assert first.edges == second.edges
