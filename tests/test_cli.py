"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_info(self, capsys):
        assert main(["info", "--n", "32"]) == 0
        out = capsys.readouterr().out
        assert "n=32" in out
        assert "per-round caps" in out

    def test_realize_graphic(self, capsys):
        assert main(["realize", "--degrees", "3,3,3,3"]) == 0
        out = capsys.readouterr().out
        assert "REALIZED: 6 edges" in out
        assert "phase breakdown" in out

    def test_realize_unrealizable_exit_code(self, capsys):
        assert main(["realize", "--degrees", "1,1,1"]) == 1
        out = capsys.readouterr().out
        assert "UNREALIZABLE" in out

    def test_realize_explicit(self, capsys):
        assert main(["realize", "--degrees", "2,2,2,1,1", "--explicit"]) == 0
        out = capsys.readouterr().out
        assert "explicit" in out

    def test_realize_envelope(self, capsys):
        assert main(["realize", "--degrees", "4,4,4,4,0", "--envelope"]) == 0
        out = capsys.readouterr().out
        assert "REALIZED" in out

    def test_tree_min_and_max(self, capsys):
        assert main(["tree", "--degrees", "3,2,2,1,1,1", "--variant", "min"]) == 0
        min_out = capsys.readouterr().out
        assert "diameter" in min_out
        assert main(["tree", "--degrees", "3,2,2,1,1,1", "--variant", "max"]) == 0

    def test_tree_unrealizable(self, capsys):
        assert main(["tree", "--degrees", "2,2,2"]) == 1

    def test_connectivity_ncc0(self, capsys):
        assert main(["connectivity", "--rho", "2,2,1,1,1,1", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "ratio" in out and "explicit" in out

    def test_connectivity_ncc1(self, capsys):
        assert main(["connectivity", "--rho", "2,2,1,1,1,1", "--model", "ncc1"]) == 0
        out = capsys.readouterr().out
        assert "implicit" in out

    def test_approx(self, capsys):
        assert main(["approx", "--degrees", "4,4,4,4,4,4,4,4", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "APPROXIMATED" in out

    def test_bad_degree_list(self):
        with pytest.raises(SystemExit):
            main(["realize", "--degrees", "a,b"])

    def test_empty_degree_list_rejected(self):
        with pytest.raises(SystemExit, match="empty integer list"):
            main(["realize", "--degrees", ""])

    def test_garbage_adjacent_degree_list_rejected(self):
        with pytest.raises(SystemExit, match="empty integer list"):
            main(["tree", "--degrees", ",, ,"])

    def test_seed_flag(self, capsys):
        assert main(["--seed", "7", "realize", "--degrees", "2,2,2,2", "--fast"]) == 0

    def test_engine_flag_selects_engine(self, capsys):
        assert main(["realize", "--degrees", "2,2,2,2", "--fast",
                     "--engine", "reference"]) == 0
        reference_out = capsys.readouterr().out
        assert main(["realize", "--degrees", "2,2,2,2", "--fast",
                     "--engine", "fast"]) == 0
        fast_out = capsys.readouterr().out
        # Bit-identical engines: the printed costs must agree.
        assert reference_out == fast_out

    def test_engine_flag_on_tree_and_connectivity(self, capsys):
        assert main(["tree", "--degrees", "3,2,2,1,1,1,2", "--fast",
                     "--engine", "reference"]) == 0
        assert main(["connectivity", "--rho", "2,2,1,1,1,1", "--fast",
                     "--engine", "reference"]) == 0


class TestServiceCLI:
    def test_scenarios_listing(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("power_law", "tree_random", "rho_uniform", "sorting"):
            assert name in out

    def test_batch_file(self, tmp_path, capsys):
        import json

        path = tmp_path / "requests.jsonl"
        path.write_text(
            "\n".join(
                [
                    '{"request_id": "a", "kind": "degree_implicit",'
                    ' "scenario": "regular", "n": 12, "seed": 1}',
                    '{"request_id": "b", "kind": "tree",'
                    ' "degrees": [3, 2, 2, 1, 1, 1, 2]}',
                ]
            )
        )
        assert main(["batch", str(path)]) == 0
        rows = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert [r["request_id"] for r in rows] == ["a", "b"]
        assert all(r["verdict"] == "REALIZED" for r in rows)

    def test_batch_stdin_with_error_exits_nonzero(self, capsys, monkeypatch):
        import io
        import json
        import sys as _sys

        monkeypatch.setattr(
            _sys, "stdin",
            io.StringIO('{"kind": "wat", "degrees": [1, 1]}\n'),
        )
        assert main(["batch", "-"]) == 1
        rows = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert rows[0]["verdict"] == "ERROR"

    def test_batch_missing_file(self):
        with pytest.raises(SystemExit, match="cannot read batch file"):
            main(["batch", "/nonexistent/requests.jsonl"])

    def test_serve_stdin_stdout(self, capsys, monkeypatch):
        import io
        import json
        import sys as _sys

        monkeypatch.setattr(
            _sys, "stdin",
            io.StringIO(
                '{"request_id": "s1", "kind": "connectivity",'
                ' "scenario": "rho_uniform", "n": 10}\n'
            ),
        )
        assert main(["serve"]) == 0
        rows = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert rows[0]["request_id"] == "s1"
        assert rows[0]["verdict"] == "REALIZED"

    def test_serve_error_responses_exit_nonzero(self, capsys, monkeypatch):
        """serve must propagate errors in its exit code like batch does."""
        import io
        import json
        import sys as _sys

        monkeypatch.setattr(_sys, "stdin", io.StringIO("not json at all\n"))
        assert main(["serve"]) == 1
        captured = capsys.readouterr()
        rows = [json.loads(line) for line in captured.out.splitlines()]
        assert rows[0]["verdict"] == "ERROR"
        assert "1 error(s)" in captured.err

    def test_serve_window_validated_at_the_cli(self):
        with pytest.raises(SystemExit, match="window"):
            main(["serve", "--window", "0"])
        with pytest.raises(SystemExit, match="window"):
            main(["serve", "--window", "-4"])

    def test_serve_port_validated_at_the_cli(self):
        with pytest.raises(SystemExit, match="--port"):
            main(["serve", "--port", "70000"])
        with pytest.raises(SystemExit, match="--port"):
            main(["serve", "--port", "-1"])

    def test_serve_stdio_honours_window_flag(self, capsys, monkeypatch):
        import io
        import json
        import sys as _sys

        monkeypatch.setattr(
            _sys, "stdin",
            io.StringIO(
                '{"request_id": "w1", "kind": "tree", "scenario": "tree_star",'
                ' "n": 8}\n'
            ),
        )
        assert main(["serve", "--window", "1"]) == 0
        rows = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert rows[0]["verdict"] == "REALIZED"

    def test_batch_summary_reflects_live_stats(self, tmp_path, capsys):
        """Regression: the summary counters were read after close()."""
        path = tmp_path / "requests.jsonl"
        request = (
            '{{"request_id": "{rid}", "kind": "degree_implicit",'
            ' "scenario": "regular", "n": 12, "seed": 3}}'
        )
        path.write_text(
            request.format(rid="c1") + "\n" + request.format(rid="c2")
        )
        assert main(["batch", str(path)]) == 0
        err = capsys.readouterr().err
        # Identical computations: one execution (one pool lease), one
        # cache hit — visible only if stats were captured pre-close.
        assert "cache hits 1" in err
        assert "pool hits 0/1" in err
        assert main(["profile", "tree_random", "--n", "12", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "profile: tree_random" in out

    def test_profile_legacy_aliases(self, capsys):
        assert main(["profile", "realize", "--n", "12", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "profile: realize" in out
