"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_info(self, capsys):
        assert main(["info", "--n", "32"]) == 0
        out = capsys.readouterr().out
        assert "n=32" in out
        assert "per-round caps" in out

    def test_realize_graphic(self, capsys):
        assert main(["realize", "--degrees", "3,3,3,3"]) == 0
        out = capsys.readouterr().out
        assert "REALIZED: 6 edges" in out
        assert "phase breakdown" in out

    def test_realize_unrealizable_exit_code(self, capsys):
        assert main(["realize", "--degrees", "1,1,1"]) == 1
        out = capsys.readouterr().out
        assert "UNREALIZABLE" in out

    def test_realize_explicit(self, capsys):
        assert main(["realize", "--degrees", "2,2,2,1,1", "--explicit"]) == 0
        out = capsys.readouterr().out
        assert "explicit" in out

    def test_realize_envelope(self, capsys):
        assert main(["realize", "--degrees", "4,4,4,4,0", "--envelope"]) == 0
        out = capsys.readouterr().out
        assert "REALIZED" in out

    def test_tree_min_and_max(self, capsys):
        assert main(["tree", "--degrees", "3,2,2,1,1,1", "--variant", "min"]) == 0
        min_out = capsys.readouterr().out
        assert "diameter" in min_out
        assert main(["tree", "--degrees", "3,2,2,1,1,1", "--variant", "max"]) == 0

    def test_tree_unrealizable(self, capsys):
        assert main(["tree", "--degrees", "2,2,2"]) == 1

    def test_connectivity_ncc0(self, capsys):
        assert main(["connectivity", "--rho", "2,2,1,1,1,1", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "ratio" in out and "explicit" in out

    def test_connectivity_ncc1(self, capsys):
        assert main(["connectivity", "--rho", "2,2,1,1,1,1", "--model", "ncc1"]) == 0
        out = capsys.readouterr().out
        assert "implicit" in out

    def test_approx(self, capsys):
        assert main(["approx", "--degrees", "4,4,4,4,4,4,4,4", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "APPROXIMATED" in out

    def test_bad_degree_list(self):
        with pytest.raises(SystemExit):
            main(["realize", "--degrees", "a,b"])

    def test_seed_flag(self, capsys):
        assert main(["--seed", "7", "realize", "--degrees", "2,2,2,2", "--fast"]) == 0
