"""Differential coverage for the DEFER and UNBOUNDED enforcement modes.

The cap fuzz suite exercises single adversarial plans; this file runs
*workloads* — multi-round protocols through the Scheduler that overdrive
the receive cap on purpose — under both non-strict modes, and checks
fast-vs-reference bit-identity of the full observable trace: per-round
inboxes (via tracers), backlog evolution, knowledge, and RoundStats.
It also pins the semantics the modes promise: DEFER delivers everything
eventually in per-receiver FIFO order; UNBOUNDED delivers everything
immediately; correct (non-overdriving) protocols behave identically
under all three modes.
"""

from __future__ import annotations

import pytest

from repro.core.degree_realization import realize_degree_sequence
from repro.ncc.config import EnforcementMode, NCCConfig, Variant
from repro.ncc.message import msg
from repro.ncc.network import Network
from repro.primitives.protocol import run_protocol
from repro.workloads import random_graphic_sequence

#: "sharded" runs at the default shard count; the overdriving workloads
#: below then cover the multiprocess engine's defer-spill bookkeeping
#: (worker backlogs + the parent's deferred mirror) end to end.
ENGINES = ("fast", "reference", "sharded")
NONSTRICT = (EnforcementMode.DEFER, EnforcementMode.UNBOUNDED)


def ncc1_net(n: int, seed: int, engine: str, mode: EnforcementMode) -> Network:
    return Network(
        n,
        NCCConfig(
            seed=seed,
            engine=engine,
            variant=Variant.NCC1,
            random_ids=False,
            enforcement=mode,
        ),
    )


def attach_trace(net: Network):
    """Record every round's inboxes as comparable tuples."""
    trace = []

    def tracer(round_no, inboxes):
        trace.append(
            (
                round_no,
                tuple(
                    (dst, tuple((m.kind, m.src, m.ids, m.data) for m in box))
                    for dst, box in sorted(inboxes.items())
                ),
            )
        )

    net.tracers.append(tracer)
    return trace


def hub_flood(net: Network, waves: int, overshoot: int):
    """A cap-overdriving protocol: every wave, recv_cap+overshoot nodes
    send one message to a hub (legal sends — only the receiver drowns)."""
    ids = list(net.node_ids)
    hub = ids[0]
    senders = ids[1 : 1 + net.recv_cap + overshoot]

    def proto():
        for wave in range(waves):
            yield [(s, hub, msg("flood", data=(wave,))) for s in senders]
        return None

    run_protocol(net, proto())


def observable(net: Network, trace):
    return (
        net.stats(),
        net.pending_deferred(),
        {v: frozenset(s) for v, s in net.known.items()},
        tuple(trace),
    )


class TestOverdrivingWorkloadDifferential:
    @pytest.mark.parametrize("mode", NONSTRICT)
    @pytest.mark.parametrize("waves,overshoot", [(1, 1), (3, 4), (5, 7)])
    def test_fast_matches_reference(self, mode, waves, overshoot):
        outcomes = {}
        for engine in ENGINES:
            net = ncc1_net(40, seed=2, engine=engine, mode=mode)
            trace = attach_trace(net)
            hub_flood(net, waves=waves, overshoot=overshoot)
            if mode is EnforcementMode.DEFER:
                net.drain()
            outcomes[engine] = observable(net, trace)
            net.close()
        for engine in ENGINES:
            assert outcomes[engine] == outcomes["reference"], engine
        assert outcomes["fast"][1] == 0  # nothing left queued

    @pytest.mark.parametrize("engine", ENGINES)
    def test_defer_delivers_fifo_and_charges_rounds(self, engine):
        net = ncc1_net(40, seed=3, engine=engine, mode=EnforcementMode.DEFER)
        trace = attach_trace(net)
        waves, overshoot = 4, 5
        hub_flood(net, waves=waves, overshoot=overshoot)
        backlog = net.pending_deferred()
        assert backlog == waves * overshoot  # each wave spills its surplus
        spent = net.drain()
        assert spent > 0 and net.pending_deferred() == 0
        # Per-receiver FIFO: wave tags arrive in non-decreasing order.
        hub = net.node_ids[0]
        waves_seen = [
            m[3][0]
            for _, boxes in trace
            for dst, box in boxes
            if dst == hub
            for m in box
        ]
        assert waves_seen == sorted(waves_seen)
        total = waves * (net.recv_cap + overshoot)
        assert len(waves_seen) == total
        assert net.messages_delivered == total

    @pytest.mark.parametrize("engine", ENGINES)
    def test_unbounded_delivers_everything_immediately(self, engine):
        net = ncc1_net(40, seed=4, engine=engine, mode=EnforcementMode.UNBOUNDED)
        overshoot = 6
        ids = list(net.node_ids)
        hub = ids[0]
        senders = ids[1 : 1 + net.recv_cap + overshoot]
        inboxes = net.step([(s, hub, msg("burst")) for s in senders])
        assert len(inboxes[hub]) == net.recv_cap + overshoot
        assert net.pending_deferred() == 0
        assert net.max_round_load == net.recv_cap + overshoot

    def test_unbounded_still_enforces_send_caps_and_gating(self):
        for engine in ENGINES:
            net = ncc1_net(32, seed=5, engine=engine, mode=EnforcementMode.UNBOUNDED)
            ids = list(net.node_ids)
            sender = ids[0]
            targets = ids[1 : 2 + net.send_cap]
            from repro.ncc.errors import SendCapExceeded

            with pytest.raises(SendCapExceeded):
                net.step([(sender, dst, msg("x")) for dst in targets])


class TestCorrectProtocolsAreModeInvariant:
    """A protocol that never overdrives behaves identically in every
    mode — the realizers' runs must not depend on enforcement."""

    @pytest.mark.parametrize("mode", NONSTRICT)
    @pytest.mark.parametrize("engine", ENGINES)
    def test_degree_realization_matches_strict(self, mode, engine):
        seq = random_graphic_sequence(18, 0.3, seed=6)
        outcomes = {}
        for enforcement in (EnforcementMode.STRICT, mode):
            net = Network(18, NCCConfig(seed=1, engine=engine, enforcement=enforcement))
            result = realize_degree_sequence(net, dict(zip(net.node_ids, seq)))
            outcomes[enforcement] = (
                result.realized,
                result.edges,
                result.phases,
                result.stats,
            )
        assert outcomes[mode] == outcomes[EnforcementMode.STRICT]
