"""Tests for tree traversal protocols (Cor 2) and prefix sums."""

import pytest

from repro.ncc.errors import ProtocolError
from repro.primitives.bbst import build_bbst
from repro.primitives.broadcast import global_aggregate, global_broadcast
from repro.primitives.collection import global_collect
from repro.primitives.path_ops import build_undirected_path
from repro.primitives.prefix import prefix_sums
from repro.primitives.protocol import ns_state, run_protocol
from repro.primitives.traversal import (
    annotate_positions,
    broadcast_from_root,
    compute_subtree_sizes,
    find_median,
    node_at_position,
    report_to_root,
)

from tests.conftest import make_net


def build_annotated(net, publish=False):
    def proto():
        ns, root = yield from build_bbst(net)
        members = list(net.node_ids)
        yield from compute_subtree_sizes(net, ns, members)
        yield from annotate_positions(net, ns, members, root)
        return ns, root

    return run_protocol(net, proto())


class TestSizesAndPositions:
    @pytest.mark.parametrize("n", [1, 2, 5, 16, 33])
    def test_positions_match_path_order(self, n):
        net = make_net(n, seed=n)
        ns, root = build_annotated(net)
        for pos, v in enumerate(net.node_ids):
            assert ns_state(net, v, ns)["pos"] == pos

    def test_root_size_is_n(self):
        net = make_net(21, seed=1)
        ns, root = build_annotated(net)
        assert ns_state(net, root, ns)["size"] == 21

    def test_subtree_sizes_consistent(self):
        net = make_net(18, seed=2)
        ns, root = build_annotated(net)
        for v in net.node_ids:
            state = ns_state(net, v, ns)
            assert state["size"] == 1 + state["lsize"] + state["rsize"]

    def test_node_at_position(self):
        net = make_net(9, seed=3)
        ns, root = build_annotated(net)
        for pos, v in enumerate(net.node_ids):
            assert node_at_position(net, ns, list(net.node_ids), pos) == v
        with pytest.raises(KeyError):
            node_at_position(net, ns, list(net.node_ids), 99)


class TestMedian:
    @pytest.mark.parametrize("n", [1, 2, 3, 10, 17, 32])
    def test_median_correct_and_common_knowledge(self, n):
        net = make_net(n, seed=n)

        def proto():
            ns, root = yield from build_bbst(net)
            members = list(net.node_ids)
            yield from compute_subtree_sizes(net, ns, members)
            yield from annotate_positions(net, ns, members, root)
            median = yield from find_median(net, ns, members, root)
            return ns, median

        ns, median = run_protocol(net, proto())
        assert median == net.node_ids[(n - 1) // 2]
        for v in net.node_ids:
            assert ns_state(net, v, ns)["median"] == median


class TestReportAndBroadcast:
    def test_report_to_root_escalates_payload(self):
        net = make_net(12, seed=4)

        def proto():
            ns, root = yield from build_bbst(net)
            members = list(net.node_ids)
            yield from compute_subtree_sizes(net, ns, members)
            yield from annotate_positions(net, ns, members, root)
            target = members[7]
            ids, data = yield from report_to_root(
                net, ns, members, root,
                matches=lambda v: v == target,
                payload=lambda v: ((v,), (99,)),
            )
            return ids, data, target

        ids, data, target = run_protocol(net, proto())
        assert ids == (target,)
        assert data == (99,)

    def test_report_requires_unique_match(self):
        net = make_net(6, seed=5)

        def proto():
            ns, root = yield from build_bbst(net)
            members = list(net.node_ids)
            yield from report_to_root(
                net, ns, members, root,
                matches=lambda v: True,  # everyone matches: invalid
                payload=lambda v: ((v,), ()),
            )

        with pytest.raises(ProtocolError):
            run_protocol(net, proto())

    def test_broadcast_reaches_all(self):
        net = make_net(15, seed=6)

        def proto():
            ns, root = yield from build_bbst(net)
            members = list(net.node_ids)
            yield from broadcast_from_root(
                net, ns, members, root, key="news", value=(1, 2), value_ids=(root,)
            )
            return ns, root

        ns, root = run_protocol(net, proto())
        for v in net.node_ids:
            assert ns_state(net, v, ns)["news"] == ((root,), (1, 2))


class TestGlobalPrimitives:
    def test_broadcast_from_any_leader(self):
        net = make_net(20, seed=7)

        def proto():
            ns, root = yield from build_bbst(net)
            members = list(net.node_ids)
            yield from compute_subtree_sizes(net, ns, members)
            yield from annotate_positions(net, ns, members, root)
            leader = members[13]
            net.grant_knowledge(leader, root)  # leader knows the root handle
            token = yield from global_broadcast(
                net, ns, members, root, leader, value=(42,)
            )
            return ns, token

        ns, token = run_protocol(net, proto())
        assert token == ((), (42,))
        for v in net.node_ids:
            assert ns_state(net, v, ns)["bc_token"] == ((), (42,))

    @pytest.mark.parametrize(
        "combine,expect",
        [(lambda a, b: a + b, sum(range(24))), (max, 23), (min, 0)],
    )
    def test_aggregate_distributive_functions(self, combine, expect):
        net = make_net(24, seed=8)
        position = {v: i for i, v in enumerate(net.node_ids)}

        def proto():
            ns, root = yield from build_bbst(net)
            members = list(net.node_ids)
            out = yield from global_aggregate(
                net, ns, members, root, leader=root,
                value_of=lambda v: position[v], combine=combine,
            )
            return out

        assert run_protocol(net, proto()) == expect

    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_global_collect_k_tokens(self, k):
        net = make_net(30, seed=9)
        ids = list(net.node_ids)
        holders = {ids[i * (29 // max(1, k - 1)) if k > 1 else 0]: ((ids[0],), (i,))
                   for i in range(k)}

        def proto():
            ns, root = yield from build_bbst(net)
            members = list(net.node_ids)
            out = yield from global_collect(
                net, ns, members, root, leader=root, holders=holders
            )
            return out

        collected = run_protocol(net, proto())
        assert len(collected) == len(holders)
        assert sorted(d for _ids, d in collected) == sorted(
            d for _ids, d in holders.values()
        )

    def test_collect_rounds_linear_in_k_plus_log(self):
        """Theorem 5 shape: rounds = O(k + log n)."""
        import math

        costs = {}
        for k in (4, 16, 64):
            net = make_net(128, seed=10)
            ids = list(net.node_ids)
            holders = {ids[i]: ((ids[i],), (i,)) for i in range(1, k + 1)}

            def proto():
                ns, root = yield from build_bbst(net)
                members = list(net.node_ids)
                base = net.rounds
                out = yield from global_collect(
                    net, ns, members, root, leader=root, holders=holders
                )
                return net.rounds - base

            costs[k] = run_protocol(net, proto())
        log_n = math.log2(128)
        for k, rounds in costs.items():
            assert rounds <= 4 * (k + 4 * log_n), (k, rounds)


class TestPrefixSums:
    @pytest.mark.parametrize("n", [2, 3, 9, 16, 30])
    def test_prefix_of_positions(self, n):
        net = make_net(n, seed=n)
        position = {v: i for i, v in enumerate(net.node_ids)}

        def proto():
            ns, root = yield from build_bbst(net)
            members = list(net.node_ids)
            yield from compute_subtree_sizes(net, ns, members)
            yield from annotate_positions(net, ns, members, root)
            total = yield from prefix_sums(
                net, ns, members, root, value_of=lambda v: position[v] + 1
            )
            return ns, total

        ns, total = run_protocol(net, proto())
        assert total == n * (n + 1) // 2
        for v in net.node_ids:
            i = position[v]
            assert ns_state(net, v, ns)["prefix"] == i * (i + 1) // 2

    def test_prefix_with_zero_values(self):
        net = make_net(8, seed=1)

        def proto():
            ns, root = yield from build_bbst(net)
            members = list(net.node_ids)
            yield from compute_subtree_sizes(net, ns, members)
            yield from annotate_positions(net, ns, members, root)
            total = yield from prefix_sums(net, ns, members, root, value_of=lambda v: 0)
            return ns, total

        ns, total = run_protocol(net, proto())
        assert total == 0
        for v in net.node_ids:
            assert ns_state(net, v, ns)["prefix"] == 0
