"""Unit tests for NCC components: ids, config, knowledge graphs, metrics."""

import math

import pytest

from repro.ncc.config import EnforcementMode, NCCConfig, Variant
from repro.ncc.ids import IdSpace
from repro.ncc.knowledge import (
    complete_knowledge,
    cycle_knowledge,
    knowledge_for_variant,
    path_knowledge,
    random_tree_knowledge,
)
from repro.ncc.metrics import RoundStats, log2n, polylog


class TestIdSpace:
    def test_sequential_ids(self):
        space = IdSpace(5, random_ids=False)
        assert list(space.ids) == [1, 2, 3, 4, 5]
        assert space.index_of(3) == 2
        assert space.id_of(0) == 1

    def test_random_ids_unique_and_in_range(self):
        space = IdSpace(100, exponent=3, random_ids=True, seed=9)
        ids = list(space.ids)
        assert len(set(ids)) == 100
        assert all(1 <= x <= 100**3 for x in ids)

    def test_random_ids_deterministic_per_seed(self):
        a = IdSpace(20, seed=5)
        b = IdSpace(20, seed=5)
        c = IdSpace(20, seed=6)
        assert list(a.ids) == list(b.ids)
        assert list(a.ids) != list(c.ids)

    def test_contains_and_len(self):
        space = IdSpace(4, random_ids=False)
        assert 4 in space
        assert 5 not in space
        assert len(space) == 4

    def test_unknown_id_raises(self):
        space = IdSpace(4, random_ids=False)
        with pytest.raises(KeyError):
            space.index_of(99)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            IdSpace(0)
        with pytest.raises(ValueError):
            IdSpace(4, exponent=0)

    def test_single_node(self):
        space = IdSpace(1)
        assert len(space) == 1


class TestConfig:
    def test_caps_floor(self):
        config = NCCConfig(min_cap=8)
        send, recv = config.cap_for(4)
        assert send >= 8 and recv >= 8

    def test_caps_grow_logarithmically(self):
        config = NCCConfig(send_cap_factor=2.0, min_cap=1)
        send_256, _ = config.cap_for(256)
        send_65536, _ = config.cap_for(65536)
        assert send_256 == 16
        assert send_65536 == 32

    def test_replace(self):
        config = NCCConfig(seed=1)
        other = config.replace(seed=2, variant=Variant.NCC1)
        assert other.seed == 2
        assert other.variant is Variant.NCC1
        assert config.seed == 1  # frozen original untouched

    def test_enforcement_modes_exist(self):
        assert EnforcementMode.STRICT.value == "strict"
        assert EnforcementMode.DEFER.value == "defer"
        assert EnforcementMode.UNBOUNDED.value == "unbounded"


class TestKnowledgeGraphs:
    IDS = (10, 20, 30, 40)

    def test_path(self):
        known = path_knowledge(self.IDS)
        assert known[10] == {20}
        assert known[40] == set()

    def test_cycle(self):
        known = cycle_knowledge(self.IDS)
        assert known[40] == {10}

    def test_complete(self):
        known = complete_knowledge(self.IDS)
        for v in self.IDS:
            assert known[v] == set(self.IDS) - {v}

    def test_random_tree_every_nonroot_knows_parent(self):
        known = random_tree_knowledge(self.IDS, seed=3)
        assert known[10] == set()
        for v in self.IDS[1:]:
            assert len(known[v]) == 1

    def test_variant_dispatch(self):
        assert knowledge_for_variant(self.IDS, Variant.NCC1)[10] == set(self.IDS) - {10}
        assert knowledge_for_variant(self.IDS, Variant.NCC0)[10] == {20}

    def test_single_node_path(self):
        assert path_knowledge((7,)) == {7: set()}


class TestMetrics:
    def _stats(self, n=64, rounds=36):
        return RoundStats(
            n=n, rounds=rounds, simulated_rounds=rounds, charged_rounds=0,
            messages=10, words=20, send_cap=12, recv_cap=12, max_round_load=3,
        )

    def test_per_log_n(self):
        stats = self._stats(n=64, rounds=36)
        assert stats.per_log_n() == pytest.approx(6.0)

    def test_per_polylog(self):
        stats = self._stats(n=64, rounds=216)
        assert stats.per_polylog(3) == pytest.approx(1.0)

    def test_ratio_to(self):
        stats = self._stats(rounds=100)
        assert stats.ratio_to(50) == pytest.approx(2.0)

    def test_helpers(self):
        assert log2n(2) == 1.0
        assert polylog(16, 2) == pytest.approx(16.0)
        assert log2n(1) == 1.0
