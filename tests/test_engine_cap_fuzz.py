"""Cap-enforcement fuzz: adversarial plans straddling every budget ±1.

The NCC budgets (send cap, receive cap, word budget) must fire the same
exceptions with the same attributes — and leave the same partial state —
in strict and defer modes on every engine.  These tests build adversarial
``RoundPlan``s right at each boundary and one past it, plus a randomized
plan fuzzer that cross-checks whole outcomes (inboxes, metrics, errors)
between engines.  For the multiprocess sharded engine this is also the
violation/fallback torture path: every boundary overshoot exercises the
reference replay plus worker resync, at two shard counts.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ncc.config import EnforcementMode, NCCConfig, Variant
from repro.ncc.errors import (
    MessageTooLarge,
    ProtocolError,
    RecvCapExceeded,
    SendCapExceeded,
    UnknownRecipientError,
)
from repro.ncc.message import msg
from repro.ncc.network import Network, RoundPlan
from repro.ncc.wire import ColumnarRoundBatch

ENGINE_CONFIGS = {
    "fast": {"engine": "fast"},
    "reference": {"engine": "reference"},
    "sharded2": {"engine": "sharded", "engine_shards": 2},
    "sharded3": {"engine": "sharded", "engine_shards": 3},
}
ENGINES = tuple(ENGINE_CONFIGS)
MODES = (EnforcementMode.STRICT, EnforcementMode.DEFER)


def assert_all_match_reference(outcomes) -> None:
    for label, outcome in outcomes.items():
        assert outcome == outcomes["reference"], f"engine {label} diverged"


def ncc1_pair(n: int, seed: int = 0, **overrides):
    """Identically-seeded NCC1 networks (full knowledge), one per engine."""
    return {
        label: Network(
            n,
            NCCConfig(
                seed=seed,
                variant=Variant.NCC1,
                random_ids=False,
                **config,
                **overrides,
            ),
        )
        for label, config in ENGINE_CONFIGS.items()
    }


def run_plan(net: Network, sends, columnar: bool = False):
    """Deliver one plan; return ("ok", inboxes) or ("err", type, attrs).

    ``columnar=True`` stages the plan as a field-mode
    :class:`ColumnarRoundBatch` (the engines' native representation,
    PR 10) instead of an object send list — violations and spills must
    be bit-identical either way.
    """
    if columnar:
        plan = RoundPlan.from_batch(
            ColumnarRoundBatch.from_sends(sends, keep_messages=False)
        )
    else:
        plan = net.plan()
        for src, dst, message in sends:
            plan.send(src, dst, message)
    try:
        inboxes = net.deliver(plan)
    except SendCapExceeded as exc:
        return ("err", "send", exc.src, exc.cap, exc.attempted)
    except RecvCapExceeded as exc:
        return ("err", "recv", exc.dst, exc.cap, exc.attempted)
    except MessageTooLarge as exc:
        return ("err", "size", exc.words, exc.max_words)
    except UnknownRecipientError as exc:
        return ("err", "unknown", exc.src, exc.dst)
    except ProtocolError as exc:
        return ("err", "protocol", str(exc))
    return ("ok", inboxes)


def snapshot(net: Network):
    """Observable state: metrics plus knowledge (for partial-state checks)."""
    return (
        net.rounds,
        net.messages_delivered,
        net.words_delivered,
        net.pending_deferred(),
        {v: frozenset(s) for v, s in net.known.items()},
    )


class TestSendCapBoundary:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("overshoot", [0, 1])
    def test_send_cap_plus_minus_one(self, mode, overshoot):
        outcomes = {}
        for engine, net in ncc1_pair(32, seed=3, enforcement=mode).items():
            ids = list(net.node_ids)
            sender = ids[0]
            targets = ids[1 : 1 + net.send_cap + overshoot]
            sends = [(sender, dst, msg("x")) for dst in targets]
            outcomes[engine] = (run_plan(net, sends), snapshot(net))
            net.close()
        result = outcomes["fast"][0]
        if overshoot:
            assert result[:2] == ("err", "send")
            assert result[3] == net.send_cap
            assert result[4] == net.send_cap + 1
        else:
            assert result[0] == "ok"
        assert_all_match_reference(outcomes)


class TestRecvCapBoundary:
    @pytest.mark.parametrize("overshoot", [0, 1])
    def test_strict_recv_cap(self, overshoot):
        outcomes = {}
        for engine, net in ncc1_pair(40, seed=4).items():
            ids = list(net.node_ids)
            dst = ids[0]
            senders = ids[1 : 1 + net.recv_cap + overshoot]
            sends = [(s, dst, msg("y")) for s in senders]
            outcomes[engine] = (run_plan(net, sends), snapshot(net))
            net.close()
        result = outcomes["fast"][0]
        if overshoot:
            assert result[:2] == ("err", "recv")
            assert result[2] == dst
            assert result[4] == net.recv_cap + 1
        else:
            assert result[0] == "ok"
        assert_all_match_reference(outcomes)

    @pytest.mark.parametrize("overshoot", [0, 1, 3])
    def test_defer_mode_spills_identically(self, overshoot):
        outcomes = {}
        for engine, net in ncc1_pair(
            40, seed=5, enforcement=EnforcementMode.DEFER
        ).items():
            ids = list(net.node_ids)
            dst = ids[0]
            senders = ids[1 : 1 + net.recv_cap + overshoot]
            sends = [(s, dst, msg("z", data=(1,))) for s in senders]
            status, inboxes = run_plan(net, sends)[:2]
            assert status == "ok"
            assert len(inboxes[dst]) == min(len(senders), net.recv_cap)
            assert net.pending_deferred() == overshoot
            drained = net.drain()
            outcomes[engine] = (drained, snapshot(net))
            net.close()
        assert_all_match_reference(outcomes)
        assert outcomes["fast"][1][3] == 0  # backlog fully drained

    def test_defer_backlog_interleaves_with_new_sends(self):
        """Backlog consumes budget before this round's arrivals (FIFO)."""
        outcomes = {}
        for engine, net in ncc1_pair(
            40, seed=6, enforcement=EnforcementMode.DEFER
        ).items():
            ids = list(net.node_ids)
            dst = ids[0]
            overshoot = 3
            senders = ids[1 : 1 + net.recv_cap + overshoot]
            run_plan(net, [(s, dst, msg("first")) for s in senders])
            status, inboxes = run_plan(
                net, [(ids[-1], dst, msg("second"))]
            )[:2]
            assert status == "ok"
            kinds = [m.kind for m in inboxes[dst]]
            assert kinds[:overshoot] == ["first"] * overshoot
            assert kinds[overshoot] == "second"
            outcomes[engine] = snapshot(net)
            net.close()
        assert_all_match_reference(outcomes)


class TestWordBudgetBoundary:
    @pytest.mark.parametrize("mode", MODES)
    def test_ids_at_and_over_budget(self, mode):
        outcomes = {}
        for engine, net in ncc1_pair(16, seed=7, enforcement=mode).items():
            ids = list(net.node_ids)
            max_words = net.config.max_words
            fits = msg("fits", ids=tuple(range(1000, 1000 + max_words)))
            outcomes[engine] = (
                run_plan(net, [(ids[0], ids[1], fits)]),
                run_plan(
                    net,
                    [
                        (
                            ids[0],
                            ids[1],
                            msg("fat", ids=tuple(range(2000, 2001 + max_words))),
                        )
                    ],
                ),
                snapshot(net),
            )
            assert outcomes[engine][0][0] == "ok"
            assert outcomes[engine][1][:2] == ("err", "size")
            assert outcomes[engine][1][2] == max_words + 1
            net.close()
        assert_all_match_reference(outcomes)

    @pytest.mark.parametrize("mode", MODES)
    def test_multiword_integers_straddle_budget(self, mode):
        """An integer of word_bits+1 bits costs two words, not one."""
        outcomes = {}
        for engine, net in ncc1_pair(16, seed=8, enforcement=mode).items():
            ids = list(net.node_ids)
            wb = net.word_bits
            max_words = net.config.max_words
            # max_words-1 one-word values + one value crossing the word
            # boundary: exactly over budget by one word.
            small = tuple([1] * (max_words - 1))
            over = small + (1 << wb,)  # word_bits+1 bits -> 2 words
            exact = small + ((1 << wb) - 1,)  # word_bits bits -> 1 word
            outcomes[engine] = (
                run_plan(net, [(ids[0], ids[1], msg("exact", data=exact))]),
                run_plan(net, [(ids[0], ids[1], msg("over", data=over))]),
            )
            assert outcomes[engine][0][0] == "ok"
            assert outcomes[engine][1][:2] == ("err", "size")
            assert outcomes[engine][1][2] == max_words + 1
            net.close()
        assert_all_match_reference(outcomes)


class TestGatingErrors:
    def test_unknown_recipient_identical(self):
        outcomes = {}
        for engine in ENGINES:
            net = Network(6, NCCConfig(seed=9, **ENGINE_CONFIGS[engine]))
            ids = list(net.node_ids)
            # NCC0 path knowledge: the tail knows nobody behind it.
            outcomes[engine] = (
                run_plan(net, [(ids[3], ids[0], msg("x"))]),
                snapshot(net),
            )
            assert outcomes[engine][0][:2] == ("err", "unknown")
            net.close()
        assert_all_match_reference(outcomes)

    def test_nonscalar_payload_type_error_identical(self):
        """A non-scalar payload raises the same TypeError on every
        engine (the sharded engine must fall back, not crash a worker)."""
        outcomes = {}
        for engine, net in ncc1_pair(8, seed=11).items():
            ids = list(net.node_ids)
            try:
                net.step([(ids[0], ids[1], msg("bad", data=((1, 2),)))])
                outcomes[engine] = ("ok",)
            except TypeError as exc:
                outcomes[engine] = ("type_error", str(exc), snapshot(net))
            net.close()
        assert outcomes["fast"][0] == "type_error"
        assert_all_match_reference(outcomes)

    def test_self_send_identical(self):
        outcomes = {}
        for engine, net in ncc1_pair(6, seed=10).items():
            v = net.node_ids[0]
            outcomes[engine] = (run_plan(net, [(v, v, msg("me"))]), snapshot(net))
            assert outcomes[engine][0][:2] == ("err", "protocol")
            net.close()
        assert_all_match_reference(outcomes)


class TestColumnarStagedViolations:
    """Columnar-staged plans (the engines' native representation) hit
    every budget with the same errors — and the same deferred spills —
    as object-staged plans, on every engine."""

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("family", ["send", "recv", "size"])
    def test_boundary_overshoot_columnar(self, mode, family):
        outcomes = {}
        for engine, net in ncc1_pair(24, seed=9, enforcement=mode).items():
            ids = list(net.node_ids)
            if family == "send":
                sends = [
                    (ids[0], dst, msg("x"))
                    for dst in ids[1 : 2 + net.send_cap]
                ]
            elif family == "recv":
                sends = [
                    (s, ids[0], msg("y"))
                    for s in ids[1 : 2 + net.recv_cap]
                ]
            else:
                fat = msg(
                    "fat", ids=tuple(range(2000, 2001 + net.config.max_words))
                )
                sends = [(ids[0], ids[1], fat)]
            outcomes[engine] = (
                run_plan(net, sends, columnar=True),
                snapshot(net),
            )
            net.close()
        deferred_recv = (
            family == "recv" and mode is not EnforcementMode.STRICT
        )
        assert outcomes["fast"][0][0] == ("ok" if deferred_recv else "err")
        assert_all_match_reference(outcomes)


class TestPlanFuzz:
    """Random plan streams: whole-outcome equivalence between engines."""

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        mode=st.sampled_from(MODES),
        rounds=st.integers(1, 6),
    )
    def test_random_plans_equivalent(self, seed, mode, rounds):
        rng = random.Random(seed)
        nets = ncc1_pair(24, seed=seed % 97, enforcement=mode)
        script = []  # same random script for both engines
        ids = list(nets["fast"].node_ids)
        for _ in range(rounds):
            plan = []
            for _ in range(rng.randrange(0, 40)):
                src = rng.choice(ids)
                dst = rng.choice(ids)  # may equal src: self-send error path
                payload_ids = tuple(
                    rng.choice(ids) for _ in range(rng.randrange(0, 3))
                )
                data = tuple(
                    rng.randrange(0, 1 << 40) for _ in range(rng.randrange(0, 3))
                )
                plan.append((src, dst, msg("f", ids=payload_ids, data=data)))
            script.append(plan)

        outcomes = {}
        for engine, net in nets.items():
            log = []
            for plan in script:
                result = run_plan(net, plan)
                if result[0] == "ok":
                    log.append(("ok", result[1]))
                else:
                    log.append(result)
                    break  # network state after an error is final
            outcomes[engine] = (log, snapshot(net), net.stats())
            net.close()
        assert_all_match_reference(outcomes)


    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        mode=st.sampled_from(MODES),
        rounds=st.integers(1, 5),
    )
    def test_random_plans_equivalent_columnar_staged(self, seed, mode, rounds):
        """The same random scripts, staged as columnar batches."""
        rng = random.Random(seed)
        nets = ncc1_pair(24, seed=seed % 89, enforcement=mode)
        script = []
        ids = list(nets["fast"].node_ids)
        for _ in range(rounds):
            plan = []
            for _ in range(rng.randrange(0, 30)):
                src = rng.choice(ids)
                dst = rng.choice(ids)
                payload_ids = tuple(
                    rng.choice(ids) for _ in range(rng.randrange(0, 3))
                )
                data = tuple(
                    rng.randrange(0, 1 << 80)
                    for _ in range(rng.randrange(0, 3))
                )
                plan.append((src, dst, msg("f", ids=payload_ids, data=data)))
            script.append(plan)

        outcomes = {}
        for engine, net in nets.items():
            log = []
            for plan in script:
                result = run_plan(net, plan, columnar=True)
                if result[0] == "ok":
                    log.append(("ok", result[1]))
                else:
                    log.append(result)
                    break
            outcomes[engine] = (log, snapshot(net), net.stats())
            net.close()
        assert_all_match_reference(outcomes)
