"""Property suite for the columnar round kernel (:mod:`repro.ncc.wire`).

The fast engine's cap checks and word accounting run as counting passes
over :class:`ColumnarRoundBatch` columns instead of per-``Message``
loops.  These tests pin the passes to the executable specification:
for random batches — multi-word integers, empty batches, empty payloads,
defer spills — the column computations must equal the per-message
reference computation (``Message.words``, per-sender/per-receiver
tallies), the wire round trip must preserve every field plus the
``msg()`` kind-identity invariant, and :class:`ColumnarInbox` must stay
lazy (no ``Message`` construction) until a consumer actually touches
messages.  A final end-to-end check asserts the sharded engine ships
columns with *zero* sender-side object construction, via the
materialisation counters.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ncc.config import EnforcementMode, NCCConfig, Variant
from repro.ncc.errors import NCCError
from repro.ncc.message import Message, msg, word_cache_evictions
from repro.ncc.network import Network, RoundPlan
from repro.ncc.wire import (
    ColumnarInbox,
    ColumnarRoundBatch,
    materialization_counts,
    materialized_total,
)

# --------------------------------------------------------------------- #
# Strategies                                                            #
# --------------------------------------------------------------------- #

#: Scalars spanning every word-accounting branch: booleans and None
#: (1 word), small and multi-word integers, floats, short strings.
scalars = st.one_of(
    st.booleans(),
    st.none(),
    st.integers(min_value=-(1 << 9), max_value=1 << 9),
    st.integers(min_value=1 << 40, max_value=1 << 200),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(min_size=0, max_size=12),
)

kinds = st.sampled_from(["ping", "agg", "ns:invite", "ns:route"])


@st.composite
def send_lists(draw, max_node=15, max_size=40):
    """Random ``(src, dst, Message)`` lists over a small (1-based) ID
    universe — matching ``random_ids=False`` networks' ID space."""
    entries = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=max_node),
                st.integers(min_value=1, max_value=max_node),
                kinds,
                st.lists(
                    st.integers(min_value=1, max_value=max_node),
                    max_size=3,
                ),
                st.lists(scalars, max_size=4),
            ),
            max_size=max_size,
        )
    )
    return [
        (src, dst, msg(kind, ids=tuple(ids), data=tuple(data)))
        for src, dst, kind, ids, data in entries
    ]


# --------------------------------------------------------------------- #
# Word accounting: one column pass == per-message reference             #
# --------------------------------------------------------------------- #


class TestWordAccounting:
    @settings(max_examples=60, deadline=None)
    @given(sends=send_lists(), word_bits=st.sampled_from([8, 16, 48]))
    def test_ensure_words_matches_message_words(self, sends, word_bits):
        batch = ColumnarRoundBatch.from_sends(sends, keep_messages=False)
        words, ok = batch.ensure_words(word_bits)
        assert ok
        expected = [m.words(word_bits) for _, _, m in sends]
        assert words == expected
        # Cached on the batch: the second call is the same list.
        again, ok2 = batch.ensure_words(word_bits)
        assert again is words and ok2

    @settings(max_examples=40, deadline=None)
    @given(sends=send_lists())
    def test_counting_passes_match_per_message_tallies(self, sends):
        """max / sum over the word column and Counter over the src and
        dst columns — the cap-check passes — equal the reference
        per-message computation."""
        batch = ColumnarRoundBatch.from_sends(sends, keep_messages=False)
        words, _ = batch.ensure_words(16)
        per_msg = [m.words(16) for _, _, m in sends]
        assert (max(words) if words else 0) == (max(per_msg) if per_msg else 0)
        assert sum(words) == sum(per_msg)
        assert Counter(batch.srcs) == Counter(s for s, _, _ in sends)
        assert Counter(batch.dsts) == Counter(d for _, d, _ in sends)

    def test_empty_batch(self):
        batch = ColumnarRoundBatch.from_sends([], keep_messages=False)
        words, ok = batch.ensure_words(16)
        assert words == [] and ok
        assert len(batch) == 0 and batch.to_sends() == []
        rebuilt = ColumnarRoundBatch.from_wire(batch.to_wire())
        assert len(rebuilt) == 0

    def test_non_scalar_payload_flags_not_ok(self):
        bad = Message(kind="x", ids=(), data=((1, 2),))
        batch = ColumnarRoundBatch.from_sends(
            [(0, 1, msg("a", data=(3,))), (1, 0, bad)], keep_messages=False
        )
        words, ok = batch.ensure_words(16)
        assert not ok and batch.words_ok is False
        assert words[0] == 1  # good entries still accounted


# --------------------------------------------------------------------- #
# Wire round trip and materialisation                                   #
# --------------------------------------------------------------------- #


class TestWireRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(sends=send_lists())
    def test_round_trip_preserves_fields_and_kind_identity(self, sends):
        batch = ColumnarRoundBatch.from_sends(sends, keep_messages=False)
        batch.ensure_words(16)
        rebuilt = ColumnarRoundBatch.from_wire(batch.to_wire())
        assert rebuilt.words == batch.words
        out = rebuilt.to_sends()
        assert [(s, d) for s, d, _ in out] == [(s, d) for s, d, _ in sends]
        for (_, _, got), (src, _, want) in zip(out, sends):
            assert got.kind is want.kind  # sys.intern round trip
            assert got.ids == want.ids and got.data == want.data
            assert got.src == src  # stamped at materialisation

    @settings(max_examples=25, deadline=None)
    @given(sends=send_lists(max_size=12))
    def test_materialize_is_at_most_once_and_metered(self, sends):
        batch = ColumnarRoundBatch.from_sends(sends, keep_messages=False)
        before = materialized_total()
        built = [batch.materialize(i) for i in range(len(batch))]
        assert materialized_total() - before == len(sends)
        for i, message in enumerate(built):
            assert batch.materialize(i) is message  # cached, not re-counted
        assert materialized_total() - before == len(sends)

    def test_object_mode_materialize_returns_originals_unmetered(self):
        original = msg("k", ids=(3,), data=(7,))
        batch = ColumnarRoundBatch.from_sends([(5, 6, original)])
        before = materialized_total()
        handed = batch.materialize(0)
        assert handed is original and handed.src == 5
        assert materialized_total() == before

    @settings(max_examples=25, deadline=None)
    @given(sends=send_lists(max_size=20), data=st.data())
    def test_gather_and_builder_append_agree_with_python_indexing(
        self, sends, data
    ):
        batch = ColumnarRoundBatch.from_sends(sends, keep_messages=False)
        batch.ensure_words(16)
        indices = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=max(len(sends) - 1, 0)),
                max_size=10,
            )
            if sends
            else st.just([])
        )
        sub = batch.gather(indices)
        rebuilt = ColumnarRoundBatch.builder()
        for j in indices:
            rebuilt.append_from(batch, j)
        for out in (sub, rebuilt):
            for slot, j in enumerate(indices):
                want = batch.materialize(j)
                got = out.materialize(slot)
                assert (got.kind, got.ids, got.data, got.src) == (
                    want.kind,
                    want.ids,
                    want.data,
                    want.src,
                )
                assert out.words[slot] == batch.words[j]


# --------------------------------------------------------------------- #
# ColumnarInbox laziness                                                #
# --------------------------------------------------------------------- #


class TestColumnarInbox:
    def _batch(self):
        sends = [
            (0, 9, msg("a", ids=(1,), data=(2,))),
            (1, 9, msg("b", data=(1 << 80,))),
            (2, 9, msg("a", data=())),
        ]
        return sends, ColumnarRoundBatch.from_sends(sends, keep_messages=False)

    def test_len_and_bool_do_not_materialize(self):
        _, batch = self._batch()
        before = materialized_total()
        box = ColumnarInbox(batch, range(3))
        assert len(box) == 3 and bool(box)
        assert not ColumnarInbox(batch, [])
        assert materialized_total() == before

    def test_iteration_forces_and_equals_message_list(self):
        sends, batch = self._batch()
        box = ColumnarInbox(batch, range(3))
        want = [m.with_src(s) for s, _, m in sends]
        assert list(box) == want
        assert box == want and box == ColumnarInbox(batch, range(3))
        assert box[1] == want[1]
        assert box != want[:2]

    def test_concatenation_with_lists(self):
        sends, batch = self._batch()
        box = ColumnarInbox(batch, [0, 2])
        want = [sends[0][2].with_src(0), sends[2][2].with_src(2)]
        extra = [msg("z").with_src(7)]
        assert box + extra == want + extra
        assert extra + box == extra + want
        assert box + ColumnarInbox(batch, [1]) == want + [
            sends[1][2].with_src(1)
        ]

    def test_kind_views_group_without_forcing(self):
        sends, batch = self._batch()
        box = ColumnarInbox(batch, range(3))
        before = materialized_total()
        views = box.kind_views()
        assert set(views) == {"a", "b"}
        assert len(views["a"]) == 2 and len(views["b"]) == 1
        assert materialized_total() == before  # grouping is index-only
        assert list(views["a"]) == [
            sends[0][2].with_src(0),
            sends[2][2].with_src(2),
        ]

    def test_stayed_columnar_accounting(self):
        from repro.ncc.wire import note_delivered_columnar

        _, batch = self._batch()
        base = materialization_counts()
        note_delivered_columnar(3)
        counts = materialization_counts()
        assert (
            counts["messages_stayed_columnar"]
            - base["messages_stayed_columnar"]
            == 3
        )
        list(ColumnarInbox(batch, range(3)))  # forcing reclaims the credit
        counts = materialization_counts()
        assert (
            counts["messages_stayed_columnar"]
            == base["messages_stayed_columnar"]
        )


# --------------------------------------------------------------------- #
# Columnar staging == object staging, end to end                        #
# --------------------------------------------------------------------- #


def _net(engine: str, enforcement, shards=None) -> Network:
    kwargs = {
        "engine": engine,
        "seed": 3,
        "variant": Variant.NCC1,
        "random_ids": False,
        "enforcement": enforcement,
    }
    if shards is not None:
        kwargs["engine_shards"] = shards
    return Network(12, NCCConfig(**kwargs))


def _outcome(net: Network, sends, columnar: bool, rounds: int = 3):
    """Deliver ``sends`` then drain; normalise inboxes for comparison."""
    out = []
    for r in range(rounds):
        if columnar:
            plan = RoundPlan.from_batch(
                ColumnarRoundBatch.from_sends(sends if r == 0 else [],
                                              keep_messages=False)
            )
        else:
            plan = net.plan()
            if r == 0:
                for src, dst, message in sends:
                    plan.send(src, dst, message)
        try:
            inboxes = net.deliver(plan)
        except NCCError as exc:
            out.append(("err", type(exc).__name__, str(exc)))
            break
        out.append(sorted((d, list(b)) for d, b in inboxes.items()))
    return out, net.stats()


class TestColumnarStagingEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(sends=send_lists(max_node=12, max_size=25))
    def test_fast_engine_strict_and_defer(self, sends):
        for mode in (EnforcementMode.STRICT, EnforcementMode.DEFER):
            obj = _outcome(_net("fast", mode), sends, columnar=False)
            col = _outcome(_net("fast", mode), sends, columnar=True)
            ref = _outcome(_net("reference", mode), sends, columnar=False)
            assert col == obj == ref

    @pytest.mark.parametrize("shards", [2, 3])
    def test_sharded_ships_columns_without_sender_side_objects(self, shards):
        sends = [
            (src, dst, msg("ping", ids=(src,), data=(src * dst, 1 << 70)))
            for src in range(1, 13)
            for dst in (1, src % 12 + 1, (src + 4) % 12 + 1)
            if dst != src
        ]
        net = _net("sharded", EnforcementMode.DEFER, shards=shards)
        try:
            col = _outcome(net, sends, columnar=True)
            stats = net.engine_stats()
            assert stats["worker_messages_materialized"] == 0
        finally:
            net.engine.close()
        ref = _outcome(
            _net("reference", EnforcementMode.DEFER), sends, columnar=False
        )
        assert col == ref


# --------------------------------------------------------------------- #
# Word-cache eviction counter                                           #
# --------------------------------------------------------------------- #


class TestWordCacheEvictionCounter:
    def test_eviction_counter_reaches_engine_stats(self, monkeypatch):
        import repro.ncc.message as message_module
        from repro.ncc.engine import engine_counts

        int_cache, _ = message_module.word_caches(24)
        int_cache.clear()
        int_cache.update({i: 1 for i in range(12)})
        monkeypatch.setattr(message_module, "_WORD_CACHE_LIMIT", 8)
        before = word_cache_evictions(24)
        message_module.word_caches(24)
        evicted = word_cache_evictions(24) - before
        assert evicted == 8  # 12 entries trimmed to half the bound of 8
        assert engine_counts(24)["word_cache_evictions"] >= evicted
