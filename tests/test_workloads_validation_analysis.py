"""Tests for workload generators, validation checks and analysis utilities."""

import math

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    bound_ratios,
    fit_polylog_ratio,
    fit_power_law,
    format_table,
    series_summary,
)
from repro.analysis.scaling import is_flat_or_decreasing
from repro.core.lower_bounds import (
    degree_lower_bounds,
    polylog_envelope,
    tightness_ratio,
)
from repro.sequential import is_graphic, is_tree_realizable
from repro.validation.graph_checks import (
    check_connectivity_thresholds,
    check_degree_match,
    check_simple,
    check_tree,
    diameter_of,
    edge_connectivity_matrix,
)
from repro.workloads import (
    balanced_tree_sequence,
    bimodal_rho,
    caterpillar_sequence,
    concentrated_sequence,
    near_graphic_perturbation,
    path_sequence,
    power_law_rho,
    power_law_sequence,
    random_graphic_sequence,
    random_tree_sequence,
    ranked_rho,
    regular_sequence,
    sqrt_m_family,
    star_like_sequence,
    star_sequence,
    uniform_rho,
)
from repro.workloads.degree_sequences import repair_to_graphic


class TestDegreeWorkloads:
    def test_regular(self):
        assert regular_sequence(10, 3) == [3] * 10
        with pytest.raises(ValueError):
            regular_sequence(5, 5)
        with pytest.raises(ValueError):
            regular_sequence(5, 3)  # odd product

    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphic_always_graphic(self, seed):
        seq = random_graphic_sequence(15, 0.4, seed=seed)
        assert is_graphic(seq)

    @pytest.mark.parametrize("seed", range(5))
    def test_power_law_graphic(self, seed):
        seq = power_law_sequence(20, seed=seed)
        assert is_graphic(seq)
        assert len(seq) == 20

    def test_concentrated_mass_on_prefix(self):
        seq = concentrated_sequence(20, 6, seed=1)
        assert is_graphic(seq)
        assert sum(seq[6:]) == 0 or max(seq[6:]) <= max(seq[:6])

    def test_sqrt_m_family_shape(self):
        seq = sqrt_m_family(40, 100)
        assert is_graphic(seq)
        k = sum(1 for d in seq if d > 0)
        assert k <= math.isqrt(100) + 1

    def test_star_like(self):
        seq = star_like_sequence(12, hubs=2)
        assert is_graphic(seq)
        with pytest.raises(ValueError):
            star_like_sequence(5, hubs=5)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=20))
    def test_repair_always_graphic(self, seq):
        assert is_graphic(repair_to_graphic(seq))

    def test_perturbation_bounded(self):
        base = regular_sequence(10, 3)
        seq = near_graphic_perturbation(base, bumps=4, seed=0)
        assert all(b <= s <= 9 for b, s in zip(base, seq))


class TestTreeWorkloads:
    @pytest.mark.parametrize(
        "maker", [star_sequence, path_sequence, balanced_tree_sequence,
                  caterpillar_sequence]
    )
    @pytest.mark.parametrize("n", [2, 5, 12, 25])
    def test_realizable(self, maker, n):
        assert is_tree_realizable(maker(n))

    @pytest.mark.parametrize("seed", range(5))
    def test_random_tree_sequences(self, seed):
        assert is_tree_realizable(random_tree_sequence(15, seed=seed))


class TestRhoWorkloads:
    def test_uniform(self):
        assert uniform_rho(5, 2) == [2] * 5
        with pytest.raises(ValueError):
            uniform_rho(4, 4)

    def test_bimodal(self):
        values = bimodal_rho(20, 5, 1, high_fraction=0.25)
        assert values.count(5) == 5
        assert values.count(1) == 15

    def test_power_law_in_range(self):
        values = power_law_rho(30, 8, seed=1)
        assert all(1 <= v <= 8 for v in values)

    def test_ranked(self):
        values = ranked_rho(10, 5)
        assert all(1 <= v <= 5 for v in values)
        assert values[0] >= values[-1]


class TestValidationChecks:
    def test_check_simple_detects_violations(self):
        assert check_simple([(0, 1), (1, 2)])
        assert not check_simple([(0, 0)])
        assert not check_simple([(0, 1), (1, 0)])

    def test_degree_match_negative(self):
        assert check_degree_match([(0, 1)], {0: 1, 1: 1}, [0, 1])
        assert not check_degree_match([(0, 1)], {0: 2, 1: 1}, [0, 1])

    def test_check_tree_negative(self):
        assert check_tree([(0, 1), (1, 2)], [0, 1, 2])
        assert not check_tree([(0, 1)], [0, 1, 2])           # disconnected
        assert not check_tree([(0, 1), (1, 2), (2, 0)], [0, 1, 2])  # cycle

    def test_diameter(self):
        assert diameter_of([(0, 1), (1, 2)], [0, 1, 2]) == 2
        assert diameter_of([(0, 1)], [0, 1, 2]) is None
        assert diameter_of([], [0]) == 0

    def test_connectivity_check_negative(self):
        path_edges = [(0, 1), (1, 2), (2, 3)]
        rho = {0: 2, 1: 2, 2: 2, 3: 2}
        assert not check_connectivity_thresholds(path_edges, rho, [0, 1, 2, 3])
        cycle = path_edges + [(3, 0)]
        assert check_connectivity_thresholds(cycle, rho, [0, 1, 2, 3])

    def test_edge_connectivity_matrix(self):
        matrix = edge_connectivity_matrix([(0, 1), (1, 2), (2, 0)], [0, 1, 2])
        assert matrix[(0, 1)] == 2


class TestAnalysis:
    def test_power_law_fit_recovers_exponent(self):
        xs = [10, 20, 40, 80, 160]
        ys = [3 * x**1.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.alpha == pytest.approx(1.5, abs=0.01)
        assert fit.constant == pytest.approx(3.0, rel=0.05)
        assert fit.r_squared > 0.999
        assert fit.predict(100) == pytest.approx(3 * 100**1.5, rel=0.05)

    def test_fit_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])

    def test_polylog_ratio_flat_for_polylog_series(self):
        ns = [16, 64, 256, 1024]
        rounds = [int(5 * math.log2(n) ** 2) for n in ns]
        ratios = fit_polylog_ratio(ns, rounds, power=2)
        assert is_flat_or_decreasing(ratios)

    def test_polylog_ratio_grows_for_linear_series(self):
        ns = [16, 64, 256, 1024]
        rounds = [n for n in ns]
        ratios = fit_polylog_ratio(ns, rounds, power=1)
        assert not is_flat_or_decreasing(ratios)

    def test_bound_ratios(self):
        out = bound_ratios([4, 9], [8, 18], lambda x: 2 * x)
        assert out == [1.0, 1.0]

    def test_format_table(self):
        text = format_table(["n", "rounds"], [[16, 100], [64, 250]])
        lines = text.splitlines()
        assert "n" in lines[0] and "rounds" in lines[0]
        assert len(lines) == 4

    def test_series_summary(self):
        out = series_summary("x", [1, 2, 3], [1.0, 2.0, 3.0])
        assert out.startswith("x:")
        assert series_summary("empty", [], []) == "empty: (empty)"


class TestLowerBounds:
    def test_values(self):
        bounds = degree_lower_bounds([4, 4, 4, 4], recv_cap=8)
        assert bounds.max_degree == 4
        assert bounds.m == 8
        assert bounds.explicit_rounds == pytest.approx(0.5)
        assert bounds.implicit_regular_rounds == 4.0
        assert bounds.implicit_sqrt_m_rounds == pytest.approx(math.sqrt(8) / 8)

    def test_tightness_ratio(self):
        assert tightness_ratio(100, 10.0) == pytest.approx(10.0)
        assert tightness_ratio(5, 0.0) == 5.0  # clamped denominator

    def test_polylog_envelope_monotone(self):
        assert polylog_envelope(1024) > polylog_envelope(16)
