"""Unit tests for the NCC network: enforcement, metering, modes."""

import pytest

from repro.ncc.config import EnforcementMode, NCCConfig, Variant
from repro.ncc.errors import (
    MessageTooLarge,
    ProtocolError,
    RecvCapExceeded,
    SendCapExceeded,
    UnknownRecipientError,
)
from repro.ncc.message import Message, msg
from repro.ncc.network import Network

from tests.conftest import make_net, make_ncc1


class TestKnowledgeGating:
    def test_initial_path_knowledge(self):
        net = make_net(5)
        ids = list(net.node_ids)
        for left, right in zip(ids, ids[1:]):
            assert net.knows(left, right)
            assert not net.knows(right, left)

    def test_ncc1_full_knowledge(self):
        net = make_ncc1(5)
        for u in net.node_ids:
            for v in net.node_ids:
                if u != v:
                    assert net.knows(u, v)

    def test_send_to_unknown_raises(self):
        net = make_net(4)
        ids = list(net.node_ids)
        plan = net.plan()
        plan.send(ids[3], ids[0], msg("x"))  # tail knows nobody behind it
        with pytest.raises(UnknownRecipientError):
            net.deliver(plan)

    def test_receiving_teaches_sender_id(self):
        net = make_net(3)
        ids = list(net.node_ids)
        net.step([(ids[0], ids[1], msg("hello"))])
        assert net.knows(ids[1], ids[0])

    def test_payload_ids_become_known(self):
        net = make_net(4)
        ids = list(net.node_ids)
        # ids[0] tells ids[1] about ids[2]'s address.
        net.step([(ids[0], ids[1], msg("intro", ids=(ids[2],)))])
        assert net.knows(ids[1], ids[2])
        # And now ids[1] can talk to ids[2] directly.
        net.step([(ids[1], ids[2], msg("direct"))])
        assert net.knows(ids[2], ids[1])

    def test_self_send_rejected(self):
        net = make_net(3)
        v = net.node_ids[0]
        plan = net.plan()
        plan.send(v, v, msg("loop"))
        with pytest.raises(ProtocolError):
            net.deliver(plan)

    def test_knowledge_is_monotone(self):
        net = make_net(4)
        ids = list(net.node_ids)
        before = {v: set(net.known[v]) for v in ids}
        net.step([(ids[0], ids[1], msg("a"))])
        net.step([(ids[1], ids[2], msg("b"))])
        for v in ids:
            assert before[v] <= net.known[v]


class TestCaps:
    def test_send_cap_enforced(self):
        net = make_net(64)
        ids = list(net.node_ids)
        hub = ids[0]
        # Teach the hub lots of addresses first.
        for i in range(1, 40):
            net.grant_knowledge(hub, ids[i])
        plan = net.plan()
        for i in range(1, net.send_cap + 2):
            plan.send(hub, ids[i], msg("burst"))
        with pytest.raises(SendCapExceeded):
            net.deliver(plan)

    def test_recv_cap_strict(self):
        net = make_net(64)
        ids = list(net.node_ids)
        target = ids[-1]
        senders = ids[: net.recv_cap + 1]
        for s in senders:
            net.grant_knowledge(s, target)
        plan = net.plan()
        for s in senders:
            plan.send(s, target, msg("flood"))
        with pytest.raises(RecvCapExceeded):
            net.deliver(plan)

    def test_recv_cap_defer_queues_and_drains(self):
        net = make_net(64, enforcement=EnforcementMode.DEFER)
        ids = list(net.node_ids)
        target = ids[-1]
        senders = ids[: net.recv_cap + 3]
        for s in senders:
            net.grant_knowledge(s, target)
        plan = net.plan()
        for s in senders:
            plan.send(s, target, msg("flood"))
        inboxes = net.deliver(plan)
        assert len(inboxes[target]) == net.recv_cap
        assert net.pending_deferred() == 3
        spent = net.drain()
        assert spent >= 1
        assert net.pending_deferred() == 0

    def test_unbounded_mode_delivers_everything(self):
        net = make_net(64, enforcement=EnforcementMode.UNBOUNDED)
        ids = list(net.node_ids)
        target = ids[-1]
        senders = ids[: net.recv_cap + 5]
        for s in senders:
            net.grant_knowledge(s, target)
        plan = net.plan()
        for s in senders:
            plan.send(s, target, msg("flood"))
        inboxes = net.deliver(plan)
        assert len(inboxes[target]) == len(senders)

    def test_caps_scale_with_log_n(self):
        small = make_net(8)
        large = make_net(4096)
        assert large.send_cap >= small.send_cap
        assert large.send_cap <= 4 * max(8, 12 * 2)  # sanity ceiling


class TestMessageSize:
    def test_oversized_message_rejected(self):
        net = make_net(4)
        ids = list(net.node_ids)
        too_many = tuple(ids[1] for _ in range(net.config.max_words + 1))
        plan = net.plan()
        plan.send(ids[0], ids[1], Message("big", ids=too_many))
        with pytest.raises(MessageTooLarge):
            net.deliver(plan)

    def test_huge_int_consumes_multiple_words(self):
        net = make_net(4)
        giant = 1 << (net.word_bits * (net.config.max_words + 1))
        message = msg("n", data=(giant,))
        assert message.words(net.word_bits) > net.config.max_words

    def test_word_accounting_for_scalars(self):
        message = msg("k", ids=(5, 7), data=(3, True, 2.5))
        assert message.words(64) == 5


class TestMetering:
    def test_rounds_count_deliveries(self):
        net = make_net(4)
        ids = list(net.node_ids)
        assert net.rounds == 0
        net.step([(ids[0], ids[1], msg("a"))])
        net.idle_round()
        assert net.rounds == 2
        assert net.simulated_rounds == 2

    def test_charged_rounds_separate(self):
        net = make_net(4)
        net.charge(100, reason="test")
        assert net.rounds == 100
        assert net.charged_rounds == 100
        assert net.simulated_rounds == 0

    def test_negative_charge_rejected(self):
        net = make_net(4)
        with pytest.raises(ValueError):
            net.charge(-1)

    def test_phase_breakdown(self):
        net = make_net(4)
        ids = list(net.node_ids)
        with net.phase("warmup"):
            net.step([(ids[0], ids[1], msg("a"))])
        with net.phase("main"):
            net.idle_round()
            net.idle_round()
        stats = net.stats()
        per_phase = stats.phase_rounds()
        assert per_phase == {"warmup": 1, "main": 2}

    def test_stats_snapshot_fields(self):
        net = make_net(8)
        ids = list(net.node_ids)
        net.step([(ids[0], ids[1], msg("a", data=(1,)))])
        stats = net.stats()
        assert stats.n == 8
        assert stats.messages == 1
        assert stats.words >= 1
        assert stats.rounds == 1
        assert stats.max_round_load == 1


class TestTracing:
    def test_round_trace_records_deliveries(self):
        from repro.ncc.tracing import RoundTrace

        net = make_net(4)
        ids = list(net.node_ids)
        trace = RoundTrace(net)
        net.step([(ids[0], ids[1], msg("ping", data=(7,)))])
        net.step([(ids[1], ids[2], msg("pong"))])
        assert len(trace.deliveries) == 2
        assert trace.deliveries[0].kind == "ping"
        assert trace.deliveries[0].data == (7,)
        assert trace.kinds() == {"ping": 1, "pong": 1}
        assert trace.rounds_used() == 2
        trace.detach()
        net.step([(ids[2], ids[3], msg("late"))])
        assert len(trace.deliveries) == 2
