"""The process-pool batch drain, LRU caches, coalescing and budgets.

Covers the executor's ``mode="processes"`` drain (per-worker warm
pools, parent-side response cache, crash recovery), the LRU eviction
policy of the response and scenario caches (with the hit/evict counters
surfaced in batch stats), in-flight request coalescing in the threaded
and process drains, and the per-request ``max_rounds`` budget with its
typed ``BUDGET_EXCEEDED`` error envelope.
"""

from __future__ import annotations

import multiprocessing
import threading

import pytest

import repro.service.executor as executor_module
from repro.ncc.errors import RoundBudgetExceeded
from repro.ncc.network import Network
from repro.ncc.config import NCCConfig
from repro.service import (
    BatchExecutor,
    FaultPlan,
    FaultRule,
    NetworkPool,
    RealizationRequest,
    ServiceError,
    default_registry,
)
from repro.service import faults

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
HAS_SPAWN = "spawn" in multiprocessing.get_all_start_methods()


@pytest.fixture
def crash_plan(monkeypatch):
    """Install a FaultPlan crashing the worker running request 'boom'.

    Travels via the environment so pool workers pick it up under both
    fork and spawn start methods."""
    plan = FaultPlan([FaultRule(action="crash", request_ids=("boom",))])
    monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
    faults.clear()  # drop any cached no-plan verdict in this process
    yield plan
    faults.clear()


def req(kind="degree_implicit", scenario="regular", n=32, seed=0, **kw):
    return RealizationRequest(kind=kind, scenario=scenario, n=n, seed=seed, **kw)


def mixed_batch():
    """A small mixed batch with repeats (three distinct computations)."""
    batch = []
    for i in range(3):
        batch.append(req(seed=1, request_id=f"a{i}"))
        batch.append(req(kind="tree", scenario="tree_random", n=24, seed=2,
                         request_id=f"b{i}"))
    batch.append(req(kind="connectivity", scenario="rho_uniform", n=24, seed=3,
                     request_id="c0"))
    return batch


class TestProcessDrain:
    def test_field_identical_to_sequential(self):
        batch = mixed_batch()
        sequential = BatchExecutor(pool=NetworkPool(), registry=default_registry())
        expected = sequential.run(list(batch))
        with BatchExecutor(pool=NetworkPool(), registry=default_registry(),
                           mode="processes", workers=2) as processes:
            got = processes.run(list(batch))
        assert [r.fingerprint() for r in got] == [r.fingerprint() for r in expected]
        assert [r.request_id for r in got] == [r.request_id for r in batch]

    def test_parent_cache_serves_second_batch(self):
        with BatchExecutor(pool=NetworkPool(), registry=default_registry(),
                           mode="processes", workers=2) as executor:
            first = executor.run(mixed_batch())
            second = executor.run(mixed_batch())
            stats = executor.stats()
        assert [r.fingerprint() for r in second] == [r.fingerprint() for r in first]
        assert all(r.cached for r in second)  # all hits on the second pass
        assert stats["response_cache_hits"] >= len(second)

    def test_batch_coalescing_one_execution_per_key(self):
        duplicates = [req(seed=7, request_id=f"d{i}") for i in range(5)]
        with BatchExecutor(pool=NetworkPool(), registry=default_registry(),
                           mode="processes", workers=2) as executor:
            out = executor.run(duplicates)
            stats = executor.stats()
        assert len({r.fingerprint() for r in out}) == 1
        assert stats["coalesced_hits"] == 4
        assert sum(1 for r in out if not r.cached) == 1  # one real execution
        assert [r.request_id for r in out] == [f"d{i}" for i in range(5)]

    def test_cache_disabled_disables_coalescing(self):
        duplicates = [req(seed=7, request_id=f"d{i}") for i in range(3)]
        with BatchExecutor(pool=NetworkPool(), registry=default_registry(),
                           cache_responses=False,
                           mode="processes", workers=2) as executor:
            out = executor.run(duplicates)
            stats = executor.stats()
        assert stats["coalesced_hits"] == 0
        assert all(not r.cached for r in out)  # every occurrence executed

    def test_error_outcomes_are_not_coalesced(self):
        """Duplicates of a failing request each get a real attempt (and
        never a cached=True copy of the failure) — matching the threaded
        single-flight's leader-failure semantics."""
        bad = [RealizationRequest(kind="degree_implicit",
                                  scenario="capacity_classes", n=4, seed=1,
                                  request_id=f"e{i}",
                                  params={"super_fraction": 0.9,
                                          "regular_fraction": 0.9})
               for i in range(3)]
        with BatchExecutor(pool=NetworkPool(), registry=default_registry(),
                           mode="processes", workers=2) as executor:
            out = executor.run(bad + [req(seed=1, request_id="good")])
            stats = executor.stats()
        assert all(r.verdict == "ERROR" for r in out[:3])
        assert all(not r.cached for r in out[:3])
        assert [r.request_id for r in out[:3]] == ["e0", "e1", "e2"]
        assert out[3].verdict == "REALIZED"
        assert stats["coalesced_hits"] == 0  # failures coalesce nothing
        assert stats["requests_handled"] == 4

    def test_invalid_requests_enveloped_in_place(self):
        batch = [req(seed=1, request_id="good"),
                 RealizationRequest(kind="nope", degrees=(2, 2), request_id="bad")]
        with BatchExecutor(pool=NetworkPool(), registry=default_registry(),
                           mode="processes", workers=2) as executor:
            out = executor.run(batch)
        assert out[0].verdict != "ERROR"
        assert out[1].verdict == "ERROR" and out[1].request_id == "bad"

    def test_worker_crash_fails_cleanly_and_drain_recovers(self, crash_plan):
        """A dying worker costs its request a typed error, nothing more."""
        batch = [req(seed=i, request_id=f"ok{i}") for i in range(4)]
        batch.insert(2, req(seed=99, request_id="boom"))
        with BatchExecutor(pool=NetworkPool(), registry=default_registry(),
                           cache_responses=False,
                           mode="processes", workers=2) as executor:
            out = executor.run(batch)
            stats = executor.stats()
            # The drain is not wedged: the same executor keeps serving.
            again = executor.run([req(seed=0, request_id="after")])
        by_id = {r.request_id: r for r in out}
        assert by_id["boom"].verdict == "ERROR"
        assert by_id["boom"].error_code == "WORKER_CRASHED"
        for i in range(4):
            assert by_id[f"ok{i}"].verdict == "REALIZED", by_id[f"ok{i}"]
        assert stats["worker_crashes"] >= 1
        assert stats["retries"] >= 1
        assert again[0].verdict == "REALIZED"

    @pytest.mark.skipif(not HAS_SPAWN, reason="needs the spawn start method")
    def test_worker_crash_recovers_under_spawn(self, crash_plan, monkeypatch):
        """The FaultPlan travels via the environment, so crash injection
        (and recovery) works under spawn, where the old module-global
        seam could not reach the workers."""
        spawn = multiprocessing.get_context("spawn")
        monkeypatch.setattr(executor_module, "fork_context", lambda: spawn)
        with BatchExecutor(pool=NetworkPool(), registry=default_registry(),
                           cache_responses=False,
                           mode="processes", workers=2) as executor:
            out = executor.run([req(seed=99, request_id="boom"),
                                req(seed=1, request_id="ok")])
        by_id = {r.request_id: r for r in out}
        assert by_id["boom"].error_code == "WORKER_CRASHED"
        assert by_id["ok"].verdict == "REALIZED"

    def test_single_request_runs_in_process_mode_executor(self):
        with BatchExecutor(pool=NetworkPool(), registry=default_registry(),
                           mode="processes", workers=2) as executor:
            out = executor.run([req(seed=5, request_id="solo")])
        assert len(out) == 1 and out[0].verdict == "REALIZED"


class TestResponseCacheLRU:
    def test_eviction_is_lru_not_fifo(self):
        executor = BatchExecutor(pool=NetworkPool(), registry=default_registry(),
                                 max_cached_responses=2)
        a, b, c = req(seed=1), req(seed=2), req(seed=3)
        executor.handle(a)
        executor.handle(b)
        executor.handle(a)  # touch a: now b is least-recently-used
        executor.handle(c)  # evicts b under LRU (FIFO would evict a)
        stats = executor.stats()
        assert stats["response_cache_evictions"] == 1
        assert executor.handle(a).cached  # a survived
        assert not executor.handle(b).cached  # b was evicted, re-runs

    def test_counters_in_stats(self):
        executor = BatchExecutor(pool=NetworkPool(), registry=default_registry(),
                                 max_cached_responses=1)
        executor.handle(req(seed=1))
        executor.handle(req(seed=1))
        executor.handle(req(seed=2))
        stats = executor.stats()
        assert stats["response_cache_hits"] == 1
        assert stats["response_cache_evictions"] == 1
        assert stats["response_cache_size"] == 1
        assert {"coalesced_hits", "worker_crashes",
                "scenario_cache_evictions"} <= set(stats)


class TestScenarioCacheLRU:
    def test_registry_lru_and_eviction_counter(self):
        registry = default_registry()
        registry.max_cached = 2
        registry.materialize("regular", 16, seed=0)
        registry.materialize("regular", 24, seed=0)
        registry.materialize("regular", 16, seed=0)  # touch 16: LRU = 24
        registry.materialize("regular", 32, seed=0)  # evicts 24
        assert registry.cache_evictions == 1
        hits_before = registry.cache_hits
        registry.materialize("regular", 16, seed=0)  # still resident
        assert registry.cache_hits == hits_before + 1
        misses_before = registry.cache_misses
        registry.materialize("regular", 24, seed=0)  # evicted: regenerates
        assert registry.cache_misses == misses_before + 1

    def test_executor_reports_scenario_evictions(self):
        registry = default_registry()
        registry.max_cached = 1
        executor = BatchExecutor(pool=NetworkPool(), registry=registry)
        executor.handle(req(seed=1, n=16))
        executor.handle(req(seed=1, n=24))
        assert executor.stats()["scenario_cache_evictions"] >= 1


class TestThreadedCoalescing:
    def test_concurrent_identical_requests_single_execution(self):
        executor = BatchExecutor(pool=NetworkPool(), registry=default_registry(),
                                 mode="threads", workers=4)
        identical = [req(kind="degree_implicit", scenario="power_law", n=64,
                         seed=11, request_id=f"x{i}") for i in range(6)]
        out = executor.run(identical)
        stats = executor.stats()
        assert len({r.fingerprint() for r in out}) == 1
        # One execution; the other five were coalesced or cache-served
        # (the two counters are disjoint).
        assert stats["coalesced_hits"] + stats["response_cache_hits"] == 5
        assert sum(1 for r in out if not r.cached) == 1

    def test_failed_leader_does_not_starve_followers(self):
        """If the leader errors (not cached), a follower re-runs the key."""
        registry = default_registry()
        executor = BatchExecutor(pool=NetworkPool(), registry=registry,
                                 mode="threads", workers=3)
        # An infeasible scenario errors for every runner, deterministically.
        bad = [RealizationRequest(kind="degree_implicit", scenario="capacity_classes",
                                  n=4, seed=1, request_id=f"e{i}",
                                  params={"super_fraction": 0.9,
                                          "regular_fraction": 0.9})
               for i in range(4)]
        out = executor.run(bad)
        assert all(r.verdict == "ERROR" for r in out)
        assert executor.stats()["response_cache_hits"] == 0  # errors not cached


class TestRoundBudget:
    def test_budget_exceeded_is_typed(self):
        executor = BatchExecutor(pool=NetworkPool(), registry=default_registry())
        response = executor.handle(req(n=64, seed=0, max_rounds=5, request_id="t"))
        assert response.verdict == "ERROR"
        assert response.error_code == "BUDGET_EXCEEDED"
        assert "round budget exceeded" in response.error
        round_trip = type(response).from_dict(response.to_dict())
        assert round_trip.error_code == "BUDGET_EXCEEDED"

    def test_generous_budget_realizes(self):
        executor = BatchExecutor(pool=NetworkPool(), registry=default_registry())
        response = executor.handle(req(n=32, seed=0, max_rounds=10**6))
        assert response.verdict == "REALIZED"

    def test_budget_does_not_poison_pooled_network(self):
        pool = NetworkPool()
        executor = BatchExecutor(pool=pool, registry=default_registry(),
                                 cache_responses=False)
        exhausted = executor.handle(req(n=32, seed=4, max_rounds=3))
        assert exhausted.error_code == "BUDGET_EXCEEDED"
        # The same warm network (same pool key) must run unbudgeted now.
        clean = executor.handle(req(n=32, seed=4))
        assert clean.verdict == "REALIZED"
        assert pool.stats()["pool_hits"] >= 1

    def test_budget_in_process_drain(self):
        batch = [req(n=64, seed=0, max_rounds=5, request_id="tiny"),
                 req(n=32, seed=1, request_id="fine")]
        with BatchExecutor(pool=NetworkPool(), registry=default_registry(),
                           mode="processes", workers=2) as executor:
            out = executor.run(batch)
        assert out[0].error_code == "BUDGET_EXCEEDED"
        assert out[1].verdict == "REALIZED"

    def test_network_level_budget_semantics(self):
        net = Network(16, NCCConfig(seed=0))
        net.set_round_budget(2)
        net.idle_round()
        net.idle_round()
        with pytest.raises(RoundBudgetExceeded) as excinfo:
            net.idle_round()
        assert excinfo.value.budget == 2 and excinfo.value.rounds == 3
        with pytest.raises(RoundBudgetExceeded):
            net.charge(10)
        net.reset()
        assert net.round_budget is None  # budgets never survive a lease
        with pytest.raises(ValueError):
            net.set_round_budget(0)

    def test_max_rounds_validation(self):
        with pytest.raises(ServiceError, match="max_rounds"):
            req(max_rounds=0).validate()
        with pytest.raises(ServiceError, match="max_rounds"):
            req(max_rounds=True).validate()
        with pytest.raises(ServiceError, match="shards"):
            req(shards=-1).validate()
        req(max_rounds=10, shards=2).validate()

    def test_shards_neutralized_in_cache_key_for_inprocess_engines(self):
        a = req(seed=1, shards=3)
        b = req(seed=1)
        assert a.cache_key() == b.cache_key()
        sharded_a = req(seed=1, engine="sharded", shards=2)
        sharded_b = req(seed=1, engine="sharded", shards=3)
        assert sharded_a.cache_key() != sharded_b.cache_key()


class TestModeSurface:
    def test_mode_validation(self):
        with pytest.raises(ValueError, match="mode"):
            BatchExecutor(mode="fibers")
        assert BatchExecutor(mode="processes").mode == "processes"

    def test_close_without_pool_is_noop(self):
        executor = BatchExecutor(mode="processes")
        executor.close()
        executor.close()

    def test_cli_batch_mode_processes(self, tmp_path, capsys):
        import json

        from repro.__main__ import main

        path = tmp_path / "batch.jsonl"
        path.write_text(
            '{"request_id": "p1", "kind": "degree_implicit", "scenario": '
            '"regular", "n": 16, "seed": 1}\n'
            '{"request_id": "p2", "kind": "tree", "scenario": "tree_random", '
            '"n": 12, "seed": 2}\n'
        )
        assert main(["batch", str(path), "--mode", "processes",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        rows = [json.loads(line) for line in out.strip().splitlines()]
        assert [r["request_id"] for r in rows] == ["p1", "p2"]
        assert all(r["verdict"] == "REALIZED" for r in rows)
