"""The asyncio TCP serve front end (``repro.service.server``).

The acceptance properties: concurrent clients each see *their* responses
in *their* input order, field-identical to a sequential run of the same
requests (the executor's bit-identical guarantees hold over the socket);
admission control answers overflow with typed ``ADMISSION_REJECTED``
envelopes instead of queueing or stalling; a graceful drain finishes
in-flight work and rejects the rest; and a worker crash mid-connection
is enveloped and the connection keeps serving.

The tests run client and server on one event loop per test (real TCP on
127.0.0.1, ephemeral ports).  The crash test primes the process pool
*before* any socket exists: fork-started workers inherit every open fd,
and a duplicated socket fd in a worker would defeat EOF — the CI smoke
step covers the real-subprocess arrangement.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import socket
import threading

import pytest

import repro.service.executor as executor_module
from repro.service import (
    BatchExecutor,
    FaultPlan,
    FaultRule,
    NetworkPool,
    RealizationRequest,
    RealizationResponse,
    SocketServer,
    default_registry,
    serve_socket,
)
from repro.service import faults
from repro.service.server import ADMISSION_REJECTED

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def line(request_id, n=16, seed=1, kind="degree_implicit", scenario="regular"):
    return json.dumps(
        {"request_id": request_id, "kind": kind, "scenario": scenario,
         "n": n, "seed": seed}
    )


def req_of(text):
    return RealizationRequest.from_dict(json.loads(text))


def strip(row):
    """Response fields minus identity and measurement volatiles."""
    return {k: v for k, v in row.items()
            if k not in ("request_id", "cached", "elapsed_sec")}


def run(coro, timeout=120):
    return asyncio.run(asyncio.wait_for(coro, timeout=timeout))


async def send(writer, text):
    writer.write((text + "\n").encode())
    await writer.drain()


async def recv(reader, timeout=60):
    raw = await asyncio.wait_for(reader.readline(), timeout=timeout)
    assert raw, "connection closed before the expected response"
    return json.loads(raw)


async def close(writer):
    writer.close()
    await writer.wait_closed()


class _BlockingExecutor:
    """Executor stub whose handle() blocks until the test releases it —
    deterministic in-flight occupancy for the admission-control tests."""

    mode = "sequential"
    workers = 1

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()

    def handle(self, request):
        self.started.set()
        assert self.release.wait(timeout=60), "test never released the stub"
        return RealizationResponse(
            request_id=request.request_id, kind=request.kind,
            ok=True, verdict="REALIZED",
        )

    def stats(self):
        return {"stub": True}


class TestSocketServe:
    def test_single_client_in_order_and_bit_identical(self):
        lines = [
            line("a", n=12, seed=1),
            line("b", n=10, seed=2, kind="tree", scenario="tree_random"),
            line("c", n=10, seed=3, kind="connectivity", scenario="rho_uniform"),
        ]
        baseline_executor = BatchExecutor(
            pool=NetworkPool(), registry=default_registry()
        )
        baseline = [
            baseline_executor.handle(req_of(text)).to_dict() for text in lines
        ]
        executor = BatchExecutor(pool=NetworkPool(), registry=default_registry())

        async def scenario():
            server = await SocketServer(executor, port=0, window=8).start()
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            for text in lines:
                await send(writer, text)
            rows = [await recv(reader) for _ in lines]
            await close(writer)
            server.drain()
            return rows, await server.wait_done()

        try:
            rows, (handled, errors) = run(scenario())
        finally:
            executor.close()
        assert [r["request_id"] for r in rows] == ["a", "b", "c"]
        assert [strip(r) for r in rows] == [strip(r) for r in baseline]
        assert (handled, errors) == (3, 0)

    def test_two_clients_interleave_in_order_and_bit_identical(self):
        lines_a = [line(f"a{i}", n=12, seed=i) for i in range(4)]
        lines_b = [
            line(f"b{i}", n=10, seed=10 + i, kind="tree", scenario="tree_random")
            for i in range(4)
        ]
        baseline_executor = BatchExecutor(
            pool=NetworkPool(), registry=default_registry()
        )
        baseline = {
            json.loads(text)["request_id"]:
                baseline_executor.handle(req_of(text)).to_dict()
            for text in lines_a + lines_b
        }
        executor = BatchExecutor(pool=NetworkPool(), registry=default_registry())

        async def client(port, lines):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            for text in lines:  # pipelined: all lines up front
                await send(writer, text)
            rows = [await recv(reader) for _ in lines]
            await close(writer)
            return rows

        async def scenario():
            server = await SocketServer(executor, port=0, window=16).start()
            rows_a, rows_b = await asyncio.gather(
                client(server.port, lines_a), client(server.port, lines_b)
            )
            server.drain()
            return rows_a, rows_b, await server.wait_done()

        try:
            rows_a, rows_b, (handled, errors) = run(scenario())
        finally:
            executor.close()
        # Per-connection input order survives the interleaving.
        assert [r["request_id"] for r in rows_a] == [f"a{i}" for i in range(4)]
        assert [r["request_id"] for r in rows_b] == [f"b{i}" for i in range(4)]
        # And every response is field-identical to the sequential run.
        for row in rows_a + rows_b:
            assert strip(row) == strip(baseline[row["request_id"]])
        assert (handled, errors) == (8, 0)

    def test_window_overflow_rejected_typed_and_in_order(self):
        stub = _BlockingExecutor()

        async def scenario():
            server = await SocketServer(stub, port=0, window=2).start()
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            for i in range(3):  # window 2: the third must be rejected
                await send(writer, line(f"w{i}"))
            while server.rejected < 1:
                await asyncio.sleep(0.01)
            stub.release.set()
            rows = [await recv(reader) for _ in range(3)]
            await close(writer)
            server.drain()
            return rows, await server.wait_done()

        rows, (handled, errors) = run(scenario())
        # In-order: the two admitted responses land first, the rejection
        # envelope (emitted instantly at admission time) stays third.
        assert [r["request_id"] for r in rows] == ["w0", "w1", "w2"]
        assert [r["verdict"] for r in rows] == ["REALIZED", "REALIZED", "ERROR"]
        assert rows[2]["error_code"] == ADMISSION_REJECTED
        assert "window full" in rows[2]["error"]
        assert (handled, errors) == (3, 1)
        assert server_counts_match(rows, handled, errors)

    def test_per_connection_fair_share(self):
        """One greedy client cannot monopolize the window while another
        connection is open: its share is window // connections."""
        stub = _BlockingExecutor()

        async def scenario():
            server = await SocketServer(stub, port=0, window=4).start()
            reader_a, writer_a = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            reader_b, writer_b = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            while server.connections_total < 2:  # both registered
                await asyncio.sleep(0.01)
            for i in range(3):  # share = 4 // 2 = 2: the third is rejected
                await send(writer_a, line(f"f{i}"))
            while server.rejected < 1:
                await asyncio.sleep(0.01)
            stub.release.set()
            rows = [await recv(reader_a) for _ in range(3)]
            await close(writer_a)
            await close(writer_b)
            server.drain()
            await server.wait_done()
            return rows

        rows = run(scenario())
        assert [r["verdict"] for r in rows] == ["REALIZED", "REALIZED", "ERROR"]
        assert rows[2]["error_code"] == ADMISSION_REJECTED
        assert "fair share" in rows[2]["error"]

    def test_graceful_drain_finishes_in_flight_rejects_new(self):
        stub = _BlockingExecutor()

        async def scenario():
            server = await SocketServer(stub, port=0, window=4).start()
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            await send(writer, line("inflight"))
            while not stub.started.is_set():
                await asyncio.sleep(0.01)
            server.drain()  # SIGTERM path: finish in-flight, reject new
            await send(writer, line("late"))
            while server.rejected < 1:
                await asyncio.sleep(0.01)
            stub.release.set()
            first = await recv(reader)
            second = await recv(reader)
            counts = await server.wait_done()
            return first, second, counts

        first, second, counts = run(scenario())
        assert first["request_id"] == "inflight"
        assert first["verdict"] == "REALIZED"
        assert second["request_id"] == "late"
        assert second["error_code"] == ADMISSION_REJECTED
        assert "draining" in second["error"]
        assert counts == (2, 1)

    def test_stats_kind_reports_executor_and_server_counters(self):
        executor = BatchExecutor(pool=NetworkPool(), registry=default_registry())

        async def scenario():
            server = await SocketServer(executor, port=0, window=5).start()
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            await send(writer, line("warm", n=12, seed=4))
            assert (await recv(reader))["verdict"] == "REALIZED"
            await send(writer, json.dumps({"request_id": "st", "kind": "stats"}))
            stats = await recv(reader)
            await close(writer)
            server.drain()
            await server.wait_done()
            return stats

        try:
            stats = run(scenario())
        finally:
            executor.close()
        assert stats["verdict"] == "STATS" and stats["ok"] is True
        assert stats["request_id"] == "st"
        ex = stats["executor"]
        assert ex["requests_handled"] == 1
        assert ex["latency"]["count"] == 1
        assert set(ex["latency"]) == {"count", "mean_ms", "p50_ms", "p99_ms"}
        srv = stats["server"]
        assert srv["window"] == 5
        assert srv["connections"] == 1
        assert srv["handled"] == 1  # the realization; stats not yet emitted
        assert srv["rejected"] == 0 and srv["draining"] is False

    def test_worker_crash_mid_connection_is_typed_and_recovers(self, monkeypatch):
        plan = FaultPlan([FaultRule(action="crash", request_ids=("boom",))])
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        faults.clear()
        executor = BatchExecutor(pool=NetworkPool(), registry=default_registry(),
                                 cache_responses=False, mode="processes",
                                 workers=2)
        try:
            # Prime the worker pool before any socket exists: fork-started
            # workers inherit open fds, and a duplicated socket fd inside
            # a worker would defeat client EOF semantics.
            assert executor.submit(
                req_of(line("prime", seed=77))
            ).result(timeout=120).verdict == "REALIZED"

            async def scenario():
                server = await SocketServer(executor, port=0, window=4).start()
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                rows = []
                for text in (line("ok0", seed=1), line("boom", seed=99),
                             line("ok1", seed=2)):
                    await send(writer, text)
                    rows.append(await recv(reader, timeout=120))
                await close(writer)
                server.drain()
                return rows, await server.wait_done()

            rows, (handled, errors) = run(scenario(), timeout=300)
        finally:
            faults.clear()
            executor.close()
        assert [r["request_id"] for r in rows] == ["ok0", "boom", "ok1"]
        assert rows[0]["verdict"] == "REALIZED"
        assert rows[1]["verdict"] == "ERROR"
        assert rows[1]["error_code"] == "WORKER_CRASHED"
        assert rows[2]["verdict"] == "REALIZED"  # the connection recovered
        assert (handled, errors) == (3, 1)
        assert executor.stats()["worker_crashes"] >= 1

    def test_window_validation_matches_stdio_rule(self):
        executor = _BlockingExecutor()
        for bad in (0, -1, True, 2.5):
            with pytest.raises(ValueError, match="window"):
                SocketServer(executor, window=bad)
        assert SocketServer(executor, window=None).window == \
            executor_module.SERVE_STREAM_WINDOW

    def test_serve_socket_blocking_entry_returns_counts(self):
        """The CLI shape: serve_socket blocks a thread, ready() reveals
        the bound port, drain ends it with (handled, errors)."""
        executor = BatchExecutor(pool=NetworkPool(), registry=default_registry())
        started = threading.Event()
        holder = {}

        def ready(server):
            holder["server"] = server
            started.set()

        def runner():
            holder["counts"] = serve_socket(
                executor, port=0, window=4, ready=ready,
                install_signal_handlers=False,  # not the main thread
            )

        thread = threading.Thread(target=runner, daemon=True)
        thread.start()
        try:
            assert started.wait(timeout=30)
            server = holder["server"]
            with socket.create_connection(("127.0.0.1", server.port), timeout=30) as sock:
                sock.sendall((line("cli", n=12, seed=6) + "\n").encode())
                sock.sendall(b'not json\n')
                stream = sock.makefile("r")
                good = json.loads(stream.readline())
                bad = json.loads(stream.readline())
            assert good["request_id"] == "cli" and good["verdict"] == "REALIZED"
            assert bad["verdict"] == "ERROR" and "bad JSON" in bad["error"]
        finally:
            server = holder.get("server")
            if server is not None and server._loop is not None:
                server._loop.call_soon_threadsafe(server.drain)
            thread.join(timeout=60)
            executor.close()
        assert not thread.is_alive(), "serve_socket did not drain"
        assert holder["counts"] == (2, 1)


def server_counts_match(rows, handled, errors):
    """Emitted rows reconcile with the server's counters."""
    return handled == len(rows) and errors == sum(
        1 for r in rows if r["verdict"] == "ERROR"
    )
