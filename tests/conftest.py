"""Shared test fixtures and helpers."""

from __future__ import annotations

import sys

import pytest

from repro.ncc.config import NCCConfig, Variant
from repro.ncc.network import Network

# Deep Fork recursion in the mergesort needs generous Python recursion room.
sys.setrecursionlimit(200_000)


def make_net(n: int, seed: int = 0, **overrides) -> Network:
    """A strict NCC0 network with a deterministic seed."""
    return Network(n, NCCConfig(seed=seed, **overrides))


def make_ncc1(n: int, seed: int = 0, **overrides) -> Network:
    """An NCC1 network with sequential IDs (the SPAA'19 convention)."""
    return Network(
        n, NCCConfig(seed=seed, variant=Variant.NCC1, random_ids=False, **overrides)
    )


@pytest.fixture
def net16() -> Network:
    return make_net(16, seed=1)


@pytest.fixture
def net32() -> Network:
    return make_net(32, seed=2)


def inorder_of(net: Network, ns: str, root: int) -> list:
    """Iterative inorder traversal of a tree namespace (test oracle)."""
    from repro.primitives.protocol import ns_state

    out, stack, cursor = [], [], root
    while stack or cursor is not None:
        while cursor is not None:
            stack.append(cursor)
            cursor = ns_state(net, cursor, ns).get("left")
        cursor = stack.pop()
        out.append(cursor)
        cursor = ns_state(net, cursor, ns).get("right")
    return out
