"""Micro-tests for result types, validation negatives, and misc helpers."""

import pytest

from repro.core.envelope import envelope_holds
from repro.core.result import (
    ConnectivityResult,
    RealizationResult,
    explicitness_holds,
    overlay_degrees,
    overlay_edges,
    record_edge,
)
from repro.analysis.scaling import fit_power_law, is_flat_or_decreasing
from repro.ncc.message import Message, msg
from repro.ncc.metrics import RoundStats
from repro.sequential.envelope import discrepancy
from repro.validation.overlay import holders_of

from tests.conftest import make_net


def _stats(n=8):
    return RoundStats(
        n=n, rounds=10, simulated_rounds=10, charged_rounds=0,
        messages=5, words=9, send_cap=8, recv_cap=8, max_round_load=2,
    )


class TestOverlayState:
    def test_record_and_extract(self):
        net = make_net(4, seed=1)
        a, b, c = net.node_ids[0], net.node_ids[1], net.node_ids[2]
        record_edge(net, a, b)
        record_edge(net, c, b)
        assert overlay_edges(net) == sorted(
            [(min(a, b), max(a, b)), (min(b, c), max(b, c))]
        )
        degrees = overlay_degrees(net)
        assert degrees[b] == 2 and degrees[a] == 1

    def test_explicitness_negative(self):
        net = make_net(3, seed=2)
        a, b = net.node_ids[0], net.node_ids[1]
        record_edge(net, a, b)  # one-sided
        assert not explicitness_holds(net)
        record_edge(net, b, a)
        assert explicitness_holds(net)

    def test_holders_of(self):
        net = make_net(3, seed=3)
        a, b = net.node_ids[0], net.node_ids[1]
        record_edge(net, a, b)
        assert holders_of(net, (a, b)) == [a]
        record_edge(net, b, a)
        assert sorted(holders_of(net, (a, b))) == sorted([a, b])


class TestResultTypes:
    def test_realization_result_properties(self):
        result = RealizationResult(
            realized=True,
            announced_unrealizable_by=(),
            edges=((1, 2), (2, 3)),
            realized_degrees={1: 1, 2: 2, 3: 1},
            phases=2,
            explicit=False,
            stats=_stats(),
        )
        assert result.num_edges == 2

    def test_connectivity_ratio_with_zero_bound(self):
        result = ConnectivityResult(
            edges=(), hub=None, explicit=True,
            lower_bound_edges=0, stats=_stats(),
        )
        assert result.approximation_ratio == 0.0

    def test_envelope_holds_negative_direction(self):
        demands = {1: 3, 2: 3, 3: 0, 4: 0}
        under = RealizationResult(
            realized=True, announced_unrealizable_by=(),
            edges=((1, 2),), realized_degrees={1: 1, 2: 1, 3: 0, 4: 0},
            phases=1, explicit=False, stats=_stats(),
        )
        assert not envelope_holds(demands, under)  # d' < d
        inflated = RealizationResult(
            realized=True, announced_unrealizable_by=(),
            edges=(), realized_degrees={1: 3, 2: 3, 3: 3, 4: 3},
            phases=1, explicit=False, stats=_stats(),
        )
        # sum d' = 12 <= 2 * sum min(d, n-1) = 12: boundary holds
        assert envelope_holds(demands, inflated)

    def test_sequential_discrepancy_helper(self):
        assert discrepancy([1, 2], [3, 2]) == 2
        assert discrepancy([3], [1]) == 0  # shortfalls don't count


class TestMessageHelpers:
    def test_with_src(self):
        original = msg("k", ids=(5,), data=(1,))
        stamped = original.with_src(9)
        assert stamped.src == 9
        assert original.src == -1
        assert stamped.ids == (5,) and stamped.data == (1,)

    def test_rejects_non_scalar_payload(self):
        bad = Message("k", data=([1, 2],))
        with pytest.raises(TypeError):
            bad.words(64)

    def test_none_counts_one_word(self):
        assert msg("k", data=(None,)).words(64) == 1


class TestAnalysisEdges:
    def test_constant_series_r_squared(self):
        fit = fit_power_law([2, 4, 8], [5.0, 5.0, 5.0])
        assert fit.alpha == pytest.approx(0.0, abs=1e-9)
        assert fit.r_squared == 1.0

    def test_flatness_short_series(self):
        assert is_flat_or_decreasing([1.0])
        assert is_flat_or_decreasing([])

    def test_flatness_rejects_growth(self):
        assert not is_flat_or_decreasing([1.0, 2.0, 4.0, 8.0])


class TestStatsArithmetic:
    def test_phase_rounds_merges_repeated_labels(self):
        from repro.ncc.metrics import PhaseRecord

        stats = RoundStats(
            n=4, rounds=7, simulated_rounds=7, charged_rounds=0,
            messages=0, words=0, send_cap=8, recv_cap=8, max_round_load=0,
            phases=(
                PhaseRecord("sort", 2, 0),
                PhaseRecord("stars", 1, 0),
                PhaseRecord("sort", 3, 0),
            ),
        )
        assert stats.phase_rounds() == {"sort": 5, "stars": 1}
