"""Tests for explicit conversion (Thm 12) and envelope realization (Thm 13)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.envelope import (
    envelope_discrepancy,
    envelope_holds,
    realize_envelope,
)
from repro.core.explicit import realize_degree_sequence_explicit
from repro.ncc.config import EnforcementMode
from repro.sequential import is_graphic
from repro.validation import check_degree_match, check_explicit, check_implicit
from repro.workloads import (
    near_graphic_perturbation,
    random_graphic_sequence,
    regular_sequence,
)

from tests.conftest import make_net


class TestExplicitConversion:
    @pytest.mark.parametrize("seq", [[3, 3, 3, 3], [2, 2, 2, 1, 1], [4, 3, 3, 2, 2, 2]])
    def test_collection_method(self, seq):
        net = make_net(len(seq), seed=len(seq))
        demands = dict(zip(net.node_ids, seq))
        result = realize_degree_sequence_explicit(net, demands)
        assert result.realized and result.explicit
        assert check_explicit(net)
        assert check_degree_match(result.edges, demands, net.node_ids)

    def test_random_method_needs_defer(self):
        net = make_net(8, seed=1)
        demands = {v: 3 for v in net.node_ids}
        from repro.ncc.errors import ProtocolError

        with pytest.raises(ProtocolError):
            realize_degree_sequence_explicit(net, demands, method="random")

    def test_random_method_in_defer_mode(self):
        net = make_net(12, seed=2, enforcement=EnforcementMode.DEFER)
        demands = {v: 4 for v in net.node_ids}
        result = realize_degree_sequence_explicit(net, demands, method="random")
        assert result.realized and result.explicit
        assert check_explicit(net)
        assert check_degree_match(result.edges, demands, net.node_ids)

    def test_unknown_method_rejected(self):
        net = make_net(6, seed=3)
        demands = {v: 1 for v in net.node_ids}
        with pytest.raises(ValueError):
            realize_degree_sequence_explicit(net, demands, method="bogus")

    def test_unrealizable_skips_conversion(self):
        net = make_net(3, seed=4)
        demands = dict(zip(net.node_ids, (1, 1, 1)))
        result = realize_degree_sequence_explicit(net, demands)
        assert not result.realized
        assert not result.explicit

    def test_larger_instance(self):
        seq = random_graphic_sequence(20, 0.35, seed=9)
        net = make_net(20, seed=5)
        demands = dict(zip(net.node_ids, seq))
        result = realize_degree_sequence_explicit(net, demands)
        assert result.realized
        assert check_explicit(net)

    def test_both_endpoints_know_each_other(self):
        """Explicitness at the knowledge level, not just the edge list."""
        net = make_net(10, seed=6)
        demands = {v: 3 for v in net.node_ids}
        result = realize_degree_sequence_explicit(net, demands)
        for u, v in result.edges:
            assert net.knows(u, v) and net.knows(v, u)


class TestEnvelope:
    @pytest.mark.parametrize(
        "seq",
        [
            [5, 5, 0, 0, 0, 0],
            [1, 1, 1],
            [4, 4, 4, 4, 0],
            [3, 3, 3, 1],
            [5, 5, 1, 1, 1, 1],
        ],
    )
    def test_non_graphic_guarantees(self, seq):
        assert not is_graphic(seq)
        net = make_net(len(seq), seed=sum(seq))
        demands = dict(zip(net.node_ids, seq))
        result = realize_envelope(net, demands)
        assert result.realized
        assert envelope_holds(demands, result), (
            seq,
            result.realized_degrees,
        )
        assert check_explicit(net)

    def test_graphic_input_zero_discrepancy(self):
        seq = [3, 3, 2, 2, 2]
        net = make_net(len(seq), seed=1)
        demands = dict(zip(net.node_ids, seq))
        result = realize_envelope(net, demands)
        assert result.realized
        assert envelope_discrepancy(demands, result) == 0
        assert check_degree_match(result.edges, demands, net.node_ids)

    def test_implicit_variant(self):
        seq = [3, 3, 3, 1]
        net = make_net(4, seed=2)
        demands = dict(zip(net.node_ids, seq))
        result = realize_envelope(net, demands, explicit=False)
        assert result.realized
        assert check_implicit(net)
        assert envelope_holds(demands, result)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_guarantees_on_perturbations(self, seed):
        base = random_graphic_sequence(10, 0.4, seed=seed)
        seq = near_graphic_perturbation(base, bumps=3, seed=seed)
        net = make_net(10, seed=seed)
        demands = dict(zip(net.node_ids, seq))
        result = realize_envelope(net, demands)
        assert result.realized
        assert envelope_holds(demands, result)

    def test_discrepancy_bounded_by_demand_sum(self):
        """Theorem 13's proof bound: epsilon <= sum(d)."""
        for seed in range(4):
            base = regular_sequence(12, 3)
            seq = near_graphic_perturbation(base, bumps=5, seed=seed)
            net = make_net(12, seed=seed)
            demands = dict(zip(net.node_ids, seq))
            result = realize_envelope(net, demands)
            clamped_sum = sum(min(d, 11) for d in demands.values())
            assert envelope_discrepancy(demands, result) <= clamped_sum
