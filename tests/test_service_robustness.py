"""Robustness layer: deadlines, watchdog, retries, breaker, fault plans.

The PR-7 acceptance properties:

* ``deadline_ms`` travels end to end — validated in the API, stamped at
  admission, enforced cooperatively at engine round boundaries (via the
  network's injectable clock) and at every dispatch point, answered with
  typed ``DEADLINE_EXCEEDED`` envelopes.  Runs that finish in time are
  bit-identical to undeadlined runs.
* A hung process-pool worker is noticed by the watchdog, killed, and
  answered with a typed ``WORKER_TIMEOUT`` — while innocent co-victims
  of the pool break recover through the ordinary crash-retry path.  In
  a two-client socket serve, the *other* client's responses stay
  field-identical to a sequential drain.
* Repeated pool breaks open a :class:`CircuitBreaker`; while open the
  executor degrades to deterministic in-parent execution, then probes
  and closes after the cooldown (open → half-open → closed).
* :class:`RetryPolicy` backoff and :class:`FaultPlan` coin flips are
  pure functions of their seeds — chaos runs are reproducible bit for
  bit.
"""

from __future__ import annotations

import json
import asyncio
import time
from concurrent.futures import Future

import pytest

from repro.ncc.config import NCCConfig
from repro.ncc.errors import DeadlineExceeded
from repro.ncc.network import Network
from repro.ncc.sharded import _shutdown_workers
from repro.service import (
    BatchExecutor,
    CircuitBreaker,
    FaultPlan,
    FaultRule,
    NetworkPool,
    RealizationRequest,
    RetryPolicy,
    ServiceError,
    SocketServer,
    default_registry,
)
from repro.service import faults
from repro.service.executor import run_request
from repro.service.server import validate_timeout


def req(kind="degree_implicit", scenario="regular", n=16, seed=1, **kw):
    return RealizationRequest(kind=kind, scenario=scenario, n=n, seed=seed, **kw)


class SteppingClock:
    """A fake monotonic clock advancing ``step`` per call."""

    def __init__(self, start=0.0, step=0.0):
        self.now = start
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


def install_plan(monkeypatch, *rules, seed=0):
    plan = FaultPlan(list(rules), seed=seed)
    monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
    faults.clear()
    return plan


@pytest.fixture(autouse=True)
def _fault_hygiene():
    yield
    faults.clear()


# ---------------------------------------------------------------------- #
# RetryPolicy                                                            #
# ---------------------------------------------------------------------- #


class TestRetryPolicy:
    def test_first_attempt_has_no_delay(self):
        policy = RetryPolicy()
        assert policy.delay_sec(1) == 0.0
        assert policy.delay_sec(0) == 0.0

    def test_backoff_is_deterministic_per_seed(self):
        a = RetryPolicy(max_attempts=6, seed=42)
        b = RetryPolicy(max_attempts=6, seed=42)
        c = RetryPolicy(max_attempts=6, seed=43)
        delays_a = [a.delay_sec(k) for k in range(2, 7)]
        delays_b = [b.delay_sec(k) for k in range(2, 7)]
        delays_c = [c.delay_sec(k) for k in range(2, 7)]
        assert delays_a == delays_b  # same seed => identical schedule
        assert delays_a != delays_c  # different seed decorrelates

    def test_backoff_grows_and_respects_bounds(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay_ms=10, multiplier=2.0,
            max_delay_ms=50, jitter=0.5, seed=0,
        )
        for k in range(2, 11):
            delay = policy.delay_sec(k)
            base = min(10 * 2 ** (k - 2), 50)
            assert 0.5 * base / 1000 <= delay <= 50 / 1000
        # With jitter off the schedule is the exact exponential ramp.
        plain = RetryPolicy(max_attempts=5, base_delay_ms=10, jitter=0.0)
        assert [plain.delay_sec(k) for k in (2, 3, 4)] == [0.01, 0.02, 0.04]

    def test_validation(self):
        for bad in (0, -1, True, 1.5):
            with pytest.raises(ValueError):
                RetryPolicy(max_attempts=bad)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_ms=-1)


# ---------------------------------------------------------------------- #
# CircuitBreaker                                                         #
# ---------------------------------------------------------------------- #


class TestCircuitBreaker:
    def test_full_cycle_open_half_open_closed(self):
        clock = SteppingClock()
        breaker = CircuitBreaker(failure_threshold=3, cooldown_sec=10.0,
                                 clock=clock)
        assert breaker.state == CircuitBreaker.CLOSED
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED  # below threshold
        assert breaker.allow()
        breaker.record_failure()  # third consecutive: opens
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.snapshot()["opens"] == 1
        assert not breaker.allow()  # cooldown not elapsed
        clock.now = 20.0
        assert breaker.allow()  # the single half-open probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow()  # second caller is still rejected
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        clock = SteppingClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_sec=5.0,
                                 clock=clock)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock.now = 6.0
        assert breaker.allow()  # probe
        breaker.record_failure()  # probe failed: reopen, new cooldown
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.snapshot()["opens"] == 2
        assert not breaker.allow()  # clock has not advanced past 6+5

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        snap = breaker.snapshot()
        assert snap["consecutive_failures"] == 1
        assert snap["failures_total"] == 2

    def test_validation(self):
        for bad in (0, True, 1.5):
            with pytest.raises(ValueError):
                CircuitBreaker(failure_threshold=bad)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_sec=-1)


# ---------------------------------------------------------------------- #
# FaultPlan                                                              #
# ---------------------------------------------------------------------- #


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            [FaultRule(action="crash", request_ids=("a", "b")),
             FaultRule(action="slow", delay_ms=50, probability=0.5,
                       max_fires=2)],
            seed=7,
        )
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.to_dict() == plan.to_dict()

    def test_match_respects_request_id_filter(self):
        plan = FaultPlan([FaultRule(action="crash", request_ids=("boom",))])
        assert plan.match("crash", "boom") is not None
        assert plan.match("crash", "fine") is None
        assert plan.match("hang", "boom") is None

    def test_probability_coin_is_deterministic(self):
        rule = FaultRule(action="crash", probability=0.5)
        verdicts_a = [FaultPlan([rule], seed=3).match("crash", f"r{i}") is not None
                      for i in range(64)]
        verdicts_b = [FaultPlan([rule], seed=3).match("crash", f"r{i}") is not None
                      for i in range(64)]
        verdicts_c = [FaultPlan([rule], seed=4).match("crash", f"r{i}") is not None
                      for i in range(64)]
        assert verdicts_a == verdicts_b  # same seed, fresh counters
        assert verdicts_a != verdicts_c
        assert 0 < sum(verdicts_a) < 64  # the coin actually splits

    def test_max_fires_caps_per_plan_instance(self):
        plan = FaultPlan([FaultRule(action="hang", max_fires=2)])
        assert plan.match("hang", "a") and plan.match("hang", "b")
        assert plan.match("hang", "c") is None

    def test_unknown_action_and_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultRule(action="explode")
        with pytest.raises(ValueError, match="unknown fault rule fields"):
            FaultRule.from_dict({"action": "crash", "oops": 1})
        with pytest.raises(ValueError, match="unknown fault plan fields"):
            FaultPlan.from_dict({"rules": [], "extra": 1})

    def test_sleep_sec(self):
        assert FaultRule(action="hang").sleep_sec() == faults.HANG_SLEEP_SEC
        assert FaultRule(action="hang", delay_ms=250).sleep_sec() == 0.25
        assert FaultRule(action="slow", delay_ms=30).sleep_sec() == 0.03
        assert FaultRule(action="slow").sleep_sec() == 0.0

    def test_env_install_and_clear(self, monkeypatch):
        install_plan(monkeypatch, FaultRule(action="crash"))
        active = faults.active()
        assert active is not None and active.rules[0].action == "crash"
        monkeypatch.delenv(faults.ENV_VAR)
        faults.clear()
        assert faults.active() is None


# ---------------------------------------------------------------------- #
# Network wall deadline                                                  #
# ---------------------------------------------------------------------- #


class TestNetworkDeadline:
    def test_deliver_raises_past_deadline(self):
        net = Network(8, NCCConfig(seed=0))
        net.clock = SteppingClock(start=100.0)
        net.set_wall_deadline(50.0)
        with pytest.raises(DeadlineExceeded):
            net.idle_round()

    def test_charge_raises_past_deadline(self):
        net = Network(8, NCCConfig(seed=0))
        net.clock = SteppingClock(start=100.0)
        net.set_wall_deadline(50.0)
        with pytest.raises(DeadlineExceeded):
            net.charge(1)

    def test_runs_finishing_in_time_are_untouched(self):
        net = Network(8, NCCConfig(seed=0))
        net.set_wall_deadline(time.monotonic() + 3600.0)
        net.idle_round()
        assert net.rounds == 1

    def test_reset_clears_deadline_keeps_clock(self):
        net = Network(8, NCCConfig(seed=0))
        clock = SteppingClock(start=5.0)
        net.clock = clock
        net.set_wall_deadline(1.0)
        net.reset()
        assert net.wall_deadline is None  # pooled leases never inherit
        assert net.clock is clock  # the injected clock survives
        net.idle_round()  # no deadline => no raise

    def test_set_wall_deadline_validation(self):
        net = Network(4, NCCConfig(seed=0))
        with pytest.raises(ValueError):
            net.set_wall_deadline("soon")
        net.set_wall_deadline(None)
        assert net.wall_deadline is None

    def test_run_request_expires_mid_run_with_fake_clock(self):
        """The deadline lands mid-run at a round boundary, not before."""
        request = req(n=32, seed=2, deadline_ms=100)
        net = Network(request.size, request.config())
        # deadline = first tick (0.01) + 0.1; the clock crosses it after
        # ~10 more round-boundary checks — well inside the workload.
        net.clock = SteppingClock(start=0.0, step=0.01)
        response = run_request(request, net, registry=default_registry())
        assert response.verdict == "ERROR"
        assert response.error_code == "DEADLINE_EXCEEDED"
        assert "deadline" in response.error

    def test_run_request_in_time_is_bit_identical(self):
        request = req(n=24, seed=3)
        plain = run_request(request, Network(request.size, request.config()),
                            registry=default_registry())
        generous = run_request(
            req(n=24, seed=3, deadline_ms=3_600_000),
            Network(request.size, request.config()),
            registry=default_registry(),
        )
        assert generous.verdict == plain.verdict == "REALIZED"
        assert generous.fingerprint() == plain.fingerprint()


# ---------------------------------------------------------------------- #
# API surface                                                            #
# ---------------------------------------------------------------------- #


class TestDeadlineField:
    def test_validation(self):
        for bad in (0, -5, True, 1.5, "100"):
            with pytest.raises(ServiceError, match="deadline_ms"):
                req(deadline_ms=bad).validate()
        req(deadline_ms=250).validate()
        req().validate()  # absent stays valid

    def test_wire_and_dict_round_trip(self):
        r = req(deadline_ms=750)
        assert RealizationRequest.from_wire(r.to_wire()).deadline_ms == 750
        assert RealizationRequest.from_dict(r.to_dict()).deadline_ms == 750
        assert RealizationRequest.from_dict(req().to_dict()).deadline_ms is None

    def test_cache_key_neutral(self):
        """deadline_ms bounds *when*, not *what*: identical work shares
        one cache entry regardless of deadline."""
        assert req(deadline_ms=100).cache_key() == req(deadline_ms=900).cache_key()
        assert req(deadline_ms=100).cache_key() == req().cache_key()


# ---------------------------------------------------------------------- #
# Executor: deadlines, watchdog, retries, breaker                        #
# ---------------------------------------------------------------------- #


def make_executor(**kw):
    kw.setdefault("pool", NetworkPool())
    kw.setdefault("registry", default_registry())
    kw.setdefault("mode", "processes")
    kw.setdefault("workers", 2)
    kw.setdefault("watchdog_interval", 0.05)
    kw.setdefault("hang_grace", 0.1)
    return BatchExecutor(**kw)


class TestExecutorDeadlines:
    def test_expired_before_dispatch_async(self):
        with make_executor(cache_responses=False) as executor:
            out = executor._submit(req(request_id="late"), Future(),
                                   deadline=time.monotonic() - 1.0)
            response = out.result(timeout=60)
            assert response.error_code == "DEADLINE_EXCEEDED"
            assert "before dispatch" in response.error
            assert executor.stats()["deadline_exceeded"] == 1

    def test_expired_before_dispatch_sequential(self):
        with make_executor(mode="sequential") as executor:
            response = executor._execute(req(), time.monotonic() - 1.0)
        assert response.error_code == "DEADLINE_EXCEEDED"
        assert "before dispatch" in response.error

    def test_batch_deadline_exceeded_is_typed(self, monkeypatch):
        """A slow fault eats the whole budget: the worker itself answers
        with the typed envelope and the batch keeps draining."""
        install_plan(monkeypatch,
                     FaultRule(action="slow", request_ids=("sluggish",),
                               delay_ms=400))
        # hang_grace well past the slow fault: the worker wakes, notices
        # the expired deadline itself, and answers typed — the watchdog
        # (whose kill would yield WORKER_TIMEOUT instead) never fires.
        with make_executor(cache_responses=False, hang_grace=2.0) as executor:
            out = executor.run([
                req(request_id="sluggish", seed=5, deadline_ms=150),
                req(request_id="prompt", seed=6),
            ])
        by_id = {r.request_id: r for r in out}
        assert by_id["sluggish"].error_code == "DEADLINE_EXCEEDED"
        assert by_id["prompt"].verdict == "REALIZED"

    def test_generous_deadline_bit_identical_over_pool(self):
        with make_executor() as executor:
            timed = executor.handle(req(seed=8, deadline_ms=3_600_000,
                                        request_id="a"))
        with make_executor() as executor:
            plain = executor.handle(req(seed=8, request_id="b"))
        assert timed.verdict == plain.verdict == "REALIZED"
        assert timed.fingerprint() == plain.fingerprint()


class TestWatchdog:
    def test_hung_worker_is_killed_and_typed(self, monkeypatch):
        install_plan(monkeypatch,
                     FaultRule(action="hang", request_ids=("stuck",)))
        with make_executor(cache_responses=False) as executor:
            started = time.monotonic()
            response = executor.submit(
                req(request_id="stuck", seed=9, deadline_ms=500)
            ).result(timeout=60)
            elapsed = time.monotonic() - started
            assert response.error_code == "WORKER_TIMEOUT"
            assert elapsed < 30  # killed, not waited out
            # The pool recovered: the same executor keeps serving.
            again = executor.submit(req(seed=10, request_id="after"))
            assert again.result(timeout=60).verdict == "REALIZED"
            stats = executor.stats()
        assert stats["worker_timeouts"] == 1
        assert stats["breaker"]["failures_total"] >= 1

    def test_hang_timeout_liveness_without_deadline(self, monkeypatch):
        """The configurable liveness bound catches hangs even when the
        request carries no deadline."""
        install_plan(monkeypatch,
                     FaultRule(action="hang", request_ids=("stuck",)))
        with make_executor(cache_responses=False,
                           hang_timeout=0.5) as executor:
            response = executor.submit(
                req(request_id="stuck", seed=11)
            ).result(timeout=60)
            assert response.error_code == "WORKER_TIMEOUT"
            assert executor.stats()["worker_timeouts"] == 1

    def test_hang_timeout_validation(self):
        for bad in (0, -1.5):
            with pytest.raises(ValueError, match="hang_timeout"):
                make_executor(hang_timeout=bad)
        for bad_grace in (-1, "x"):
            with pytest.raises(ValueError, match="hang_grace"):
                make_executor(hang_grace=bad_grace)
        with pytest.raises(ValueError, match="watchdog_interval"):
            make_executor(watchdog_interval=0)


class TestBreakerDegrade:
    def test_open_degrade_probe_close_cycle(self, monkeypatch):
        install_plan(monkeypatch,
                     FaultRule(action="crash", request_ids=("c1",)))
        clock = SteppingClock(start=0.0)
        breaker = CircuitBreaker(failure_threshold=1, cooldown_sec=30.0,
                                 clock=clock)
        with make_executor(cache_responses=False,
                           retry_policy=RetryPolicy(max_attempts=1),
                           breaker=breaker) as executor:
            crashed = executor.submit(req(request_id="c1", seed=12))
            assert crashed.result(timeout=60).error_code == "WORKER_CRASHED"
            assert breaker.state == CircuitBreaker.OPEN
            # While open: degraded in-parent execution, field-identical.
            degraded = executor.submit(req(request_id="d1", seed=13))
            degraded_response = degraded.result(timeout=60)
            assert degraded_response.verdict == "REALIZED"
            assert executor.stats()["degraded_handled"] == 1
            # Cooldown elapses: the next request is the half-open probe,
            # its success closes the breaker.
            clock.now = 60.0
            probe = executor.submit(req(request_id="p1", seed=14))
            assert probe.result(timeout=60).verdict == "REALIZED"
            assert breaker.state == CircuitBreaker.CLOSED
            stats = executor.stats()
        assert stats["breaker"]["state"] == CircuitBreaker.CLOSED
        assert stats["breaker"]["opens"] == 1
        with make_executor(mode="sequential") as sequential:
            expected = sequential.handle(req(request_id="d1", seed=13))
        assert degraded_response.fingerprint() == expected.fingerprint()

    def test_batch_drain_degrades_while_open(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_sec=3600.0)
        breaker.record_failure()  # pre-open
        batch = [req(request_id=f"g{i}", seed=20 + i) for i in range(3)]
        with make_executor(cache_responses=False, breaker=breaker) as executor:
            out = executor.run(list(batch))
            stats = executor.stats()
        assert [r.verdict for r in out] == ["REALIZED"] * 3
        assert stats["degraded_handled"] == 3
        with make_executor(mode="sequential") as sequential:
            expected = sequential.run(list(batch))
        assert [r.fingerprint() for r in out] == \
            [r.fingerprint() for r in expected]


class TestWireFault:
    def test_wire_error_becomes_transport_envelope(self, monkeypatch):
        install_plan(monkeypatch,
                     FaultRule(action="wire_error", request_ids=("w1",)))
        with make_executor(cache_responses=False) as executor:
            out = executor.run([req(request_id="w1", seed=30),
                                req(request_id="w2", seed=31)])
        by_id = {r.request_id: r for r in out}
        assert by_id["w1"].verdict == "ERROR"
        assert "process drain failure" in by_id["w1"].error
        assert by_id["w2"].verdict == "REALIZED"


# ---------------------------------------------------------------------- #
# Socket serve under chaos                                               #
# ---------------------------------------------------------------------- #


def run_loop(coro, timeout=300):
    return asyncio.run(asyncio.wait_for(coro, timeout))


async def _send(writer, text):
    writer.write((text + "\n").encode())
    await writer.drain()


async def _recv(reader, timeout=120):
    line = await asyncio.wait_for(reader.readline(), timeout)
    assert line, "connection closed unexpectedly"
    return json.loads(line.decode())


def jline(request_id, seed, n=16, **extra):
    payload = {"request_id": request_id, "kind": "degree_implicit",
               "scenario": "regular", "n": n, "seed": seed}
    payload.update(extra)
    return json.dumps(payload)


class TestServeChaos:
    def test_hung_worker_two_clients_other_client_unharmed(self, monkeypatch):
        """THE acceptance scenario: client A's hung request is answered
        with a typed WORKER_TIMEOUT within its deadline; client B's
        concurrent requests complete field-identical to a sequential
        drain of the same requests."""
        install_plan(monkeypatch,
                     FaultRule(action="hang", request_ids=("stuck",)))
        executor = make_executor(cache_responses=False)
        b_requests = [("b0", 40), ("b1", 41), ("b2", 42)]
        try:
            # Prime the pool before any socket exists (fork inherits fds).
            assert executor.submit(
                req(request_id="prime", seed=39)
            ).result(timeout=120).verdict == "REALIZED"

            async def scenario():
                server = await SocketServer(executor, port=0,
                                            window=8).start()
                reader_a, writer_a = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                reader_b, writer_b = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                await _send(writer_a, jline("stuck", 99, deadline_ms=700))
                rows_b = []
                for rid, seed in b_requests:
                    await _send(writer_b, jline(rid, seed))
                    rows_b.append(await _recv(reader_b))
                started = time.monotonic()
                row_a = await _recv(reader_a)
                waited = time.monotonic() - started
                stats_line = json.dumps({"request_id": "st", "kind": "stats"})
                await _send(writer_b, stats_line)
                stats = await _recv(reader_b)
                for w in (writer_a, writer_b):
                    w.close()
                server.drain()
                await server.wait_done()
                return row_a, rows_b, stats, waited

            row_a, rows_b, stats, waited = run_loop(scenario())
        finally:
            faults.clear()
            executor.close()
        assert row_a["error_code"] == "WORKER_TIMEOUT"
        assert waited < 30
        assert [r["request_id"] for r in rows_b] == ["b0", "b1", "b2"]
        assert all(r["verdict"] == "REALIZED" for r in rows_b)
        assert stats["executor"]["worker_timeouts"] == 1
        assert "breaker" in stats["executor"]
        assert stats["server"]["emit_timeout"] == 60.0
        # Field-identity of the surviving client against a sequential
        # drain of the same requests.
        with make_executor(mode="sequential", cache_responses=False) as seq:
            expected = seq.run([req(request_id=rid, seed=seed)
                                for rid, seed in b_requests])
        volatile = ("request_id", "cached", "elapsed_sec")
        got = [{k: v for k, v in r.items() if k not in volatile}
               for r in rows_b]
        want = [{k: v for k, v in r.to_dict().items() if k not in volatile}
                for r in expected]
        assert got == want

    def test_writer_error_fault_marks_connection_broken(self, monkeypatch):
        """A writer_error fault simulates the client dying right before
        its response is written: the server keeps draining (and counting)
        instead of wedging on the dead socket."""
        install_plan(monkeypatch,
                     FaultRule(action="writer_error", request_ids=("dead",)))
        executor = make_executor(mode="sequential")
        try:
            async def scenario():
                server = await SocketServer(executor, port=0,
                                            window=4).start()
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                await _send(writer, jline("dead", 50))
                await _send(writer, jline("next", 51))
                # "dead" is swallowed by the injected write failure and
                # broken-ness is sticky, so nothing ever arrives — wait
                # for the server-side counters instead of a response
                # before draining.
                for _ in range(3000):
                    if server.handled >= 2:
                        break
                    await asyncio.sleep(0.01)
                writer.close()
                server.drain()
                handled, errors = await server.wait_done()
                return handled, errors

            handled, errors = run_loop(scenario())
        finally:
            faults.clear()
            executor.close()
        assert handled == 2  # both responses consumed server-side
        assert errors == 0

    def test_timeout_knob_validation(self):
        executor = make_executor(mode="sequential")
        try:
            for bad in (0, -1, True, float("inf"), float("nan")):
                with pytest.raises(ServiceError, match="emit_timeout"):
                    SocketServer(executor, emit_timeout=bad)
                with pytest.raises(ServiceError, match="close_timeout"):
                    SocketServer(executor, close_timeout=bad)
            server = SocketServer(executor, emit_timeout=2.5, close_timeout=1.0)
            assert server.emit_timeout == 2.5 and server.close_timeout == 1.0
            assert validate_timeout("emit_timeout", 1) == 1.0
        finally:
            executor.close()

    def test_emit_bound_derives_from_deadline_horizon(self):
        executor = make_executor(mode="sequential")
        try:
            server = SocketServer(executor, emit_timeout=60.0)

            class _Conn:
                deadline_horizon = None
                bare = False

            conn = _Conn()
            assert server._emit_bound(conn) == 60.0  # no deadlines seen
            conn.deadline_horizon = time.monotonic() + 2.0
            bound = server._emit_bound(conn)
            assert 0.5 <= bound <= 3.5  # tightened to horizon + 1s
            conn.bare = True  # one bare request disables the tightening
            assert server._emit_bound(conn) == 60.0
        finally:
            executor.close()


# ---------------------------------------------------------------------- #
# Sharded teardown escalation                                            #
# ---------------------------------------------------------------------- #


class _FakeProc:
    """A worker that ignores the first ``survive`` kill attempts."""

    def __init__(self, survive=0):
        self.survive = survive
        self.terminated = False
        self.killed = False

    def join(self, timeout=None):
        pass

    def is_alive(self):
        if self.survive > 0:
            self.survive -= 1
            return True
        return False

    def terminate(self):
        self.terminated = True

    def kill(self):
        self.killed = True


class TestShardedTeardown:
    def test_escalation_counts_terminate_and_kill(self):
        cooperative = _FakeProc(survive=0)
        needs_term = _FakeProc(survive=1)
        needs_kill = _FakeProc(survive=2)
        escalations = {"terminated": 0, "killed": 0}
        _shutdown_workers([], [cooperative, needs_term, needs_kill],
                          escalations)
        assert escalations == {"terminated": 2, "killed": 1}
        assert not cooperative.terminated and not cooperative.killed
        assert needs_term.terminated and not needs_term.killed
        assert needs_kill.terminated and needs_kill.killed

    def test_engine_surfaces_worker_stats(self):
        net = Network(8, NCCConfig(seed=0, engine="sharded", engine_shards=2))
        try:
            net.idle_round()  # spawn the workers
            stats = net.engine.worker_stats()
            assert stats == {"shards": 2, "terminated": 0, "killed": 0}
        finally:
            net.close()
