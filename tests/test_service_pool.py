"""The pool-reset correctness gate and the NetworkPool contract.

A network leased from the pool must be indistinguishable from a freshly
constructed one: a workload run on a ``reset()`` network is bit-identical
— rounds, messages, RoundStats, knowledge sets, realization result — to
the same workload on a fresh ``Network`` with the same parameters, for
both engines.  The pool layers lease/release bookkeeping on top; this
file proves both.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core.degree_realization import realize_degree_sequence
from repro.core.tree_realization import realize_tree
from repro.ncc.config import EnforcementMode, NCCConfig, Variant
from repro.ncc.message import msg
from repro.ncc.network import Network
from repro.primitives.protocol import run_protocol
from repro.primitives.sorting import distributed_sort
from repro.service.pool import NetworkPool
from repro.workloads import random_graphic_sequence, random_tree_sequence

#: "sharded" runs with the default shard count (2): the reset gate then
#: also proves the engine's replica-resync path (reset must rebuild the
#: worker-process state bit-identically, or pooled sharded leases drift).
ENGINES = ("fast", "reference", "sharded")


def run_degree(net: Network):
    seq = random_graphic_sequence(net.n, 0.3, seed=11)
    result = realize_degree_sequence(net, dict(zip(net.node_ids, seq)))
    return (
        result.realized,
        result.edges,
        result.realized_degrees,
        result.phases,
        result.stats,
    )


def run_tree(net: Network):
    seq = random_tree_sequence(net.n, seed=4)
    result = realize_tree(net, dict(zip(net.node_ids, seq)))
    return (result.realized, result.edges, result.diameter, result.stats)


def run_sorting(net: Network):
    rng = random.Random(7)
    table = {v: rng.randrange(net.n) for v in net.node_ids}
    _, order = run_protocol(net, distributed_sort(net, lambda v: table[v]))
    return (tuple(order), net.stats())


WORKLOADS = {"degree": run_degree, "tree": run_tree, "sorting": run_sorting}


def observable_state(net: Network):
    """Everything a protocol can see: knowledge, memory keys, stats."""
    return (
        net.stats(),
        {v: frozenset(s) for v, s in net.known.items()},
        net.pending_deferred(),
    )


def dirty(net: Network) -> None:
    """Leave behind every category of residue reset() must clear."""
    run_tree(net)  # a full prior workload (memory, knowledge, meters)
    ids = list(net.node_ids)
    net.grant_knowledge(ids[0], ids[-1])
    net.tracers.append(lambda r, inboxes: None)
    net.charge(17, reason="dirty")
    with net.phase("dirty-phase"):
        net.idle_round()
    net.mem[ids[0]]["residue"] = {"junk": 1}


class TestResetDifferentialGate:
    """reset() ≡ fresh construction, bit for bit, on both engines."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("n,seed", [(16, 0), (24, 5)])
    def test_workload_after_reset_bit_identical(self, engine, workload, n, seed):
        config = NCCConfig(seed=seed, engine=engine)
        fresh = Network(n, config)
        fresh_outcome = WORKLOADS[workload](fresh)

        reused = Network(n, config)
        dirty(reused)
        assert reused.reset() is reused
        assert observable_state(reused) == observable_state(Network(n, config))
        reused_outcome = WORKLOADS[workload](reused)

        assert reused_outcome == fresh_outcome
        assert observable_state(reused) == observable_state(fresh)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_ncc1_reset_restores_complete_knowledge(self, engine):
        config = NCCConfig(seed=2, engine=engine, variant=Variant.NCC1, random_ids=False)
        net = Network(18, config)
        pristine = {v: frozenset(s) for v, s in net.known.items()}
        run_sorting(net)
        net.reset()
        assert {v: frozenset(s) for v, s in net.known.items()} == pristine
        assert run_sorting(net) == run_sorting(Network(18, config))

    @pytest.mark.parametrize("engine", ENGINES)
    def test_reset_clears_defer_backlog_and_spill_state(self, engine):
        config = NCCConfig(
            seed=3,
            engine=engine,
            variant=Variant.NCC1,
            random_ids=False,
            enforcement=EnforcementMode.DEFER,
        )
        net = Network(32, config)
        ids = list(net.node_ids)
        hub = ids[0]
        overdrive = [(s, hub, msg("flood")) for s in ids[1 : net.recv_cap + 6]]
        net.step(overdrive)
        assert net.pending_deferred() > 0
        net.reset()
        assert net.pending_deferred() == 0
        # The next overdriven round behaves exactly like the first on a
        # fresh network (no stale spill-pending bookkeeping).
        fresh = Network(32, config)
        inboxes_reset = net.step(list(overdrive))
        inboxes_fresh = fresh.step(list(overdrive))
        assert {
            dst: [(m.kind, m.src) for m in box] for dst, box in inboxes_reset.items()
        } == {
            dst: [(m.kind, m.src) for m in box] for dst, box in inboxes_fresh.items()
        }
        assert net.stats() == fresh.stats()

    def test_reset_preserves_ids_and_caps(self):
        net = Network(20, NCCConfig(seed=9))
        ids_before = tuple(net.node_ids)
        caps = (net.send_cap, net.recv_cap, net.word_bits)
        run_degree(net)
        net.reset()
        assert tuple(net.node_ids) == ids_before
        assert (net.send_cap, net.recv_cap, net.word_bits) == caps

    def test_reset_restores_custom_knowledge(self):
        ids_probe = Network(6, NCCConfig(seed=1)).node_ids
        custom = {v: {ids_probe[0]} for v in ids_probe if v != ids_probe[0]}
        net = Network(6, NCCConfig(seed=1), knowledge=custom)
        pristine = {v: frozenset(s) for v, s in net.known.items()}
        net.grant_knowledge(ids_probe[0], ids_probe[1])
        net.reset()
        assert {v: frozenset(s) for v, s in net.known.items()} == pristine

    @pytest.mark.parametrize("engine", ENGINES)
    def test_rng_reseeded(self, engine):
        config = NCCConfig(seed=5, engine=engine)
        net = Network(8, config)
        first = [net.rng.random() for _ in range(4)]
        net.reset()
        assert [net.rng.random() for _ in range(4)] == first


class TestNetworkPool:
    def test_lease_reuses_released_instance(self):
        pool = NetworkPool()
        config = NCCConfig(seed=1)
        first = pool.lease(16, config)
        run_degree(first)
        pool.release(first)
        second = pool.lease(16, config)
        assert second is first
        assert second.rounds == 0 and second.messages_delivered == 0
        stats = pool.stats()
        assert stats["pool_hits"] == 1 and stats["constructions"] == 1

    def test_keys_do_not_mix(self):
        pool = NetworkPool()
        a = pool.lease(16, NCCConfig(seed=1))
        pool.release(a)
        assert pool.lease(16, NCCConfig(seed=2)) is not a
        assert pool.lease(17, NCCConfig(seed=1)) is not a
        assert pool.lease(16, NCCConfig(seed=1, engine="reference")) is not a
        # The original key still hits.
        assert pool.lease(16, NCCConfig(seed=1)) is a

    def test_total_idle_bound_across_keys(self):
        pool = NetworkPool(max_idle_per_key=2, max_total_idle=3)
        nets = []
        for seed in range(4):  # 4 distinct keys, one release each
            net = pool.lease(8, NCCConfig(seed=seed))
            nets.append(net)
        for net in nets:
            pool.release(net)
        assert pool.idle_count() == 3  # oldest key's network evicted
        assert pool.stats()["discards"] == 1
        # The evicted (oldest) key re-constructs; the newest still hits.
        assert pool.lease(8, NCCConfig(seed=3)) is nets[3]
        assert pool.lease(8, NCCConfig(seed=0)) is not nets[0]

    def test_max_idle_bound(self):
        pool = NetworkPool(max_idle_per_key=1)
        config = NCCConfig(seed=3)
        a, b = pool.lease(8, config), pool.lease(8, config)
        pool.release(a)
        pool.release(b)
        assert pool.idle_count() == 1
        assert pool.stats()["discards"] == 1

    def test_context_manager_releases_on_error(self):
        pool = NetworkPool()
        config = NCCConfig(seed=4)
        with pytest.raises(RuntimeError):
            with pool.network(8, config) as net:
                net.charge(3)
                raise RuntimeError("workload blew up")
        assert pool.idle_count() == 1
        leased = pool.lease(8, config)
        assert leased is net and leased.rounds == 0  # reset on release

    def test_custom_knowledge_networks_are_not_pooled(self):
        # (n, config) cannot see a knowledge override, so pooling such a
        # network would hand the wrong initial state to a later lease.
        pool = NetworkPool()
        config = NCCConfig(seed=5)
        probe_ids = Network(6, config).node_ids
        custom = {v: {probe_ids[0]} for v in probe_ids if v != probe_ids[0]}
        pool.release(Network(6, config, knowledge=custom))
        assert pool.idle_count() == 0
        assert pool.stats()["discards"] == 1
        fresh = pool.lease(6, config)
        assert not fresh.custom_knowledge

    def test_pooled_run_equals_fresh_run(self):
        pool = NetworkPool()
        config = NCCConfig(seed=6)
        with pool.network(20, config) as net:
            run_tree(net)  # dirty the instance through a first lease
        with pool.network(20, config) as net:
            pooled = run_degree(net)
        assert pooled == run_degree(Network(20, config))

    def test_concurrent_lease_return_contention(self):
        """Hammer lease/release from many threads across several keys.

        Invariants under contention: every leased network is pristine
        and exclusively held (no double-lease of one instance), idle
        bounds hold throughout, and the counters reconcile exactly once
        the storm ends.
        """
        pool = NetworkPool(max_idle_per_key=2, max_total_idle=5)
        configs = [NCCConfig(seed=s) for s in range(3)]
        sizes = (8, 12)
        in_use: set = set()
        in_use_lock = threading.Lock()
        errors: list = []
        rounds_per_thread = 30

        def worker(tid: int) -> None:
            try:
                for i in range(rounds_per_thread):
                    config = configs[(tid + i) % len(configs)]
                    n = sizes[i % len(sizes)]
                    net = pool.lease(n, config)
                    with in_use_lock:
                        assert id(net) not in in_use, "double-leased network"
                        in_use.add(id(net))
                    assert net.rounds == 0 and net.messages_delivered == 0
                    assert not net.mem[net.node_ids[0]]
                    net.idle_round()  # dirty it so reset() has work
                    net.mem[net.node_ids[0]]["junk"] = tid
                    assert pool.idle_count() <= 5
                    with in_use_lock:
                        in_use.discard(id(net))
                    pool.release(net)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = pool.stats()
        expected = 8 * rounds_per_thread
        assert stats["leases"] == expected
        assert stats["releases"] == expected
        assert stats["constructions"] + stats["pool_hits"] == stats["leases"]
        assert stats["idle"] <= 5
        for stack in pool._idle.values():
            assert len(stack) <= 2
        # Everything parked is pristine.
        for stack in pool._idle.values():
            for net in stack:
                assert net.rounds == 0
                assert not net.mem[net.node_ids[0]]

    def test_thread_safety_smoke(self):
        pool = NetworkPool(max_idle_per_key=8)
        config = NCCConfig(seed=7)
        errors = []

        def worker():
            try:
                for _ in range(25):
                    with pool.network(8, config) as net:
                        assert net.rounds == 0
                        net.idle_round()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = pool.stats()
        assert stats["leases"] == 150
        assert stats["releases"] == 150
        assert stats["constructions"] + stats["pool_hits"] == stats["leases"]
