"""Property-based differential tests: every engine ≡ reference engine.

The fast and sharded engines' contract (see :mod:`repro.ncc.engine` and
:mod:`repro.ncc.sharded`) is *bit-identical observable behaviour*: same
realizations, same knowledge, same metrics, same raised errors.  These
tests drive full protocols — degree realization on seeded
Erdős–Gallai-feasible sequences, tree realization on random
Prüfer-derived sequences — under all engines (the multiprocess sharded
engine at two shard counts) and assert the outcomes are equal, and
additionally that the distributed verdicts agree with the sequential
ground truth (`sequential/havel_hakimi.py`, `sequential/trees.py`).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.degree_realization import realize_degree_sequence
from repro.core.tree_realization import realize_tree
from repro.ncc.config import NCCConfig, Variant
from repro.ncc.network import Network
from repro.primitives.bbst import build_bbst
from repro.primitives.protocol import run_protocol
from repro.primitives.sorting import distributed_sort
from repro.sequential import havel_hakimi, is_graphic, is_tree_realizable
from repro.validation import check_degree_match, check_simple, check_tree
from repro.workloads import random_graphic_sequence

#: Engine configurations under differential test; every label must be
#: bit-identical to "reference".  The sharded engine runs at two shard
#: counts (its acceptance gate: the full suite holds for >= 2 counts).
ENGINE_CONFIGS = {
    "fast": {"engine": "fast"},
    "reference": {"engine": "reference"},
    "sharded2": {"engine": "sharded", "engine_shards": 2},
    "sharded3": {"engine": "sharded", "engine_shards": 3},
}
ENGINES = tuple(ENGINE_CONFIGS)


def nets_for(n: int, seed: int, **overrides):
    """One identically-seeded network per engine configuration."""
    return {
        label: Network(n, NCCConfig(seed=seed, **config, **overrides))
        for label, config in ENGINE_CONFIGS.items()
    }


def assert_all_match_reference(outcomes) -> None:
    for label, outcome in outcomes.items():
        assert outcome == outcomes["reference"], f"engine {label} diverged"


@st.composite
def graphic_sequences(draw):
    """Seeded random Erdős–Gallai-feasible degree sequences."""
    n = draw(st.integers(4, 18))
    p = draw(st.sampled_from([0.15, 0.3, 0.5, 0.8]))
    seed = draw(st.integers(0, 10_000))
    return random_graphic_sequence(n, p, seed=seed)


@st.composite
def tree_sequences(draw):
    """Random tree degree sequences via Prüfer multiplicities."""
    n = draw(st.integers(2, 12))
    prufer = draw(st.lists(st.integers(0, n - 1), min_size=n - 2, max_size=n - 2))
    degrees = [1] * n
    for x in prufer:
        degrees[x] += 1
    return degrees


class TestDegreeRealizationDifferential:
    @settings(max_examples=20, deadline=None)
    @given(seq=graphic_sequences(), seed=st.integers(0, 1_000))
    def test_fast_matches_reference_and_ground_truth(self, seq, seed):
        assert is_graphic(seq)  # generator guarantees EG feasibility
        outcomes = {}
        for engine, net in nets_for(len(seq), seed).items():
            demands = dict(zip(net.node_ids, seq))
            result = realize_degree_sequence(net, demands)
            outcomes[engine] = (
                result.realized,
                result.announced_unrealizable_by,
                result.edges,
                result.realized_degrees,
                result.phases,
                result.stats,
            )
            # Distributed result must match the sequential oracle.
            assert result.realized
            assert check_simple(result.edges)
            assert check_degree_match(result.edges, demands, net.node_ids)
            net.close()
        assert_all_match_reference(outcomes)
        # Sequential Havel–Hakimi realizes the same sequence.
        assert havel_hakimi(seq) is not None

    @settings(max_examples=10, deadline=None)
    @given(seq=graphic_sequences(), bump=st.integers(1, 3), seed=st.integers(0, 500))
    def test_unrealizable_verdicts_identical(self, seq, bump, seed):
        # Push the largest entries to n-1 to (usually) break graphicality;
        # whatever the verdict, both engines and the oracle must agree.
        seq = list(seq)
        n = len(seq)
        for i in range(min(bump, n)):
            seq[i] = n - 1
        outcomes = {}
        for engine, net in nets_for(n, seed).items():
            demands = dict(zip(net.node_ids, seq))
            result = realize_degree_sequence(net, demands)
            outcomes[engine] = (
                result.realized,
                result.announced_unrealizable_by,
                result.edges,
                result.stats,
            )
            assert result.realized == is_graphic(seq)
            assert result.realized == (havel_hakimi(seq) is not None)
            net.close()
        assert_all_match_reference(outcomes)


class TestTreeRealizationDifferential:
    @settings(max_examples=20, deadline=None)
    @given(
        seq=tree_sequences(),
        variant=st.sampled_from(["max_diameter", "min_diameter"]),
        seed=st.integers(0, 1_000),
    )
    def test_fast_matches_reference_and_ground_truth(self, seq, variant, seed):
        assert is_tree_realizable(seq)  # Prüfer construction guarantees it
        outcomes = {}
        for engine, net in nets_for(len(seq), seed).items():
            demands = dict(zip(net.node_ids, seq))
            result = realize_tree(net, demands, variant=variant)
            outcomes[engine] = (
                result.realized,
                result.edges,
                result.realized_degrees,
                result.diameter,
                result.stats,
            )
            assert result.realized
            if len(seq) > 1:
                assert check_tree(result.edges, net.node_ids)
                assert check_degree_match(result.edges, demands, net.node_ids)
            net.close()
        assert_all_match_reference(outcomes)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1_000), n=st.integers(3, 12))
    def test_infeasible_tree_sequences_identical(self, seed, n):
        rng = random.Random(seed)
        seq = [rng.randrange(0, n) for _ in range(n)]
        if is_tree_realizable(seq):
            seq[0] = 0  # break Harary's condition (a zero degree, n > 1)
        outcomes = {}
        for engine, net in nets_for(n, seed).items():
            demands = dict(zip(net.node_ids, seq))
            result = realize_tree(net, demands)
            outcomes[engine] = (result.realized, result.stats)
            assert not result.realized
            net.close()
        assert_all_match_reference(outcomes)


class TestMetricsIdentity:
    """All engines' metrics must be bit-identical on core primitives."""

    @pytest.mark.parametrize("n,seed", [(16, 1), (32, 2), (64, 3)])
    def test_sorting_metrics_identical(self, n, seed):
        outcomes = {}
        for engine, net in nets_for(n, seed).items():
            rng = random.Random(seed)
            table = {v: rng.randrange(n) for v in net.node_ids}
            _, order = run_protocol(net, distributed_sort(net, lambda v: table[v]))
            outcomes[engine] = (net.stats(), order)
            net.close()
        assert_all_match_reference(outcomes)

    @pytest.mark.parametrize("n,seed", [(16, 4), (48, 5)])
    def test_bbst_metrics_identical(self, n, seed):
        stats = {}
        for engine, net in nets_for(n, seed).items():
            run_protocol(net, build_bbst(net))
            stats[engine] = net.stats()
            net.close()
        assert_all_match_reference(stats)

    def test_ncc1_variant_identical(self):
        stats = {}
        for engine, net in nets_for(
            24, 9, variant=Variant.NCC1, random_ids=False
        ).items():
            rng = random.Random(9)
            table = {v: rng.randrange(24) for v in net.node_ids}
            run_protocol(net, distributed_sort(net, lambda v: table[v]))
            stats[engine] = net.stats()
            net.close()
        assert_all_match_reference(stats)

    def test_knowledge_sets_identical_after_run(self):
        known = {}
        for engine, net in nets_for(20, 13).items():
            rng = random.Random(13)
            table = {v: rng.randrange(20) for v in net.node_ids}
            run_protocol(net, distributed_sort(net, lambda v: table[v]))
            known[engine] = {v: frozenset(s) for v, s in net.known.items()}
            net.close()
        assert_all_match_reference(known)
