"""Determinism regression: same (seed, n, variant) ⇒ byte-identical runs.

Charged-fidelity accounting (and every EXPERIMENTS.md number) relies on
runs being exactly reproducible — no dict-ordering or set-iteration
nondeterminism may leak into ``RoundStats``.  Each case runs the same
protocol twice on fresh networks and asserts the stats snapshots are
byte-identical (via repr) and the realizations equal, for both engines
and both variants.
"""

from __future__ import annotations

import random

import pytest

from repro.core.degree_realization import realize_degree_sequence
from repro.core.tree_realization import realize_tree
from repro.ncc.config import NCCConfig, Variant
from repro.ncc.message import msg
from repro.ncc.network import Network, RoundPlan
from repro.ncc.wire import ColumnarRoundBatch
from repro.primitives.protocol import run_protocol
from repro.primitives.sorting import distributed_sort
from repro.workloads import random_graphic_sequence, random_tree_sequence

ENGINE_CONFIGS = {
    "fast": {"engine": "fast"},
    "reference": {"engine": "reference"},
    "sharded2": {"engine": "sharded", "engine_shards": 2},
    "sharded3": {"engine": "sharded", "engine_shards": 3},
}
ENGINES = tuple(ENGINE_CONFIGS)


def fresh_net(n: int, seed: int, variant: Variant, engine: str) -> Network:
    return Network(
        n,
        NCCConfig(
            seed=seed,
            variant=variant,
            random_ids=variant is Variant.NCC0,
            **ENGINE_CONFIGS[engine],
        ),
    )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("variant", [Variant.NCC0, Variant.NCC1])
@pytest.mark.parametrize("n,seed", [(12, 0), (24, 7), (33, 42)])
def test_sorting_stats_byte_identical(engine, variant, n, seed):
    snapshots = []
    for _ in range(2):
        net = fresh_net(n, seed, variant, engine)
        rng = random.Random(seed)
        table = {v: rng.randrange(n) for v in net.node_ids}
        _, order = run_protocol(net, distributed_sort(net, lambda v: table[v]))
        snapshots.append((order, net.stats()))
        net.close()
    assert snapshots[0][0] == snapshots[1][0]
    assert snapshots[0][1] == snapshots[1][1]
    assert repr(snapshots[0][1]).encode() == repr(snapshots[1][1]).encode()


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("n,seed", [(14, 3), (20, 11)])
def test_degree_realization_byte_identical(engine, n, seed):
    seq = random_graphic_sequence(n, 0.4, seed=seed)
    snapshots = []
    for _ in range(2):
        net = fresh_net(n, seed, Variant.NCC0, engine)
        result = realize_degree_sequence(net, dict(zip(net.node_ids, seq)))
        snapshots.append(result)
        net.close()
    assert snapshots[0] == snapshots[1]
    assert repr(snapshots[0].stats).encode() == repr(snapshots[1].stats).encode()
    assert snapshots[0].edges == snapshots[1].edges


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("n,seed", [(10, 5), (18, 23)])
def test_tree_realization_byte_identical(engine, n, seed):
    seq = random_tree_sequence(n, seed=seed)
    snapshots = []
    for _ in range(2):
        net = fresh_net(n, seed, Variant.NCC0, engine)
        result = realize_tree(net, dict(zip(net.node_ids, seq)))
        snapshots.append(result)
        net.close()
    assert snapshots[0] == snapshots[1]
    assert repr(snapshots[0].stats).encode() == repr(snapshots[1].stats).encode()


@pytest.mark.parametrize("n,seed", [(16, 2), (28, 9)])
def test_engines_agree_with_each_other_deterministically(n, seed):
    """Two engines, two runs each: all four stats snapshots identical."""
    reprs = set()
    for engine in ENGINES:
        for _ in range(2):
            net = fresh_net(n, seed, Variant.NCC0, engine)
            rng = random.Random(seed)
            table = {v: rng.randrange(n) for v in net.node_ids}
            run_protocol(net, distributed_sort(net, lambda v: table[v]))
            reprs.add(repr(net.stats()))
            net.close()
    assert len(reprs) == 1


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("n,seed", [(16, 4), (24, 13)])
def test_columnar_staged_replay_byte_identical(engine, n, seed):
    """The same columnar-staged random script, run twice on fresh
    networks, produces byte-identical stats and equal inboxes (the
    engines' native representation must not leak nondeterminism)."""
    snapshots = []
    for _ in range(2):
        net = fresh_net(n, seed, Variant.NCC1, engine)
        rng = random.Random(seed)
        ids = list(net.node_ids)
        log = []
        for r in range(4):
            sends = []
            for _ in range(rng.randrange(5, 20)):
                src, dst = rng.sample(ids, 2)
                sends.append(
                    (src, dst, msg("d", ids=(rng.choice(ids),),
                                   data=(rng.randrange(0, 1 << 60),)))
                )
            plan = RoundPlan.from_batch(
                ColumnarRoundBatch.from_sends(sends, keep_messages=False)
            )
            inboxes = net.deliver(plan)
            log.append(sorted((d, list(b)) for d, b in inboxes.items()))
        snapshots.append((log, repr(net.stats())))
        net.close()
    assert snapshots[0] == snapshots[1]
