"""W.h.p. behaviour across seeds, and trace-level locality properties.

The paper's algorithms are Las Vegas: correct on every run, with round
bounds holding with high probability.  These tests sweep seeds and check
(a) correctness never varies, (b) the round-count tail stays within a
constant of the median, and (c) message *locality* invariants hold at the
trace level (e.g. structure 𝓛 construction only ever sends between nodes
at power-of-two path distances).
"""

import statistics

from repro.core.degree_realization import realize_degree_sequence
from repro.ncc.tracing import RoundTrace
from repro.primitives.bbst import build_bbst
from repro.primitives.protocol import run_protocol
from repro.primitives.sorting import distributed_sort
from repro.validation import check_degree_match
from repro.workloads import random_graphic_sequence, regular_sequence

from tests.conftest import make_net


class TestSeedSweeps:
    def test_realization_correct_for_every_seed(self):
        seq = random_graphic_sequence(16, 0.4, seed=1)
        for seed in range(8):
            net = make_net(16, seed=seed)
            demands = dict(zip(net.node_ids, seq))
            result = realize_degree_sequence(net, demands)
            assert result.realized
            assert check_degree_match(result.edges, demands, net.node_ids)

    def test_round_tail_bounded_across_seeds(self):
        """Las Vegas tail: max rounds within 1.5x of the median."""
        rounds = []
        seq = regular_sequence(16, 4)
        for seed in range(10):
            net = make_net(16, seed=seed)
            result = realize_degree_sequence(net, dict(zip(net.node_ids, seq)))
            rounds.append(result.stats.rounds)
        median = statistics.median(rounds)
        assert max(rounds) <= 1.5 * median, rounds

    def test_sort_rounds_stable_across_seeds(self):
        rounds = []
        for seed in range(8):
            net = make_net(32, seed=seed)
            values = {v: (i * 7) % 11 for i, v in enumerate(net.node_ids)}
            run_protocol(net, distributed_sort(net, lambda v: values[v]))
            rounds.append(net.rounds)
        assert max(rounds) <= 1.5 * statistics.median(rounds), rounds


class TestTraceLocality:
    def test_bbst_messages_respect_power_of_two_distances(self):
        """During 𝓛 + controlled BFS, every message travels between nodes
        whose path distance is a power of two (or adjacent): the
        construction never needs long-range addressing."""
        net = make_net(32, seed=3)
        position = {v: i for i, v in enumerate(net.node_ids)}
        trace = RoundTrace(net)
        run_protocol(net, build_bbst(net))
        trace.detach()
        allowed = {1 << i for i in range(8)}
        for delivery in trace.deliveries:
            distance = abs(position[delivery.src] - position[delivery.dst])
            assert distance in allowed, (delivery, distance)

    def test_bbst_message_volume_linearithmic(self):
        """Total messages for the Theorem-1 build are O(n log n)."""
        import math

        volumes = []
        for n in (32, 128):
            net = make_net(n, seed=4)
            run_protocol(net, build_bbst(net))
            volumes.append(net.messages_delivered / (n * math.log2(n)))
        assert volumes[1] <= volumes[0] * 1.5

    def test_trace_rounds_match_network_rounds(self):
        net = make_net(16, seed=5)
        trace = RoundTrace(net)
        run_protocol(net, build_bbst(net))
        assert trace.rounds_used() <= net.rounds
        assert len(trace) == net.messages_delivered
