"""Tests for the distributed mergesort (Algorithm 2, Theorem 3)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.primitives.path_ops import path_members_from
from repro.primitives.protocol import ns_state, run_protocol
from repro.primitives.sorting import Run, distributed_sort

from tests.conftest import make_net


def sort_and_check(n, values, seed=0, fidelity="full"):
    net = make_net(n, seed=seed)
    ids = list(net.node_ids)
    table = dict(zip(ids, values))
    ns, order = run_protocol(
        net, distributed_sort(net, lambda v: table[v], fidelity=fidelity)
    )
    expect = sorted(ids, key=lambda v: (table[v], v))
    assert order == expect
    # The path pointers must agree with the returned order.
    assert path_members_from(net, ns, order[0]) == order
    for i, v in enumerate(order):
        state = ns_state(net, v, ns)
        assert state["pred"] == (order[i - 1] if i > 0 else None)
        assert state["succ"] == (order[i + 1] if i < n - 1 else None)
    return net


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 8, 13, 21, 40])
    def test_random_values(self, n):
        rng = random.Random(n)
        sort_and_check(n, [rng.randrange(100) for _ in range(n)], seed=n)

    def test_already_sorted(self):
        sort_and_check(16, list(range(16)))

    def test_reverse_sorted(self):
        sort_and_check(16, list(range(16, 0, -1)))

    def test_all_equal_ties_break_by_id(self):
        net = sort_and_check(20, [7] * 20)

    def test_two_distinct_values(self):
        sort_and_check(24, [1 if i % 3 else 0 for i in range(24)])

    def test_negative_values(self):
        sort_and_check(10, [5, -3, 0, -3, 12, -100, 7, 7, -1, 2])

    @settings(max_examples=15, deadline=None)
    @given(values=st.lists(st.integers(-1000, 1000), min_size=1, max_size=24))
    def test_property_random_lists(self, values):
        sort_and_check(len(values), values, seed=len(values))


class TestSubsetSort:
    def test_sorts_a_subpath(self):
        net = make_net(20, seed=3)
        ids = list(net.node_ids)
        sub = ids[4:12]
        rng = random.Random(9)
        table = {v: rng.randrange(50) for v in sub}

        def proto():
            # Undirectify first so both directions are known, then carve
            # the sub-path pointers (as a sorted path provides in Alg 6).
            from repro.primitives.path_ops import build_undirected_path

            yield from build_undirected_path(net, "base")
            for i, v in enumerate(sub):
                state = ns_state(net, v, "carve")
                state["pred"] = sub[i - 1] if i > 0 else None
                state["succ"] = sub[i + 1] if i < len(sub) - 1 else None
            ns, order = yield from distributed_sort(
                net,
                lambda v: table[v],
                members=sub,
                path_ns="carve",
                head=sub[0],
            )
            return order

        order = run_protocol(net, proto())
        assert order == sorted(sub, key=lambda v: (table[v], v))


class TestChargedFidelity:
    def test_same_output_as_full(self):
        rng = random.Random(4)
        values = [rng.randrange(30) for _ in range(24)]
        net_full = make_net(24, seed=5)
        net_charged = make_net(24, seed=5)
        ids = list(net_full.node_ids)
        table = dict(zip(ids, values))
        _, order_full = run_protocol(
            net_full, distributed_sort(net_full, lambda v: table[v], fidelity="full")
        )
        _, order_charged = run_protocol(
            net_charged,
            distributed_sort(net_charged, lambda v: table[v], fidelity="charged"),
        )
        assert order_full == order_charged

    def test_charged_rounds_upper_bound_full(self):
        """The charged cost must dominate the measured full cost."""
        for n in (16, 64):
            rng = random.Random(n)
            values = [rng.randrange(n) for _ in range(n)]
            net_full = make_net(n, seed=6)
            table = dict(zip(net_full.node_ids, values))
            run_protocol(
                net_full, distributed_sort(net_full, lambda v: table[v])
            )
            net_charged = make_net(n, seed=6)
            table2 = dict(zip(net_charged.node_ids, values))
            run_protocol(
                net_charged,
                distributed_sort(net_charged, lambda v: table2[v], fidelity="charged"),
            )
            assert net_charged.charged_rounds >= net_full.simulated_rounds

    def test_charged_grants_path_knowledge(self):
        net = make_net(12, seed=7)
        table = {v: i % 3 for i, v in enumerate(net.node_ids)}
        ns, order = run_protocol(
            net, distributed_sort(net, lambda v: table[v], fidelity="charged")
        )
        for a, b in zip(order, order[1:]):
            assert net.knows(a, b) and net.knows(b, a)

    def test_unknown_fidelity_rejected(self):
        net = make_net(4)
        with pytest.raises(ValueError):
            run_protocol(net, distributed_sort(net, lambda v: 0, fidelity="bogus"))


class TestComplexity:
    def test_rounds_polylog_shape(self):
        """Theorem 3: rounds / log^3(n) stays bounded as n grows."""
        ratios = []
        for n in (16, 64, 256):
            net = make_net(n, seed=8)
            rng = random.Random(n)
            table = {v: rng.randrange(n) for v in net.node_ids}
            run_protocol(net, distributed_sort(net, lambda v: table[v]))
            ratios.append(net.rounds / math.log2(n) ** 3)
        assert ratios[-1] <= ratios[0] * 1.35

    def test_caps_never_violated(self):
        """Strict enforcement active during the entire sort (implicit)."""
        net = make_net(48, seed=9)
        rng = random.Random(11)
        table = {v: rng.randrange(10) for v in net.node_ids}
        run_protocol(net, distributed_sort(net, lambda v: table[v]))
        # reaching here without RecvCapExceeded/SendCapExceeded is the test
        assert net.max_round_load <= net.recv_cap


class TestRunHandles:
    def test_run_constructors(self):
        assert Run.empty().length == 0
        single = Run.singleton(7)
        assert (single.head, single.tail, single.length) == (7, 7, 1)
