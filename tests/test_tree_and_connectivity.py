"""Tests for tree realizations (Thms 14/16) and connectivity (Thms 17/18)."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.connectivity import (
    connectivity_lower_bound,
    realize_connectivity_ncc0,
    realize_connectivity_ncc1,
)
from repro.core.tree_realization import realize_tree
from repro.ncc.errors import ProtocolError
from repro.sequential import is_tree_realizable, min_tree_diameter_bruteforce
from repro.validation import (
    check_connectivity_thresholds,
    check_explicit,
    check_implicit,
    check_tree,
)
from repro.workloads import (
    balanced_tree_sequence,
    bimodal_rho,
    caterpillar_sequence,
    path_sequence,
    power_law_rho,
    random_tree_sequence,
    star_sequence,
    uniform_rho,
)

from tests.conftest import make_ncc1, make_net


@st.composite
def tree_sequences(draw):
    n = draw(st.integers(2, 9))
    prufer = draw(st.lists(st.integers(0, n - 1), min_size=n - 2, max_size=n - 2))
    degrees = [1] * n
    for x in prufer:
        degrees[x] += 1
    return degrees


class TestTreeRealization:
    @pytest.mark.parametrize(
        "maker",
        [star_sequence, path_sequence, random_tree_sequence, balanced_tree_sequence,
         caterpillar_sequence],
    )
    @pytest.mark.parametrize("variant", ["max_diameter", "min_diameter"])
    def test_workload_families(self, maker, variant):
        seq = maker(14)
        assert is_tree_realizable(seq)
        net = make_net(14, seed=7)
        demands = dict(zip(net.node_ids, seq))
        result = realize_tree(net, demands, variant=variant)
        assert result.realized
        assert check_tree(result.edges, list(net.node_ids))
        assert result.realized_degrees == demands
        assert check_implicit(net)

    @settings(max_examples=20, deadline=None)
    @given(tree_sequences())
    def test_property_valid_trees(self, seq):
        for variant in ("max_diameter", "min_diameter"):
            net = make_net(len(seq), seed=sum(seq))
            demands = dict(zip(net.node_ids, seq))
            result = realize_tree(net, demands, variant=variant)
            assert result.realized
            assert check_tree(result.edges, list(net.node_ids))
            assert result.realized_degrees == demands

    @settings(max_examples=15, deadline=None)
    @given(tree_sequences())
    def test_min_diameter_is_optimal(self, seq):
        net = make_net(len(seq), seed=1)
        demands = dict(zip(net.node_ids, seq))
        result = realize_tree(net, demands, variant="min_diameter")
        assert result.diameter == min_tree_diameter_bruteforce(seq)

    @settings(max_examples=15, deadline=None)
    @given(tree_sequences())
    def test_diameter_ordering(self, seq):
        diameters = {}
        for variant in ("max_diameter", "min_diameter"):
            net = make_net(len(seq), seed=2)
            demands = dict(zip(net.node_ids, seq))
            diameters[variant] = realize_tree(net, demands, variant=variant).diameter
        assert diameters["min_diameter"] <= diameters["max_diameter"]

    @pytest.mark.parametrize(
        "seq", [[2, 2, 2], [1, 1, 1, 1], [3, 3, 1, 1], [0, 1]]
    )
    def test_unrealizable_announced(self, seq):
        assert not is_tree_realizable(seq)
        net = make_net(len(seq), seed=3)
        demands = dict(zip(net.node_ids, seq))
        result = realize_tree(net, demands)
        assert not result.realized
        assert len(result.announced_unrealizable_by) >= 1

    def test_trivial_sizes(self):
        net = make_net(1, seed=4)
        result = realize_tree(net, {net.node_ids[0]: 0})
        assert result.realized and result.diameter == 0

        net = make_net(2, seed=5)
        result = realize_tree(net, dict(zip(net.node_ids, (1, 1))))
        assert result.realized and result.num_edges == 1

    def test_invalid_variant_rejected(self):
        net = make_net(4, seed=6)
        with pytest.raises(ValueError):
            realize_tree(net, {v: 1 for v in net.node_ids}, variant="bogus")

    def test_star_diameter_two(self):
        seq = star_sequence(10)
        net = make_net(10, seed=7)
        result = realize_tree(net, dict(zip(net.node_ids, seq)), variant="min_diameter")
        assert result.diameter == 2

    def test_path_diameter_n_minus_one(self):
        seq = path_sequence(9)
        net = make_net(9, seed=8)
        result = realize_tree(net, dict(zip(net.node_ids, seq)), variant="max_diameter")
        assert result.diameter == 8


def validate_connectivity(net, rho, result):
    assert check_connectivity_thresholds(result.edges, rho, list(net.node_ids))
    assert result.num_edges <= sum(rho.values())  # 2-approximation
    assert result.lower_bound_edges == connectivity_lower_bound(rho)
    assert result.approximation_ratio <= 2.0 + 1e-9


class TestConnectivityNCC1:
    @pytest.mark.parametrize(
        "maker,args",
        [
            (uniform_rho, (3,)),
            (bimodal_rho, (5, 1)),
            (power_law_rho, (6,)),
        ],
    )
    def test_thresholds_hold(self, maker, args):
        n = 14
        net = make_ncc1(n, seed=1)
        values = maker(n, *args)
        rho = dict(zip(net.node_ids, values))
        result = realize_connectivity_ncc1(net, rho)
        validate_connectivity(net, rho, result)
        assert check_implicit(net)
        assert result.hub is not None
        assert rho[result.hub] == max(rho.values())

    def test_hub_adjacent_to_everyone_with_demand(self):
        net = make_ncc1(10, seed=2)
        rho = {v: 2 for v in net.node_ids}
        result = realize_connectivity_ncc1(net, rho)
        graph = nx.Graph(result.edges)
        assert graph.degree(result.hub) == 9

    def test_rounds_independent_of_demands(self):
        """Theorem 17: Õ(1) — rounds don't grow with rho."""
        rounds = []
        for value in (1, 4, 8):
            net = make_ncc1(12, seed=3)
            rho = dict(zip(net.node_ids, uniform_rho(12, value)))
            result = realize_connectivity_ncc1(net, rho)
            rounds.append(result.stats.rounds)
        assert rounds[0] == rounds[1] == rounds[2]

    def test_requires_ncc1(self):
        net = make_net(8, seed=4)
        rho = {v: 2 for v in net.node_ids}
        with pytest.raises(ProtocolError):
            realize_connectivity_ncc1(net, rho)

    def test_infeasible_rho_rejected(self):
        net = make_ncc1(6, seed=5)
        rho = {v: 6 for v in net.node_ids}  # > n-1
        with pytest.raises(ProtocolError):
            realize_connectivity_ncc1(net, rho)

    def test_zero_demands(self):
        net = make_ncc1(6, seed=6)
        rho = {v: 0 for v in net.node_ids}
        result = realize_connectivity_ncc1(net, rho)
        assert result.num_edges == 0


class TestConnectivityNCC0:
    @pytest.mark.parametrize(
        "maker,args",
        [
            (uniform_rho, (2,)),
            (bimodal_rho, (4, 1)),
            (power_law_rho, (5,)),
        ],
    )
    def test_thresholds_hold_and_explicit(self, maker, args):
        n = 13
        net = make_net(n, seed=7)
        values = maker(n, *args)
        rho = dict(zip(net.node_ids, values))
        result = realize_connectivity_ncc0(net, rho)
        validate_connectivity(net, rho, result)
        assert result.explicit
        assert check_explicit(net)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_random_demands(self, seed):
        rng = random.Random(seed)
        n = rng.randrange(6, 12)
        net = make_net(n, seed=seed)
        rho = {v: rng.randrange(0, min(5, n - 1)) for v in net.node_ids}
        result = realize_connectivity_ncc0(net, rho)
        validate_connectivity(net, rho, result)
        assert check_explicit(net)

    def test_works_in_ncc1_too(self):
        net = make_ncc1(10, seed=8)
        rho = {v: 2 for v in net.node_ids}
        result = realize_connectivity_ncc0(net, rho)
        validate_connectivity(net, rho, result)

    def test_single_node(self):
        net = make_net(1, seed=9)
        result = realize_connectivity_ncc0(net, {net.node_ids[0]: 0})
        assert result.num_edges == 0

    def test_caps_respected(self):
        net = make_net(20, seed=10)
        rho = dict(zip(net.node_ids, bimodal_rho(20, 6, 2)))
        realize_connectivity_ncc0(net, rho)
        assert net.max_round_load <= net.recv_cap
