"""The columnar wire codec: property-based round trips and invariants.

The sharded differential/cap-fuzz/determinism suites gate the codec
end-to-end (every cross-shard message now travels through it); this file
isolates the codec itself: fuzzed encode/decode round trips over all
three wire shapes, payload *type* preservation (``True`` must not come
back as ``1``), the kind-interning guarantee, multi-word-int payloads,
and the empty-batch edges.
"""

from __future__ import annotations

import math
import pickle
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ncc import wire
from repro.ncc.message import Message, msg

INT64_MAX = 2**63 - 1

#: Node-id-shaped ints: the strict int64 domain of the id/meta columns.
ids_st = st.integers(min_value=0, max_value=INT64_MAX)

#: Payload scalars: everything the engines accept, including multi-word
#: ints far beyond int64 and the bool/float/str/None tags.  NaN is
#: excluded only because it defeats equality-based comparison; it gets
#: a dedicated test below.
scalar_st = st.one_of(
    st.integers(min_value=-(2**200), max_value=2**200),
    st.booleans(),
    st.none(),
    st.floats(allow_nan=False),
    st.text(max_size=8),
)

message_st = st.builds(
    lambda kind, ids, data, src: Message(kind=kind, ids=ids, data=data, src=src),
    kind=st.sampled_from(["a:x", "b:y", "c:z", "spill", "agg:sum"]),
    ids=st.lists(ids_st, max_size=4).map(tuple),
    data=st.lists(scalar_st, max_size=4).map(tuple),
    src=st.integers(min_value=-1, max_value=INT64_MAX),
)

entry_st = st.tuples(ids_st, ids_st, ids_st, message_st)


def assert_messages_identical(got, expected):
    """Field equality plus payload *type* identity (True is not 1)."""
    assert got == expected
    for g, e in zip(got, expected):
        assert g.kind is sys.intern(e.kind)  # interning invariant
        assert all(type(a) is type(b) for a, b in zip(g.data, e.data))
        assert all(type(a) is int for a in g.ids)


class TestEntryBatches:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(entry_st, max_size=30))
    def test_round_trip_through_pickle(self, entries):
        # pickled like multiprocessing ships it over the pipe
        blob = pickle.loads(pickle.dumps(wire.encode_entries(entries), -1))
        decoded = wire.decode_entries(blob)
        assert decoded == entries
        assert_messages_identical(
            [m for *_, m in decoded], [m for *_, m in entries]
        )
        assert wire.entry_count(blob) == len(entries)
        assert list(wire.entry_receivers(blob)) == [b for _, b, _, _ in entries]

    def test_empty_batch(self):
        blob = wire.encode_entries([])
        assert wire.entry_count(blob) == 0
        assert wire.decode_entries(blob) == []
        assert wire.decode_entries(wire.encode_entries(iter(()))) == []

    def test_kind_table_is_deduplicated(self):
        entries = [
            (i, 1, 2, msg(kind)) for i, kind in
            enumerate(["a:x", "b:y", "a:x", "a:x", "b:y"])
        ]
        kinds, kind_idx = wire.encode_entries(entries)[3][:2]
        assert kinds == ("a:x", "b:y")  # each distinct kind once
        assert list(kind_idx) == [0, 1, 0, 0, 1]
        assert wire.decode_entries(wire.encode_entries(entries)) == entries

    def test_multi_word_ints_round_trip(self):
        entries = [(0, 1, 2, msg("k", data=(2**100, -(2**64), 3)))]
        decoded = wire.decode_entries(wire.encode_entries(entries))
        assert decoded == entries
        assert decoded[0][3].data[0] == 2**100

    def test_nan_payload_round_trips(self):
        entries = [(0, 1, 2, msg("k", data=(float("nan"),)))]
        (value,) = wire.decode_entries(wire.encode_entries(entries))[0][3].data
        assert type(value) is float and math.isnan(value)

    def test_nonscalar_payloads_still_transport(self):
        """The codec is total: junk the engines will *reject* during
        validation must still cross the boundary unchanged, so the
        violation fallback can replay it with reference-exact errors."""
        junk = ([1, 2], ("t", "u"))
        entries = [(0, 1, 2, msg("k", data=junk))]
        decoded = wire.decode_entries(wire.encode_entries(entries))
        assert decoded[0][3].data == junk


class TestGroupedMessages:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(ids_st, st.lists(message_st, max_size=6)), max_size=8))
    def test_round_trip(self, groups):
        decoded = wire.decode_grouped(
            pickle.loads(pickle.dumps(wire.encode_grouped(groups), -1))
        )
        assert decoded == [(key, list(ms)) for key, ms in groups]
        for (_, got), (_, expected) in zip(decoded, groups):
            assert_messages_identical(got, expected)

    def test_empty_groups_and_batch(self):
        assert wire.decode_grouped(wire.encode_grouped([])) == []
        groups = [(3, []), (9, [msg("k")])]
        assert wire.decode_grouped(wire.encode_grouped(groups)) == groups


class TestIdGroups:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(ids_st, st.lists(ids_st, max_size=8)), max_size=8))
    def test_round_trip(self, groups):
        decoded = wire.decode_id_groups(
            pickle.loads(pickle.dumps(wire.encode_id_groups(groups), -1))
        )
        assert [(key, list(ids)) for key, ids in decoded] == groups

    def test_oversize_ids_fall_back_to_boxed_groups(self):
        """Protocol-supplied message ids are not bounded by the node-ID
        universe; a group with an id beyond int64 must round-trip (the
        in-process engines accept such ids, so the sharded exchange
        must transport them too, not crash the worker)."""
        groups = [
            (1, [4, 5]),
            (2, [3, 2**70, 7]),  # oversize id
            (3, []),
            (4, [2**64]),
            (2**70, [8, 9]),  # oversize key (n^c outgrows int64)
            (5, ["weird-id", 6]),  # non-int id (knowledge accepts hashables)
            (6, [True, 2]),  # bool id: array('q') would coerce True -> 1
        ]
        decoded = wire.decode_id_groups(
            pickle.loads(pickle.dumps(wire.encode_id_groups(groups), -1))
        )
        assert [(key, list(ids)) for key, ids in decoded] == [
            (key, list(ids)) for key, ids in groups
        ]
        # Exact id types survive (True must not come back as 1).
        assert [type(i) for i in decoded[6][1]] == [bool, int]

    def test_one_shot_iterators_are_materialized(self):
        decoded = wire.decode_id_groups(
            wire.encode_id_groups([(5, iter([1, 2, 3])), (6, iter([True]))])
        )
        assert [(key, list(ids)) for key, ids in decoded] == [
            (5, [1, 2, 3]), (6, [True])
        ]
        assert type(decoded[1][1][0]) is bool

    def test_sets_encode_and_feed_set_update(self):
        blob = wire.encode_id_groups([(1, {4, 5, 6}), (2, ())])
        decoded = wire.decode_id_groups(blob)
        assert [key for key, _ in decoded] == [1, 2]
        assert set(decoded[0][1]) == {4, 5, 6}
        target: set = {9}
        target.update(decoded[0][1])  # array slices feed set.update
        assert target == {4, 5, 6, 9}
        assert list(decoded[1][1]) == []
