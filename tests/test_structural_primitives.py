"""Tests for structural primitives: path ops, Figure-1 tree, BBST (Thm 1)."""

import math

import pytest

from repro.ncc.errors import ProtocolError
from repro.primitives.bbst import (
    build_bbst,
    build_indexed_path,
    build_levels,
    level_paths,
)
from repro.primitives.binary_tree import (
    build_warmup_binary_tree,
    tree_children,
    tree_height,
    tree_nodes,
)
from repro.primitives.path_ops import build_undirected_path, path_members_from
from repro.primitives.protocol import ns_state, run_protocol

from tests.conftest import inorder_of, make_net


class TestUndirectedPath:
    def test_pointers_both_ways(self):
        net = make_net(6)
        head = run_protocol(net, build_undirected_path(net, "p"))
        ids = list(net.node_ids)
        assert head == ids[0]
        for i, v in enumerate(ids):
            state = ns_state(net, v, "p")
            assert state["pred"] == (ids[i - 1] if i > 0 else None)
            assert state["succ"] == (ids[i + 1] if i < len(ids) - 1 else None)
        assert net.rounds == 1

    def test_walk_members(self):
        net = make_net(5)
        head = run_protocol(net, build_undirected_path(net, "p"))
        assert path_members_from(net, "p", head) == list(net.node_ids)

    def test_single_node(self):
        net = make_net(1)
        head = run_protocol(net, build_undirected_path(net, "p"))
        assert head == net.node_ids[0]


class TestWarmupTree:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 8, 13, 16, 33, 64, 100])
    def test_binary_spanning_balanced(self, n):
        net = make_net(n, seed=n)
        root = run_protocol(net, build_warmup_binary_tree(net, "wb"))
        nodes = tree_nodes(net, "wb", root)
        assert sorted(nodes) == sorted(net.node_ids)
        for v in net.node_ids:
            assert len(tree_children(net, "wb", v)) <= 2
        height = tree_height(net, "wb", root)
        assert height <= math.ceil(math.log2(max(2, n))) + 1

    def test_rounds_logarithmic(self):
        rounds = []
        for n in (16, 64, 256):
            net = make_net(n, seed=3)
            run_protocol(net, build_warmup_binary_tree(net, "wb"))
            rounds.append(net.rounds / math.log2(n))
        # per-log cost must not grow.
        assert rounds[-1] <= rounds[0] * 1.5

    def test_figure_1_example_structure(self):
        """The paper's 8-node example: r adopts a=succ, b=succ's succ."""
        net = make_net(8, seed=0)
        ids = list(net.node_ids)  # path order 1..8 in figure terms
        root = run_protocol(net, build_warmup_binary_tree(net, "wb"))
        label = {v: i + 1 for i, v in enumerate(ids)}

        def kids(v):
            return sorted(label[c] for c in tree_children(net, "wb", v))

        assert label[root] == 1
        assert kids(ids[0]) == [2, 3]      # 1 -> {2, 3}
        assert kids(ids[1]) == [4, 6]      # 2 -> {4, 6}
        assert kids(ids[2]) == [5, 7]      # 3 -> {5, 7}
        assert kids(ids[3]) == [8]         # 4 -> {8}


class TestBBST:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 8, 9, 16, 31, 64, 128])
    def test_inorder_is_path_order(self, n):
        net = make_net(n, seed=n)
        ns, root = run_protocol(net, build_bbst(net))
        assert inorder_of(net, ns, root) == list(net.node_ids)

    @pytest.mark.parametrize("n", [2, 8, 17, 64, 200])
    def test_height_bound(self, n):
        net = make_net(n, seed=n)
        ns, root = run_protocol(net, build_bbst(net))
        depth = {root: 0}
        stack = [root]
        while stack:
            v = stack.pop()
            state = ns_state(net, v, ns)
            for c in (state.get("left"), state.get("right")):
                if c is not None:
                    depth[c] = depth[v] + 1
                    stack.append(c)
        assert max(depth.values()) <= math.ceil(math.log2(n)) + 1
        assert len(depth) == n

    def test_root_is_path_head(self):
        net = make_net(20, seed=4)
        ns, root = run_protocol(net, build_bbst(net))
        assert root == net.node_ids[0]

    def test_rounds_logarithmic(self):
        per_log = []
        for n in (16, 64, 256):
            net = make_net(n, seed=5)
            run_protocol(net, build_bbst(net))
            per_log.append(net.rounds / math.log2(n))
        assert per_log[-1] <= per_log[0] * 1.5

    def test_figure_2_example(self):
        """n=8: levels of L are the interleaved paths; tree matches Fig 2."""
        net = make_net(8, seed=0)
        ns, root = run_protocol(net, build_bbst(net))
        ids = list(net.node_ids)
        label = {v: i + 1 for i, v in enumerate(ids)}

        paths_l1 = level_paths(net, ns, ids, 1)
        labelled = sorted(tuple(label[v] for v in p) for p in paths_l1)
        assert labelled == [(1, 3, 5, 7), (2, 4, 6, 8)]

        paths_l2 = level_paths(net, ns, ids, 2)
        labelled2 = sorted(tuple(label[v] for v in p) for p in paths_l2)
        assert labelled2 == [(1, 5), (2, 6), (3, 7), (4, 8)]

        # Fig 2 tree: 1 -> right 5; 5 -> {3, 7}; 3 -> {2, 4}; 7 -> {6, 8}.
        def lr(v):
            state = ns_state(net, v, ns)
            left = label[state["left"]] if state["left"] else None
            right = label[state["right"]] if state["right"] else None
            return left, right

        assert label[root] == 1
        assert lr(ids[0]) == (None, 5)
        assert lr(ids[4]) == (3, 7)
        assert lr(ids[2]) == (2, 4)
        assert lr(ids[6]) == (6, 8)

    def test_levels_connect_distance_2i(self):
        net = make_net(32, seed=6)
        ns, root = run_protocol(net, build_bbst(net))
        ids = list(net.node_ids)
        for i in (1, 2, 3, 4):
            stride = 1 << i
            for pos, v in enumerate(ids):
                state = ns_state(net, v, ns)
                expect_succ = ids[pos + stride] if pos + stride < len(ids) else None
                assert state.get(f"ls{i}") == expect_succ

    def test_indexed_path_positions_and_ranges(self):
        net = make_net(25, seed=7)

        def proto():
            head = yield from build_undirected_path(net, "ip")
            root = yield from build_indexed_path(
                net, "ip", list(net.node_ids), head, publish_root=True
            )
            return root

        root = run_protocol(net, proto())
        ids = list(net.node_ids)
        for pos, v in enumerate(ids):
            state = ns_state(net, v, "ip")
            assert state["pos"] == pos
            lo, hi = state["range"]
            assert lo <= pos <= hi
            assert state["total"] == 25
            assert state["root_id"] == root

    def test_bbst_on_subpath(self):
        """The construction generalizes to sub-paths (mergesort runs)."""
        net = make_net(20, seed=8)
        ids = list(net.node_ids)
        sub = ids[5:14]

        def proto():
            yield from build_undirected_path(net, "all")
            # carve the sub-path
            for i, v in enumerate(sub):
                state = ns_state(net, v, "sub")
                state["pred"] = sub[i - 1] if i > 0 else None
                state["succ"] = sub[i + 1] if i < len(sub) - 1 else None
            ns, root = yield from build_bbst(net, ns="sub", members=sub, head=sub[0])
            return ns, root

        ns, root = run_protocol(net, proto())
        assert inorder_of(net, ns, root) == sub
