"""Tests for doubling range multicast over structure 𝓛."""

import math

import pytest

from repro.ncc.errors import ProtocolError
from repro.primitives.bbst import build_indexed_path
from repro.primitives.path_ops import build_undirected_path
from repro.primitives.protocol import ns_state, run_protocol
from repro.primitives.range_multicast import range_multicast

from tests.conftest import make_net


def indexed_net(n, seed=0):
    net = make_net(n, seed=seed)

    def proto():
        head = yield from build_undirected_path(net, "ip")
        yield from build_indexed_path(net, "ip", list(net.node_ids), head)
        return None

    run_protocol(net, proto())
    return net


def run_requests(net, requests, key="rm_token"):
    return run_protocol(net, range_multicast(net, "ip", requests, key=key))


class TestDelivery:
    @pytest.mark.parametrize("width", [1, 2, 3, 7, 15, 20])
    def test_rightward_block(self, width):
        net = indexed_net(32, seed=width)
        ids = list(net.node_ids)
        src = ids[3]
        deliveries = run_requests(net, [(src, 4, 3 + width, ((src,), (9,)))])
        assert deliveries == width
        for pos in range(4, 4 + width):
            token = ns_state(net, ids[pos], "ip")["rm_token"]
            assert token == ((src,), (9,))
        # Nodes outside the range never got it.
        assert "rm_token" not in ns_state(net, ids[2], "ip")
        if 4 + width < 32:
            assert "rm_token" not in ns_state(net, ids[4 + width], "ip")

    @pytest.mark.parametrize("width", [1, 4, 10])
    def test_leftward_block(self, width):
        net = indexed_net(32, seed=width)
        ids = list(net.node_ids)
        src = ids[20]
        deliveries = run_requests(net, [(src, 20 - width, 19, ((src,), ()))])
        assert deliveries == width
        for pos in range(20 - width, 20):
            assert ns_state(net, ids[pos], "ip")["rm_token"][0] == (src,)

    def test_many_disjoint_groups_in_parallel(self):
        """Algorithm 3's use: q groups of δ+1 positions each."""
        n, delta = 60, 5
        net = indexed_net(n, seed=1)
        ids = list(net.node_ids)
        requests = []
        q = n // (delta + 1)
        for alpha in range(q):
            head_pos = alpha * (delta + 1)
            src = ids[head_pos]
            requests.append((src, head_pos + 1, head_pos + delta, ((src,), ())))
        base = net.rounds
        deliveries = run_requests(net, requests)
        assert deliveries == q * delta
        # parallel: cost is O(log delta)-ish, not q * something
        assert net.rounds - base <= 4 * math.ceil(math.log2(delta + 1)) + 6
        for alpha in range(q):
            head_pos = alpha * (delta + 1)
            for pos in range(head_pos + 1, head_pos + delta + 1):
                token = ns_state(net, ids[pos], "ip")["rm_token"]
                assert token[0] == (ids[head_pos],)

    def test_rounds_logarithmic_in_width(self):
        costs = {}
        for width in (8, 64, 120):
            net = indexed_net(128, seed=2)
            ids = list(net.node_ids)
            src = ids[0]
            base = net.rounds
            run_requests(net, [(src, 1, width, ((src,), ()))])
            costs[width] = net.rounds - base
        assert costs[120] <= costs[8] + 3 * (
            math.log2(120) - math.log2(8) + 2
        )


class TestValidation:
    def test_rejects_non_adjacent_source(self):
        net = indexed_net(16, seed=3)
        ids = list(net.node_ids)
        with pytest.raises(ProtocolError):
            run_requests(net, [(ids[0], 5, 8, ((ids[0],), ()))])

    def test_rejects_overlapping_ranges(self):
        net = indexed_net(16, seed=4)
        ids = list(net.node_ids)
        with pytest.raises(ProtocolError):
            run_requests(
                net,
                [
                    (ids[0], 1, 6, ((ids[0],), ())),
                    (ids[3], 4, 9, ((ids[3],), ())),
                ],
            )

    def test_rejects_empty_range(self):
        net = indexed_net(16, seed=5)
        ids = list(net.node_ids)
        with pytest.raises(ProtocolError):
            run_requests(net, [(ids[0], 5, 4, ((ids[0],), ()))])

    def test_caps_respected_under_load(self):
        net = indexed_net(96, seed=6)
        ids = list(net.node_ids)
        requests = []
        block = 8
        for start in range(0, 96 - block, block):
            src = ids[start]
            requests.append((src, start + 1, start + block - 1, ((src,), ())))
        run_requests(net, requests)
        assert net.max_round_load <= net.recv_cap
