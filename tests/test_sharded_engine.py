"""Sharded-engine specifics the differential suites don't isolate.

The cross-engine bit-identity gates live in
``test_differential_engines.py`` / ``test_engine_cap_fuzz.py`` /
``test_engine_determinism.py`` (which run the sharded engine at two
shard counts).  This file covers the machinery itself: the partitioner,
lazy worker lifecycle, grant forwarding, worker-death recovery, and the
engine registry/CLI surfaces.
"""

from __future__ import annotations

import pytest

from repro.ncc.config import NCCConfig, Variant
from repro.ncc.engine import engine_names, make_engine
from repro.ncc.network import Network
from repro.ncc.sharded import ShardedEngine, partition_nodes
from repro.primitives.protocol import run_protocol
from repro.primitives.sorting import distributed_sort


def sharded_net(n: int, shards: int, seed: int = 0, **overrides) -> Network:
    return Network(
        n,
        NCCConfig(seed=seed, engine="sharded", engine_shards=shards, **overrides),
    )


def run_sorting(net: Network):
    import random

    rng = random.Random(13)
    table = {v: rng.randrange(net.n) for v in net.node_ids}
    _, order = run_protocol(net, distributed_sort(net, lambda v: table[v]))
    return (tuple(order), net.stats())


class TestPartitioner:
    def test_contiguous_balanced_cover(self):
        ids = tuple(range(100, 117))  # 17 nodes
        shards = partition_nodes(ids, 4)
        assert len(shards) == 4
        assert tuple(v for shard in shards for v in shard) == ids  # order kept
        sizes = [len(shard) for shard in shards]
        assert max(sizes) - min(sizes) <= 1  # balanced
        assert sizes == sorted(sizes, reverse=True)  # extras go first

    def test_clamps_to_node_count(self):
        assert len(partition_nodes((1, 2, 3), 8)) == 3
        assert len(partition_nodes((1, 2, 3), 0)) == 1
        assert partition_nodes((5,), 2) == [(5,)]

    def test_engine_clamps_shard_count(self):
        net = sharded_net(3, shards=16)
        assert isinstance(net.engine, ShardedEngine)
        assert net.engine.shards == 3
        net.close()

    def test_single_shard_degenerates_cleanly(self):
        single = sharded_net(10, shards=1, seed=5)
        reference = Network(10, NCCConfig(seed=5, engine="reference"))
        assert run_sorting(single) == run_sorting(reference)
        single.close()


class TestRegistry:
    def test_engine_names_include_sharded(self):
        assert set(engine_names()) >= {"fast", "reference", "sharded"}

    def test_make_engine_resolves_lazily(self):
        net = Network(4, NCCConfig())
        engine = make_engine("sharded", net)
        assert isinstance(engine, ShardedEngine)
        engine.close()

    def test_unknown_engine_message_names_sharded(self):
        with pytest.raises(ValueError, match="sharded"):
            Network(4, NCCConfig(engine="warp"))


class TestWorkerLifecycle:
    def test_workers_spawn_lazily(self):
        net = sharded_net(8, shards=2)
        assert net.engine._conns is None  # construction spawned nothing
        net.idle_round()  # quiescent rounds stay IPC-free
        assert net.engine._conns is None
        assert net.rounds == 1
        run_sorting(net)
        assert net.engine._conns is not None
        net.close()

    def test_close_is_idempotent_and_engine_recovers(self):
        net = sharded_net(12, shards=2, seed=3)
        first = run_sorting(net)
        procs = list(net.engine._procs)
        net.close()
        net.close()
        for proc in procs:
            assert not proc.is_alive()
        # Workers respawn from the parent's authoritative state: a fresh
        # run after reset is bit-identical to an untouched network.
        net.reset()
        assert run_sorting(net) == first
        net.close()

    def test_killed_worker_mid_run_surfaces_and_engine_heals(self):
        net = sharded_net(12, shards=2, seed=3)
        expected = run_sorting(net)
        net.reset()
        run_sorting(net)  # ensure workers are up
        net.engine._procs[0].terminate()
        net.engine._procs[0].join()
        # Delivering against a dead worker fails loudly (the round
        # aborts) and tears the worker pool down so nothing is wedged.
        from repro.ncc.message import msg

        src = next(v for v, known in net.known.items() if known)
        dst = next(iter(net.known[src]))
        with pytest.raises((RuntimeError, OSError)):
            net.step([(src, dst, msg("probe"))])
        assert net.engine._conns is None  # self-healed: pool torn down
        # Next run respawns from parent state and is bit-identical again.
        assert run_sorting(net.reset()) == expected
        net.close()

    def test_killed_worker_heals_silently_across_reset(self):
        """A dead worker discovered at reset (lease release) just tears
        the pool down; the next lease respawns and stays bit-identical."""
        net = sharded_net(12, shards=2, seed=3)
        expected = run_sorting(net)
        for proc in net.engine._procs:
            proc.terminate()
            proc.join()
        net.reset()  # resync hits dead pipes -> engine closes itself
        assert net.engine._conns is None
        assert run_sorting(net) == expected
        net.close()


class TestGrantForwarding:
    @pytest.mark.parametrize("shards", [2, 3])
    def test_granted_knowledge_enables_sends(self, shards):
        """grant_knowledge must reach the (cross-shard) sender replica."""
        from repro.ncc.message import msg

        outcomes = {}
        for label, config in (
            ("reference", NCCConfig(seed=2, engine="reference")),
            ("sharded", NCCConfig(seed=2, engine="sharded", engine_shards=shards)),
        ):
            net = Network(12, config)
            ids = list(net.node_ids)
            src, dst = ids[-1], ids[0]  # tail knows nobody behind it (NCC0)
            assert not net.knows(src, dst)
            net.grant_knowledge(src, dst)
            inboxes = net.step([(src, dst, msg("hi", data=(1,)))])
            outcomes[label] = (
                {d: [(m.kind, m.src, m.data) for m in box] for d, box in inboxes.items()},
                net.stats(),
                {v: frozenset(s) for v, s in net.known.items()},
            )
            net.close()
        assert outcomes["sharded"] == outcomes["reference"]

    def test_grants_before_first_round_land_in_spawn_snapshot(self):
        from repro.ncc.message import msg

        net = sharded_net(10, shards=2, seed=1)
        ids = list(net.node_ids)
        net.grant_knowledge(ids[-1], ids[0])  # queued pre-spawn
        inboxes = net.step([(ids[-1], ids[0], msg("hello"))])
        assert [m.src for m in inboxes[ids[0]]] == [ids[-1]]
        net.close()


class TestVariantsUnderSharding:
    @pytest.mark.parametrize("shards", [2, 3])
    def test_ncc1_identical(self, shards):
        a = sharded_net(18, shards=shards, seed=9, variant=Variant.NCC1, random_ids=False)
        b = Network(18, NCCConfig(seed=9, engine="reference", variant=Variant.NCC1,
                                  random_ids=False))
        assert run_sorting(a) == run_sorting(b)
        a.close()

    def test_unbounded_enforcement_identical(self):
        from repro.ncc.config import EnforcementMode
        from repro.ncc.message import msg

        outcomes = {}
        for label, engine_cfg in (
            ("reference", {"engine": "reference"}),
            ("sharded", {"engine": "sharded", "engine_shards": 2}),
        ):
            net = Network(
                24,
                NCCConfig(seed=6, variant=Variant.NCC1, random_ids=False,
                          enforcement=EnforcementMode.UNBOUNDED, **engine_cfg),
            )
            ids = list(net.node_ids)
            hub = ids[0]
            flood = [(s, hub, msg("f", data=(s,))) for s in ids[1:]]
            inboxes = net.step(flood)
            outcomes[label] = (
                [(m.src, m.data) for m in inboxes[hub]],
                net.stats(),
            )
            net.close()
        assert outcomes["sharded"] == outcomes["reference"]


class TestOversizePayloadIds:
    def test_ids_beyond_int64_stay_bit_identical(self):
        """Message.ids is protocol-supplied, not bounded by the node-ID
        universe: a receiver must 'learn' a 2**70 id identically on the
        sharded engine (the wire codec boxes the oversize id group)."""
        from repro.ncc.message import msg

        outcomes = {}
        for label, config in (
            ("fast", NCCConfig(seed=3, engine="fast")),
            ("sharded", NCCConfig(seed=3, engine="sharded", engine_shards=2)),
        ):
            net = Network(12, config)
            ids = list(net.node_ids)
            src, dst = ids[0], ids[1]  # path knowledge: head knows next
            inboxes = net.step([(src, dst, msg("huge", ids=(2**70,)))])
            outcomes[label] = (
                {d: [(m.kind, m.src, m.ids) for m in box] for d, box in inboxes.items()},
                net.stats(),
                {v: frozenset(s) for v, s in net.known.items()},
            )
            net.close()
        assert outcomes["sharded"] == outcomes["fast"]
        assert 2**70 in outcomes["sharded"][2][list(outcomes["sharded"][0])[0]]

    def test_non_int_ids_stay_bit_identical(self):
        """Knowledge sets accept any hashable, so the in-process engines
        deliver string ids; the sharded exchange must transport them
        (boxed) rather than crash the worker on array('q').extend."""
        from repro.ncc.message import msg

        outcomes = {}
        for label, config in (
            ("fast", NCCConfig(seed=3, engine="fast")),
            ("sharded", NCCConfig(seed=3, engine="sharded", engine_shards=2)),
        ):
            net = Network(12, config)
            ids = list(net.node_ids)
            src, dst = ids[0], ids[1]
            inboxes = net.step([(src, dst, msg("weird", ids=("not-an-int",)))])
            outcomes[label] = (
                {d: [(m.kind, m.src, m.ids) for m in box] for d, box in inboxes.items()},
                net.stats(),
                {v: frozenset(s) for v, s in net.known.items()},
            )
            net.close()
        assert outcomes["sharded"] == outcomes["fast"]


class TestInterningInvariant:
    def test_delivered_and_mirrored_kinds_are_interned(self):
        """Pickling breaks ``sys.intern``; the engine must restore it for
        every message a protocol can see — inboxes AND the parent's
        defer-mode backlog mirror (a fallback replay delivers those)."""
        import sys

        from repro.ncc.config import EnforcementMode
        from repro.ncc.message import msg

        net = sharded_net(24, shards=2, seed=4, variant=Variant.NCC1,
                          random_ids=False,
                          enforcement=EnforcementMode.DEFER)
        ids = list(net.node_ids)
        hub = ids[0]
        flood = [(s, hub, msg("spillkind")) for s in ids[1:net.recv_cap + 5]]
        inboxes = net.step(flood)
        for box in inboxes.values():
            for message in box:
                assert message.kind is sys.intern(message.kind)
        assert net.pending_deferred() > 0
        for queue in net._deferred.values():
            for message in queue:
                assert message.kind is sys.intern(message.kind)
        net.close()


class TestShardedCLI:
    def test_engine_sharded_matches_fast_output(self, capsys):
        from repro.__main__ import main

        assert main(["realize", "--degrees", "3,3,2,2,2,2", "--fast",
                     "--engine", "sharded", "--shards", "2"]) == 0
        sharded_out = capsys.readouterr().out
        assert main(["realize", "--degrees", "3,3,2,2,2,2", "--fast",
                     "--engine", "fast"]) == 0
        fast_out = capsys.readouterr().out
        assert sharded_out == fast_out
