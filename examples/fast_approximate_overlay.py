#!/usr/bin/env python3
"""Constant-phase overlay bootstrap via approximate degree realization.

When a swarm needs an overlay *now* — e.g. flash-crowd joins during a
live event — waiting for Algorithm 3's min{√m, Δ} sorted phases may be
too slow.  The paper's contributions list promises an Õ(1)-round
*approximate* realization; this example runs our reconstruction (shared
pseudorandom stub pairing + rendezvous resolution, `repro.core.approximate`)
and shows the trade-off:

* one sort + three collection phases, regardless of Δ;
* every link known to BOTH endpoints immediately (explicit);
* a small degree shortfall (birthday collisions), removed geometrically
  by optional repair passes.

Run:  python examples/fast_approximate_overlay.py
"""

from repro import NCCConfig, Network
from repro.core import approximate_degree_realization, realize_degree_sequence
from repro.validation import check_explicit
from repro.workloads import regular_sequence


def main() -> None:
    n, degree = 64, 8
    seq = regular_sequence(n, degree)

    # Exact realization (Algorithm 3) as the reference point.
    net_exact = Network(n, NCCConfig(seed=3))
    exact = realize_degree_sequence(
        net_exact, dict(zip(net_exact.node_ids, seq)), sort_fidelity="charged"
    )
    assert exact.realized
    print(f"exact (Alg 3):   {exact.stats.rounds:>6} rounds, "
          f"{exact.phases} phases, error 0")

    # Approximate one-shot, then with repair passes.
    for repairs in (0, 2):
        net = Network(n, NCCConfig(seed=3))
        approx = approximate_degree_realization(
            net, dict(zip(net.node_ids, seq)),
            sort_fidelity="charged", repair_rounds=repairs,
        )
        assert check_explicit(net), "stub pairs introduce both endpoints"
        shortfall = approx.l1_error
        print(f"approx +{repairs} rep.: {approx.stats.rounds:>6} rounds, "
              f"1+{repairs} shots, L1 shortfall {shortfall} "
              f"({approx.relative_error:.1%} of demand)")

    print("\ntrade-off: the approximate overlay is explicit immediately and "
          "avoids the per-phase loop;")
    print("repair passes buy accuracy one constant-phase pass at a time.")


if __name__ == "__main__":
    main()
