#!/usr/bin/env python3
"""Fault-tolerant backbone via connectivity-threshold realization (§6).

A content-distribution network wants per-node survivability guarantees:
origin servers must stay reachable through 4 edge-disjoint paths, cache
relays through 2, edge boxes through 1.  We realize the thresholds twice:

* in NCC1 (all addresses known — e.g. a tracker supplied the peer list)
  with the Õ(1) implicit algorithm of Theorem 17, and
* in NCC0 (each box initially knows a single neighbour) with the Õ(Δ)
  explicit Algorithm 6 of Theorem 18,

then *prove* the guarantee by computing max-flow between every pair and
by deleting edges around an origin server.

Run:  python examples/resilient_backbone.py
"""

import random

import networkx as nx

from repro import NCCConfig, Network, Variant
from repro.core.connectivity import (
    connectivity_lower_bound,
    realize_connectivity_ncc0,
    realize_connectivity_ncc1,
)
from repro.validation import check_connectivity_thresholds, check_explicit


def demands(net: Network):
    ids = list(net.node_ids)
    rho = {}
    for i, v in enumerate(ids):
        if i < 3:
            rho[v] = 4  # origin servers
        elif i < 10:
            rho[v] = 2  # cache relays
        else:
            rho[v] = 1  # edge boxes
    return rho


def main() -> None:
    n = 24

    # --- NCC1: implicit, constant-ish rounds -------------------------
    net1 = Network(n, NCCConfig(seed=11, variant=Variant.NCC1, random_ids=False))
    rho = demands(net1)
    res1 = realize_connectivity_ncc1(net1, rho)
    ok1 = check_connectivity_thresholds(res1.edges, rho, net1.node_ids)
    print(f"NCC1 implicit: {res1.num_edges} edges "
          f"(lower bound {res1.lower_bound_edges}, "
          f"ratio {res1.approximation_ratio:.2f} <= 2), "
          f"{res1.stats.rounds} rounds, thresholds hold: {ok1}")
    assert ok1 and res1.approximation_ratio <= 2.0

    # --- NCC0: explicit, Õ(Δ) ----------------------------------------
    net0 = Network(n, NCCConfig(seed=12))
    rho0 = demands(net0)
    res0 = realize_connectivity_ncc0(net0, rho0)
    ok0 = check_connectivity_thresholds(res0.edges, rho0, net0.node_ids)
    print(f"NCC0 explicit: {res0.num_edges} edges "
          f"(ratio {res0.approximation_ratio:.2f} <= 2), "
          f"{res0.stats.rounds} rounds, thresholds hold: {ok0}, "
          f"explicit: {check_explicit(net0)}")
    assert ok0 and res0.approximation_ratio <= 2.0 and check_explicit(net0)

    # --- Survivability drill: cut 3 links around an origin -----------
    graph = nx.Graph(res0.edges)
    graph.add_nodes_from(net0.node_ids)
    origin = [v for v, r in rho0.items() if r == 4][0]
    relay = [v for v, r in rho0.items() if r == 2][0]
    rng = random.Random(0)
    incident = list(graph.edges(origin))
    for edge in rng.sample(incident, 3):
        graph.remove_edge(*edge)
    still = nx.has_path(graph, origin, relay)
    print(f"after deleting 3 of {len(incident)} links at an origin: "
          f"origin->relay reachable: {still}")
    assert still, "4-edge-connectivity must survive 3 edge faults"


if __name__ == "__main__":
    main()
