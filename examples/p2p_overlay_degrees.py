#!/usr/bin/env python3
"""Bounded-degree P2P overlay with heterogeneous capacity classes.

The paper's motivating scenario: peers want an overlay where each node's
maintenance overhead — its degree — matches its capacity.  We model
three classes (supernodes, regular peers, and light clients), realize
the degree sequence with Algorithm 3, and inspect what the overlay looks
like: who carries the load, how many rounds the construction took in the
NCC model, and how the round count compares with the paper's
Õ(min{√m, Δ}) budget.

Also demonstrates the UNREALIZABLE announcement: asking every light
client for one more link than the sequence can support makes at least
one node cry foul, matching the sequential Erdős–Gallai verdict.

Run:  python examples/p2p_overlay_degrees.py
"""

import math

from repro import NCCConfig, Network
from repro.core.degree_realization import realize_degree_sequence
from repro.sequential import is_graphic
from repro.service import DEFAULT_REGISTRY
from repro.validation import check_degree_match, check_implicit, overlay_graph


def build(n: int = 32, seed: int = 7):
    """A network plus the registry's capacity-class demand scenario.

    ``capacity_classes`` is the named form of this example's old inline
    glue: 1/8 supernodes (degree 8), half regular peers (degree 4), the
    rest light clients (degree 2) — the same workload a service request
    would name as ``{"scenario": "capacity_classes"}``.
    """
    net = Network(n, NCCConfig(seed=seed))
    degrees = DEFAULT_REGISTRY.materialize("capacity_classes", n=n, seed=seed)
    return net, dict(zip(net.node_ids, degrees))


def main() -> None:
    net, demands = build(n=32)
    seq = sorted(demands.values(), reverse=True)
    print(f"demand classes: {seq[:4]}... (n={net.n}, graphic={is_graphic(seq)})")

    result = realize_degree_sequence(net, demands)
    assert result.realized
    assert check_degree_match(result.edges, demands, net.node_ids)
    assert check_implicit(net)

    m = result.num_edges
    delta = max(demands.values())
    budget = min(math.sqrt(m), delta)
    print(f"overlay: {m} links in {result.phases} phases, "
          f"{result.stats.rounds} rounds")
    print(f"paper budget shape (Lemma 10): O(min(sqrt(m)={math.sqrt(m):.1f}, "
          f"Δ={delta})) phases x O(log^3 n) rounds")
    # Lemma 10's proof eliminates each maximum degree within at most two
    # phases, so 2*min(sqrt(m), Δ) + 2 is the concrete envelope.
    assert result.phases <= 2 * budget + 2
    print(f"phases within 2*min(sqrt(m), Δ)+2: True")

    overlay = overlay_graph(net)
    supers = [v for v, d in demands.items() if d == 8]
    mean_super = sum(dict(overlay.degree)[v] for v in supers) / len(supers)
    print(f"supernode mean degree: {mean_super:.1f} (demanded 8)")

    # Now an unrealizable demand: an odd degree sum.
    net2, demands2 = build(n=32, seed=8)
    first_light = [v for v, d in demands2.items() if d == 2][0]
    demands2[first_light] = 3  # makes the sum odd -> not graphic
    result2 = realize_degree_sequence(net2, demands2)
    print(f"\nperturbed demand graphic? "
          f"{is_graphic(sorted(demands2.values(), reverse=True))}")
    print(f"distributed verdict: realized={result2.realized}, "
          f"announced UNREALIZABLE by {len(result2.announced_unrealizable_by)} node(s)")
    assert not result2.realized


if __name__ == "__main__":
    main()
