#!/usr/bin/env python3
"""Quickstart: realize a degree sequence as a P2P overlay in the NCC model.

Twelve peers, each demanding exactly 3 overlay links, start knowing only
the next peer in an arbitrary chain (the paper's knowledge graph Gk).
Algorithm 3 (distributed Havel–Hakimi) builds a 3-regular overlay; the
explicit conversion then makes every link known to both endpoints.

Run:  python examples/quickstart.py
"""

from repro import NCCConfig, Network
from repro.core.explicit import realize_degree_sequence_explicit
from repro.service import DEFAULT_REGISTRY
from repro.validation import check_explicit, check_degree_match, overlay_graph


def main() -> None:
    net = Network(12, NCCConfig(seed=42))
    # "regular" is a named scenario in the service registry — the same
    # workload a JSONL request would name as {"scenario": "regular"}.
    degrees = DEFAULT_REGISTRY.materialize("regular", n=12, params={"degree": 3})
    demands = dict(zip(net.node_ids, degrees))

    print(f"{net.n} peers, per-round budget: {net.send_cap} sends / "
          f"{net.recv_cap} receives of <= {net.config.max_words} words each")
    print("each peer initially knows exactly one other address (path Gk)\n")

    result = realize_degree_sequence_explicit(net, demands)

    assert result.realized, "a 3-regular graph on 12 nodes is graphic"
    assert check_degree_match(result.edges, demands, net.node_ids)
    assert check_explicit(net), "both endpoints must know every link"

    overlay = overlay_graph(net)
    print(f"overlay built: {result.num_edges} links, "
          f"{result.phases} Havel-Hakimi phases")
    print(f"rounds: {result.stats.rounds} "
          f"(simulated {result.stats.simulated_rounds}, "
          f"charged {result.stats.charged_rounds})")
    print(f"messages delivered: {result.stats.messages}")
    print(f"every peer has degree 3: "
          f"{all(d == 3 for d in dict(overlay.degree).values())}")


if __name__ == "__main__":
    main()
