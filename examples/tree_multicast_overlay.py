#!/usr/bin/env python3
"""Low-latency multicast trees via tree realization (§5).

A live-streaming swarm builds a distribution tree in which each peer
relays to as many children as its uplink allows.  The same degree budget
admits many trees; latency is governed by depth, so diameter matters.
We realize the budget twice — with Algorithm 4 (the caterpillar, the
*worst* diameter) and Algorithm 5 (the greedy tree T_G, provably the
*minimum* diameter, Lemma 15) — and compare worst-case hop counts.

Run:  python examples/tree_multicast_overlay.py
"""

import networkx as nx

from repro import NCCConfig, Network
from repro.core.tree_realization import realize_tree
from repro.sequential import is_tree_realizable
from repro.validation import check_tree


def uplink_budget(n: int):
    """A skewed relay-capacity profile that sums to 2(n-1)."""
    # One seed with 6 uplinks, some strong relays with 4, filling with
    # degree-2 relays and leaves so that sum d = 2(n-1), all d >= 1.
    degrees = [6, 4, 4, 3, 3]
    remaining = 2 * (n - 1) - sum(degrees) - (n - len(degrees))
    # 'remaining' extra units distributed as degree-2 relays.
    seq = degrees + [2] * remaining + [1] * (n - len(degrees) - remaining)
    assert len(seq) == n and sum(seq) == 2 * (n - 1)
    return seq


def main() -> None:
    n = 40
    seq = uplink_budget(n)
    assert is_tree_realizable(seq)
    print(f"relay budget: seed={seq[0]}, relays={seq[1:5]}, "
          f"{seq.count(2)} x degree-2, {seq.count(1)} leaves")

    results = {}
    for variant in ("max_diameter", "min_diameter"):
        net = Network(n, NCCConfig(seed=33))
        demands = dict(zip(net.node_ids, seq))
        res = realize_tree(net, demands, variant=variant)
        assert res.realized and check_tree(res.edges, list(net.node_ids))
        assert res.realized_degrees == demands
        results[variant] = res
        print(f"{variant:>13}: diameter={res.diameter:>2}  "
              f"rounds={res.stats.rounds}")

    worst = results["max_diameter"].diameter
    best = results["min_diameter"].diameter
    assert best <= worst
    print(f"\nlatency win: worst-case hop count drops {worst} -> {best} "
          f"({(worst - best) / worst:.0%} better) for the same degree budget")

    # Depth from the seed (the highest-degree node) in the greedy tree.
    res = results["min_diameter"]
    graph = nx.Graph(res.edges)
    seed_node = max(res.realized_degrees, key=res.realized_degrees.get)
    depth = max(nx.shortest_path_length(graph, seed_node).values())
    print(f"stream depth from seed in T_G: {depth} hops")


if __name__ == "__main__":
    main()
