"""Sequential upper-envelope realization of (possibly) non-graphic sequences.

Section 4.3 of the paper realizes, for a non-graphic ``D``, an *upper
envelope* ``D'`` with ``d'_i >= d_i`` and ``sum D' <= 2 sum D``.  This
module provides the centralized analogue used as a quality baseline: run
Havel–Hakimi, and whenever a vertex's residual would go negative, clamp it
to zero and keep going (the vertex then absorbs extra edges beyond its
request, inflating its realized degree).

The distributed Algorithm 3 variant (:mod:`repro.core.envelope`) must
produce envelopes that satisfy the same two guarantees; tests compare
discrepancies between the two.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def sequential_envelope(
    degrees: Sequence[int],
) -> Tuple[List[Tuple[int, int]], List[int]]:
    """Greedily realize an upper envelope of ``degrees``.

    Returns ``(edges, realized)`` where ``realized[i] >= degrees[i]`` for
    all ``i`` and ``sum(realized) <= 2 * sum(degrees)``.

    Raises
    ------
    ValueError
        On negative entries.
    """
    n = len(degrees)
    if any(d < 0 for d in degrees):
        raise ValueError("degrees must be non-negative")

    residual = [min(d, n - 1) if n > 0 else 0 for d in degrees]
    order = list(range(n))
    edges: List[Tuple[int, int]] = []
    adjacency = [set() for _ in range(n)]

    while True:
        order.sort(key=lambda i: -residual[i])
        v = order[0]
        dv = residual[v]
        if dv == 0:
            break
        residual[v] = 0
        # Connect to the dv highest-residual vertices not already adjacent.
        picked = 0
        for u in order[1:]:
            if picked == dv:
                break
            if u in adjacency[v]:
                continue
            adjacency[v].add(u)
            adjacency[u].add(v)
            edges.append((min(u, v), max(u, v)))
            # Envelope clamp: a zero-residual endpoint absorbs the edge.
            if residual[u] > 0:
                residual[u] -= 1
            picked += 1
        if picked < dv:
            # Not enough distinct partners; remaining requirement is
            # unsatisfiable even with clamping — realized degree simply
            # falls short of n-1-adjacent saturation; stop.
            break

    realized = [len(adjacency[i]) for i in range(n)]
    return edges, realized


def discrepancy(requested: Sequence[int], realized: Sequence[int]) -> int:
    """Total envelope discrepancy ``sum(max(0, realized_i - requested_i))``.

    Theorem 13 bounds the distributed version by ``sum(requested)``.
    """
    return sum(max(0, r - q) for q, r in zip(requested, realized))
