"""Sequential tree realization baselines (Section 5's classical substrate).

A degree sequence is realizable by a tree iff every degree is positive and
``sum(d) == 2(n-1)`` (Harary [19]; the paper's Algorithm 4 pseudocode has a
typo — ``2(n-2)`` — which we correct here and in the distributed code).

Two canonical constructions:

* :func:`max_diameter_tree` — the caterpillar built by Algorithm 4's
  strategy: all non-leaves on a spine, leaves appended by prefix sums.
  This maximizes diameter.
* :func:`greedy_tree` — the greedy tree ``T_G`` of Smith–Székely–Wang
  [30], built by Algorithm 5's strategy: highest degrees as close to the
  root as possible.  Lemma 15 proves it minimizes diameter.

:func:`min_tree_diameter_bruteforce` enumerates *all* trees with the given
degree sequence via Prüfer sequences (tiny ``n`` only) and is the oracle
against which Theorem 16's optimality claim is tested.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

Edge = Tuple[int, int]


def is_tree_realizable(degrees: Sequence[int]) -> bool:
    """Harary's condition: all degrees >= 1 and sum == 2(n-1).

    ``n == 1`` is the trivial single-vertex tree with degree 0.
    """
    n = len(degrees)
    if n == 0:
        return False
    if n == 1:
        return degrees[0] == 0
    return all(d >= 1 for d in degrees) and sum(degrees) == 2 * (n - 1)


def _sorted_order(degrees: Sequence[int]) -> List[int]:
    """Vertex indices sorted by degree, non-increasing (ties by index)."""
    return sorted(range(len(degrees)), key=lambda i: (-degrees[i], i))


def max_diameter_tree(degrees: Sequence[int]) -> Optional[List[Edge]]:
    """Caterpillar realization (Algorithm 4's strategy), or ``None``.

    Non-leaves form a spine in non-increasing degree order; the spine is
    extended by one leaf; remaining leaves attach to spine vertices by the
    prefix-sum schedule ``p_i = 2 + sum_{j<i}(d_j - 2)``.
    """
    n = len(degrees)
    if not is_tree_realizable(degrees):
        return None
    if n == 1:
        return []
    order = _sorted_order(degrees)
    d = [degrees[v] for v in order]
    k = sum(1 for x in d if x > 1)

    edges: List[Edge] = []
    if k == 0:
        # Only possible for n == 2: a single edge.
        edges.append((order[0], order[1]))
        return _canon(edges)

    # Spine: x_1 - x_2 - ... - x_k - x_{k+1}  (x_{k+1} is a leaf).
    for i in range(k):
        edges.append((order[i], order[i + 1]))

    # Leaves by prefix sums: x_i (1-based) gets leaves at positions
    # k + p_i + I ... k + p_i + d_i - 2 (1-based), I = 0 for i=1 else 1.
    prefix = 0  # sum_{j<i} (d_j - 2)
    for i in range(1, k + 1):
        di = d[i - 1]
        p_i = 2 + prefix
        lead = 0 if i == 1 else 1
        # Positions (1-based) of leaves assigned to x_i.
        start = k + p_i + lead
        stop = k + p_i + di - 2  # inclusive
        for pos in range(start, stop + 1):
            edges.append((order[i - 1], order[pos - 1]))
        prefix += di - 2
    return _canon(edges)


def greedy_tree(degrees: Sequence[int]) -> Optional[List[Edge]]:
    """Greedy tree ``T_G`` (Algorithm 5's strategy), or ``None``.

    Sort non-increasing; the root adopts the next ``d_1`` vertices, then
    each subsequent vertex adopts the next ``d_i - 1`` parentless
    vertices, via prefix sums ``p_i = 2 + sum_{j<i}(d_j - 1)``.
    """
    n = len(degrees)
    if not is_tree_realizable(degrees):
        return None
    if n == 1:
        return []
    order = _sorted_order(degrees)
    d = [degrees[v] for v in order]

    edges: List[Edge] = []
    prefix = 0  # sum_{j<i} (d_j - 1)
    for i in range(1, n + 1):
        di = d[i - 1]
        p_i = 2 + prefix
        lead = 0 if i == 1 else 1
        # Children at positions p_i + I ... p_i + d_i - 1 (1-based).
        start = p_i + lead
        stop = p_i + di - 1  # inclusive
        for pos in range(start, stop + 1):
            if pos > n:
                break
            edges.append((order[i - 1], order[pos - 1]))
        prefix += di - 1
        if len(edges) >= n - 1:
            break
    return _canon(edges[: n - 1])


def tree_diameter(edges: Sequence[Edge], n: int) -> int:
    """Diameter of a tree given as an edge list (double BFS)."""
    if n <= 1:
        return 0
    adjacency: Dict[int, List[int]] = {i: [] for i in range(n)}
    for u, v in edges:
        adjacency[u].append(v)
        adjacency[v].append(u)

    def bfs_far(start: int) -> Tuple[int, int]:
        dist = {start: 0}
        queue = deque([start])
        far, far_d = start, 0
        while queue:
            x = queue.popleft()
            for y in adjacency[x]:
                if y not in dist:
                    dist[y] = dist[x] + 1
                    if dist[y] > far_d:
                        far, far_d = y, dist[y]
                    queue.append(y)
        return far, far_d

    a, _ = bfs_far(0)
    _, diameter = bfs_far(a)
    return diameter


def min_tree_diameter_bruteforce(degrees: Sequence[int]) -> Optional[int]:
    """Minimum diameter over *all* trees realizing ``degrees``.

    Enumerates Prüfer sequences in which vertex ``i`` appears exactly
    ``d_i - 1`` times.  Exponential; intended for ``n <= 9`` oracle use.
    """
    n = len(degrees)
    if not is_tree_realizable(degrees):
        return None
    if n <= 2:
        return n - 1
    symbols: List[int] = []
    for i, d in enumerate(degrees):
        symbols.extend([i] * (d - 1))
    if len(symbols) != n - 2:
        return None

    best: Optional[int] = None
    for seq in set(itertools.permutations(symbols)):
        edges = _prufer_to_tree(list(seq), n)
        diameter = tree_diameter(edges, n)
        if best is None or diameter < best:
            best = diameter
    return best


def _prufer_to_tree(seq: List[int], n: int) -> List[Edge]:
    """Decode a Prüfer sequence into a labeled tree on ``0..n-1``."""
    degree = [1] * n
    for x in seq:
        degree[x] += 1
    edges: List[Edge] = []
    # Min-leaf selection with a simple pointer + set (n is tiny here).
    import heapq

    leaves = [i for i in range(n) if degree[i] == 1]
    heapq.heapify(leaves)
    for x in seq:
        leaf = heapq.heappop(leaves)
        edges.append((min(leaf, x), max(leaf, x)))
        degree[x] -= 1
        if degree[x] == 1:
            heapq.heappush(leaves, x)
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    edges.append((min(u, v), max(u, v)))
    return edges


def _canon(edges: List[Edge]) -> List[Edge]:
    """Normalize edge orientation to (small, large)."""
    return [(min(u, v), max(u, v)) for u, v in edges]
