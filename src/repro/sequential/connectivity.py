"""Centralized connectivity-threshold realization baseline (Frank–Chou [15]).

Given per-node thresholds ``rho(v)`` (the paper's reduction of the pairwise
matrix ``sigma`` to its row maxima), build a graph ``G`` with
``Conn_G(u, v) >= min(rho(u), rho(v))`` for all pairs, using at most twice
the optimal number of edges.

The construction mirrors Section 6.2's two phases, executed centrally:

1. sort by ``rho`` non-increasing; realize the top ``d0 + 1`` nodes'
   thresholds as a degree sequence (via the envelope realizer, since the
   prefix need not be graphic);
2. every later node ``x_i`` connects to its ``rho(x_i)`` immediate
   predecessors in the sorted order.

The edge lower bound ``ceil(sum(rho) / 2)`` is what any realization must
pay (every node needs degree >= rho(v)); the 2-approximation claim is
``|E| <= sum(rho)``.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Set, Tuple

from repro.sequential.envelope import sequential_envelope

Edge = Tuple[int, int]


def connectivity_lower_bound_edges(rho: Sequence[int]) -> int:
    """``ceil(sum(rho)/2)`` — the degree-based edge lower bound."""
    return math.ceil(sum(rho) / 2)


def frank_chou_realization(rho: Sequence[int]) -> List[Edge]:
    """Centralized 2-approximate connectivity-threshold realization.

    Parameters
    ----------
    rho:
        ``rho[i] >= 0`` is node ``i``'s threshold; must satisfy
        ``rho[i] <= n - 1`` (a simple graph cannot give more).

    Returns
    -------
    Edge list over the caller's indices satisfying
    ``Conn(u, v) >= min(rho[u], rho[v])`` with ``|E| <= sum(rho)``.
    """
    n = len(rho)
    if any(r < 0 for r in rho):
        raise ValueError("thresholds must be non-negative")
    if any(r > n - 1 for r in rho):
        raise ValueError("a simple graph cannot satisfy rho > n-1")
    if n <= 1 or all(r == 0 for r in rho):
        return []

    order = sorted(range(n), key=lambda i: (-rho[i], i))
    r = [rho[v] for v in order]
    d0 = r[0]

    edges: Set[Edge] = set()

    # Phase 1: realize (r_1, ..., r_{d0+1}) among the top d0+1 nodes.
    head_count = min(d0 + 1, n)
    head_requests = r[:head_count]
    head_edges, _ = sequential_envelope(head_requests)
    for a, b in head_edges:
        u, v = order[a], order[b]
        edges.add((min(u, v), max(u, v)))

    # Phase 2: x_i connects to its rho(x_i) predecessors.
    for i in range(head_count, n):
        for back in range(1, r[i] + 1):
            u, v = order[i], order[i - back]
            edges.add((min(u, v), max(u, v)))

    return sorted(edges)
