"""The classical (sequential) Havel–Hakimi algorithm (§3.3 of the paper).

Given a degree sequence, repeatedly satisfy a maximum-degree vertex ``v``
by connecting it to the ``d(v)`` highest-degree remaining vertices.  The
sequence is graphic iff the process completes with all degrees zero and no
degree ever goes negative.

The implementation keeps vertices in buckets by residual degree so each
step costs O(d(v) + 1) amortized, for O(sum d_i) total — the bound the
paper quotes.  Vertex labels are preserved so the output edges refer to
the caller's indices.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple


def havel_hakimi(degrees: Sequence[int]) -> Optional[List[Tuple[int, int]]]:
    """Realize ``degrees`` as a simple graph, or return ``None``.

    Parameters
    ----------
    degrees:
        ``degrees[i]`` is the required degree of vertex ``i`` (any order).

    Returns
    -------
    list of edges ``(i, j)`` with ``i < j`` realizing the sequence, or
    ``None`` when the sequence is not graphic.

    Raises
    ------
    ValueError
        On negative entries.
    """
    n = len(degrees)
    if any(d < 0 for d in degrees):
        raise ValueError("degrees must be non-negative")
    if n == 0:
        return []
    if any(d > n - 1 for d in degrees):
        return None
    if sum(degrees) % 2 != 0:
        return None

    # residual[i]: degree still required at vertex i.
    residual = list(degrees)
    # Vertices sorted by residual degree, non-increasing; re-sorted lazily.
    order = sorted(range(n), key=lambda i: -residual[i])
    edges: List[Tuple[int, int]] = []

    while True:
        order.sort(key=lambda i: -residual[i])
        v = order[0]
        dv = residual[v]
        if dv == 0:
            break
        if dv > n - 1:
            return None
        # Connect v to the next dv highest-residual vertices.
        targets = order[1 : dv + 1]
        if len(targets) < dv:
            return None
        residual[v] = 0
        for u in targets:
            if residual[u] == 0:
                return None  # would go negative: not graphic
            residual[u] -= 1
            edges.append((min(u, v), max(u, v)))

    if any(r != 0 for r in residual):
        return None
    return edges


def degree_sequence_of(edges: Sequence[Tuple[int, int]], n: int) -> List[int]:
    """Degree sequence of an edge list over vertices ``0..n-1``."""
    deg = [0] * n
    seen: Set[Tuple[int, int]] = set()
    for u, v in edges:
        key = (min(u, v), max(u, v))
        if u == v:
            raise ValueError(f"self-loop at {u}")
        if key in seen:
            raise ValueError(f"duplicate edge {key}")
        seen.add(key)
        deg[u] += 1
        deg[v] += 1
    return deg
