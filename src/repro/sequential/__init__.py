"""Classical (centralized) baselines used as oracles and comparison points.

The paper builds on a half-century of sequential graph-realization theory;
this subpackage reimplements the pieces it relies on from scratch:

* Erdős–Gallai graphicality characterization [10];
* the constructive Havel–Hakimi algorithm [18, 20];
* upper-envelope realization of non-graphic sequences (§4.3's baseline,
  in the spirit of Hell–Kirkpatrick [21]);
* tree realizability and the two canonical tree constructions: the
  caterpillar (maximum diameter) and the greedy tree ``T_G`` of
  Smith–Székely–Wang [30] (minimum diameter);
* the Frank–Chou style centralized 2-approximation for connectivity
  threshold realization [15].

Distributed outputs are validated against these oracles in the test suite.
"""

from repro.sequential.erdos_gallai import erdos_gallai_check, is_graphic
from repro.sequential.havel_hakimi import havel_hakimi
from repro.sequential.envelope import sequential_envelope
from repro.sequential.trees import (
    greedy_tree,
    is_tree_realizable,
    max_diameter_tree,
    min_tree_diameter_bruteforce,
)
from repro.sequential.connectivity import (
    connectivity_lower_bound_edges,
    frank_chou_realization,
)

__all__ = [
    "connectivity_lower_bound_edges",
    "erdos_gallai_check",
    "frank_chou_realization",
    "greedy_tree",
    "havel_hakimi",
    "is_graphic",
    "is_tree_realizable",
    "max_diameter_tree",
    "min_tree_diameter_bruteforce",
    "sequential_envelope",
]
