"""Erdős–Gallai characterization of graphic sequences.

A non-increasing sequence ``d_1 >= ... >= d_n`` of non-negative integers is
*graphic* (realizable by a simple undirected graph) iff the degree sum is
even and, for every ``k`` in ``[1, n]``::

    sum_{i<=k} d_i  <=  k(k-1) + sum_{i>k} min(d_i, k)

This module implements the check in O(n log n) (the sort dominates; the
inequality sweep is O(n) using a two-pointer over the sorted tail).
"""

from __future__ import annotations

from typing import Sequence


def erdos_gallai_check(degrees: Sequence[int]) -> bool:
    """Return True iff ``degrees`` is graphic (order irrelevant).

    Raises ``ValueError`` on negative entries — a negative requirement is
    malformed input, not merely unrealizable.
    """
    n = len(degrees)
    if n == 0:
        return True
    if any(d < 0 for d in degrees):
        raise ValueError("degrees must be non-negative")
    if any(d > n - 1 for d in degrees):
        return False
    if sum(degrees) % 2 != 0:
        return False

    d = sorted(degrees, reverse=True)
    suffix = [0] * (n + 1)
    for i in range(n - 1, -1, -1):
        suffix[i] = suffix[i + 1] + d[i]

    prefix = 0
    # sum_{i>k} min(d_i, k): for non-increasing d, min(d_i, k) == k exactly
    # while d_i >= k; binary-search the boundary, use suffix sums past it.
    for k in range(1, n + 1):
        prefix += d[k - 1]
        lo, hi = k, n
        while lo < hi:
            mid = (lo + hi) // 2
            if d[mid] >= k:
                lo = mid + 1
            else:
                hi = mid
        j = lo
        tail = k * (j - k) + suffix[j]
        if prefix > k * (k - 1) + tail:
            return False
    return True


def is_graphic(degrees: Sequence[int]) -> bool:
    """Alias of :func:`erdos_gallai_check` with a friendlier name."""
    return erdos_gallai_check(degrees)
