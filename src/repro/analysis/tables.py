"""Plain-text table rendering for benches and EXPERIMENTS.md.

No plotting dependencies: the harness prints the same rows/series a
paper table would contain, in fixed-width text that drops straight into
Markdown code fences.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render a fixed-width text table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        line = "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        lines.append(line)
        if idx == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def series_summary(label: str, xs: Sequence, ys: Sequence[float]) -> str:
    """One-line series summary: label, endpoints, min/max."""
    if not ys:
        return f"{label}: (empty)"
    return (
        f"{label}: x={list(xs)[0]}..{list(xs)[-1]} "
        f"y_first={ys[0]:.3g} y_last={ys[-1]:.3g} "
        f"y_min={min(ys):.3g} y_max={max(ys):.3g}"
    )
