"""Scaling fits: turning (n, rounds) series into reproduction evidence.

The paper's claims are asymptotic; the reproduction evidence we report is

* a **log-log power-law fit**: ``rounds ≈ c * x^alpha`` — for an
  O(polylog) protocol the fitted ``alpha`` against ``n`` stays near 0
  versus any power of n; for an O(√m) protocol the fit against m gives
  ``alpha ≈ 0.5``;
* **bound-normalised ratios**: ``rounds / bound(x)`` — flat or falling
  curves mean the bound's shape is right.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class ScalingFit:
    """Least-squares fit of ``y ≈ c * x^alpha`` on log-log axes."""

    alpha: float
    constant: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.constant * (x**self.alpha)


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> ScalingFit:
    """Fit ``y = c * x^alpha`` by linear regression in log space."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) points")
    log_x = np.log(np.asarray(xs, dtype=float))
    log_y = np.log(np.maximum(1e-12, np.asarray(ys, dtype=float)))
    alpha, intercept = np.polyfit(log_x, log_y, 1)
    predicted = alpha * log_x + intercept
    ss_res = float(np.sum((log_y - predicted) ** 2))
    ss_tot = float(np.sum((log_y - log_y.mean()) ** 2))
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return ScalingFit(alpha=float(alpha), constant=float(math.exp(intercept)), r_squared=r_squared)


def fit_polylog_ratio(
    ns: Sequence[int], rounds: Sequence[int], power: int
) -> List[float]:
    """``rounds / log2(n)^power`` series — flat for Õ(log^power) protocols."""
    out = []
    for n, r in zip(ns, rounds):
        out.append(r / max(1.0, math.log2(max(2, n)) ** power))
    return out


def bound_ratios(
    xs: Sequence[float],
    rounds: Sequence[int],
    bound: Callable[[float], float],
) -> List[float]:
    """``rounds_i / bound(x_i)`` for an arbitrary bound function."""
    return [r / max(1.0, bound(x)) for x, r in zip(xs, rounds)]


def is_flat_or_decreasing(series: Sequence[float], slack: float = 1.35) -> bool:
    """Heuristic evidence check: no sustained growth beyond ``slack``.

    Compares the mean of the last two entries against the mean of the
    first two — generous enough to absorb small-n noise, tight enough to
    catch a wrong exponent (which grows without bound).
    """
    if len(series) < 3:
        return True
    first = sum(series[:2]) / 2
    last = sum(series[-2:]) / 2
    return last <= slack * max(first, 1e-9)
