"""Analysis utilities for the benchmark harness: scaling fits and tables."""

from repro.analysis.scaling import (
    ScalingFit,
    bound_ratios,
    fit_power_law,
    fit_polylog_ratio,
)
from repro.analysis.tables import format_table, series_summary

__all__ = [
    "ScalingFit",
    "bound_ratios",
    "fit_polylog_ratio",
    "fit_power_law",
    "format_table",
    "series_summary",
]
