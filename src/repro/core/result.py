"""Result types shared by the realization algorithms.

Every distributed realization returns a structured result carrying the
verdict, the overlay (as recorded in node memory — implicit edges are
known to at least one endpoint, explicit edges to both), and the round /
message statistics for the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.ncc.metrics import RoundStats

Edge = Tuple[int, int]

#: Node-memory key under which realizations record adjacency.
NBRS_KEY = "nbrs"


@dataclass(frozen=True)
class RealizationResult:
    """Outcome of a degree-sequence realization (Theorems 11–13).

    Attributes
    ----------
    realized:
        True iff the protocol produced a realization (for envelope mode,
        always True for admissible inputs).
    announced_unrealizable_by:
        Node IDs that output ``UNREALIZABLE`` (the paper requires at
        least one on non-graphic inputs in strict mode).
    edges:
        The realized overlay's edge set (union of node adjacency).
    realized_degrees:
        ``{node: degree}`` in the realized overlay.
    phases:
        Number of while-loop phases Algorithm 3 executed.
    explicit:
        Whether the run was asked to (and did) make every edge known to
        both endpoints.
    stats:
        Network meter snapshot at completion.
    """

    realized: bool
    announced_unrealizable_by: Tuple[int, ...]
    edges: Tuple[Edge, ...]
    realized_degrees: Dict[int, int]
    phases: int
    explicit: bool
    stats: RoundStats

    @property
    def num_edges(self) -> int:
        return len(self.edges)


@dataclass(frozen=True)
class TreeResult:
    """Outcome of a tree realization (Theorems 14 / 16)."""

    realized: bool
    announced_unrealizable_by: Tuple[int, ...]
    edges: Tuple[Edge, ...]
    realized_degrees: Dict[int, int]
    diameter: Optional[int]
    stats: RoundStats

    @property
    def num_edges(self) -> int:
        return len(self.edges)


@dataclass(frozen=True)
class ConnectivityResult:
    """Outcome of a connectivity-threshold realization (Theorems 17 / 18)."""

    edges: Tuple[Edge, ...]
    hub: Optional[int]  # the max-rho node w (NCC1 variant)
    explicit: bool
    lower_bound_edges: int
    stats: RoundStats

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @property
    def approximation_ratio(self) -> float:
        """|E| / lower bound — Theorems 17/18 guarantee <= 2."""
        return self.num_edges / max(1, self.lower_bound_edges)


def record_edge(net, holder: int, other: int) -> None:
    """Store an (implicit) overlay edge in ``holder``'s neighbour list."""
    net.mem[holder].setdefault(NBRS_KEY, set()).add(other)


def overlay_edges(net) -> List[Edge]:
    """The overlay's edge set: union over every node's neighbour list."""
    seen: Set[Edge] = set()
    for v in net.node_ids:
        for u in net.mem[v].get(NBRS_KEY, ()):
            seen.add((min(u, v), max(u, v)))
    return sorted(seen)


def overlay_degrees(net) -> Dict[int, int]:
    """Realized degree of every node in the overlay."""
    degree = {v: 0 for v in net.node_ids}
    for u, v in overlay_edges(net):
        degree[u] += 1
        degree[v] += 1
    return degree


def explicitness_holds(net) -> bool:
    """True iff every recorded edge is known to *both* endpoints."""
    for v in net.node_ids:
        for u in net.mem[v].get(NBRS_KEY, ()):
            if v not in net.mem[u].get(NBRS_KEY, set()):
                return False
    return True
