"""The paper's contributions (Sections 4-7) as runnable protocols.

* :mod:`repro.core.degree_realization` — Algorithm 3 (Theorem 11);
* :mod:`repro.core.explicit` — explicit conversion (Theorem 12);
* :mod:`repro.core.envelope` — upper-envelope realization (Theorem 13);
* :mod:`repro.core.tree_realization` — Algorithms 4/5 (Theorems 14/16);
* :mod:`repro.core.connectivity` — Theorems 17/18 (Algorithm 6);
* :mod:`repro.core.lower_bounds` — Theorems 19/20 as measurable bounds.
"""

from repro.core.result import (
    ConnectivityResult,
    RealizationResult,
    TreeResult,
    explicitness_holds,
    overlay_degrees,
    overlay_edges,
    record_edge,
)
from repro.core.approximate import (
    ApproxRealizationResult,
    StubPairing,
    approximate_degree_realization,
)
from repro.core.degree_realization import (
    degree_realization_protocol,
    realize_degree_sequence,
)
from repro.core.explicit import (
    explicit_conversion_protocol,
    realize_degree_sequence_explicit,
)
from repro.core.envelope import (
    envelope_discrepancy,
    envelope_holds,
    realize_envelope,
)
from repro.core.tree_realization import realize_tree, tree_realization_protocol
from repro.core.connectivity import (
    connectivity_lower_bound,
    realize_connectivity_ncc0,
    realize_connectivity_ncc1,
)
from repro.core.lower_bounds import (
    DegreeLowerBounds,
    degree_lower_bounds,
    polylog_envelope,
    tightness_ratio,
)

__all__ = [
    "ApproxRealizationResult",
    "ConnectivityResult",
    "DegreeLowerBounds",
    "RealizationResult",
    "TreeResult",
    "StubPairing",
    "approximate_degree_realization",
    "connectivity_lower_bound",
    "degree_lower_bounds",
    "degree_realization_protocol",
    "envelope_discrepancy",
    "envelope_holds",
    "explicit_conversion_protocol",
    "explicitness_holds",
    "overlay_degrees",
    "overlay_edges",
    "polylog_envelope",
    "realize_connectivity_ncc0",
    "realize_connectivity_ncc1",
    "realize_degree_sequence",
    "realize_degree_sequence_explicit",
    "realize_envelope",
    "realize_tree",
    "record_edge",
    "tightness_ratio",
]
