"""Õ(1)-phase approximate degree realization (stub pairing).

The paper's contributions list announces "an Õ(1) round algorithm for
approximate degree sequence realization", but the preprint does not spell
it out.  This module provides a principled reconstruction built entirely
from the paper's own toolbox, with a precise, measurable guarantee (see
DESIGN.md §5 for the substitution record):

1. **Sort + stub intervals** (Theorem 3 + prefix sums): nodes sort by
   degree; node at position ``i`` owns the stub interval
   ``[S_i, S_i + d_i)`` on the line of ``2m`` stubs (``S_i`` = prefix sum).
2. **Shared pseudorandom pairing** (zero rounds): a seeded Feistel
   permutation ``σ`` over the stub line defines the fixed-point-free
   involution ``pair(t) = σ(σ⁻¹(t) XOR 1)``.  Every node evaluates it
   locally — the NCC's shared-randomness assumption, as in [3].
3. **Rendezvous resolution** (Theorem 8 collections): the stub line is
   cut into ``n`` blocks; block ``b`` is claimed by the node at position
   ``b`` (group id = block index — both sides derive it locally, the
   paper's group-ID agreement device).  Owners learn the intervals
   intersecting their block (one collection), answer "who owns stub u?"
   queries (a second collection), and return partner IDs (a third,
   destination-known, collection).

Both endpoints of every stub pair learn each other, so the realization is
**explicit**.  The cost is a constant number of sort/collection phases:
``Õ(m/n + Δ/log n + log n)`` rounds — Õ(1) whenever the average degree is
polylogarithmic, and within the Section-7 lower bounds (Ω(√m/log n),
Ω̃(Δ)) in general, without Algorithm 3's ``min{√m, Δ}``-phase loop.

Approximation error (measured, never hidden): a node's realized degree
falls short of its demand by one per *self-pair* (both stubs of a pair in
its own interval) and per *parallel pair* (duplicate partner, collapsed
by simple-graph dedup).  With the pseudorandom pairing the expected
shortfall is ``O(d_v^2 / m)`` per node; the T-A3 bench tracks it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.ncc.errors import ProtocolError
from repro.ncc.network import Network
from repro.core.result import (
    NBRS_KEY,
    overlay_degrees,
    overlay_edges,
    record_edge,
)
from repro.ncc.metrics import RoundStats
from repro.primitives.bbst import build_indexed_path
from repro.primitives.broadcast import global_broadcast
from repro.primitives.butterfly import ColGroup
from repro.primitives.groups import token_collect
from repro.primitives.prefix import prefix_sums
from repro.primitives.protocol import Proto, fresh_ns, ns_state, run_protocol
from repro.primitives.sorting import distributed_sort


# ---------------------------------------------------------------------- #
# Shared pseudorandom pairing                                            #
# ---------------------------------------------------------------------- #

def _mix(x: int) -> int:
    """splitmix64 finalizer — the Feistel round function's core."""
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


class StubPairing:
    """Fixed-point-free involution on ``[0, 2m)`` from a shared seed.

    A 4-round Feistel network gives a keyed permutation on ``[0, 2^b)``
    (``2^b >= 2m``); cycle-walking restricts it to ``[0, 2m)``; pairing
    XORs the lowest bit of the permuted rank (``2m`` is even, so ranks
    pair up exactly).  ``pair`` is its own inverse and ``pair(t) != t``.
    """

    ROUNDS = 4

    def __init__(self, two_m: int, seed: int) -> None:
        if two_m % 2 != 0 or two_m <= 0:
            raise ValueError("stub count must be positive and even")
        self.two_m = two_m
        bits = max(2, two_m - 1).bit_length()
        if bits % 2:
            bits += 1
        self.bits = bits
        self.half = bits // 2
        self.mask = (1 << self.half) - 1
        self.keys = [_mix(seed * 1_000_003 + r) for r in range(self.ROUNDS)]

    def _permute(self, x: int) -> int:
        left, right = x >> self.half, x & self.mask
        for key in self.keys:
            left, right = right, left ^ (_mix(right ^ key) & self.mask)
        return (left << self.half) | right

    def _unpermute(self, x: int) -> int:
        left, right = x >> self.half, x & self.mask
        for key in reversed(self.keys):
            left, right = right ^ (_mix(left ^ key) & self.mask), left
        return (left << self.half) | right

    def _rank(self, t: int) -> int:
        """Position of stub t under the walked permutation (in [0, 2m))."""
        x = self._unpermute(t)
        guard = 1 << self.bits
        while x >= self.two_m:
            x = self._unpermute(x)
            guard -= 1
            if guard <= 0:  # pragma: no cover
                raise RuntimeError("cycle walking failed")
        return x

    def _unrank(self, k: int) -> int:
        x = self._permute(k)
        guard = 1 << self.bits
        while x >= self.two_m:
            x = self._permute(x)
            guard -= 1
            if guard <= 0:  # pragma: no cover
                raise RuntimeError("cycle walking failed")
        return x

    def pair(self, t: int) -> int:
        """The partner stub of ``t`` — an involution without fixed points."""
        if not 0 <= t < self.two_m:
            raise ValueError(f"stub {t} out of range [0, {self.two_m})")
        return self._unrank(self._rank(t) ^ 1)


# ---------------------------------------------------------------------- #
# The protocol                                                           #
# ---------------------------------------------------------------------- #

@dataclass(frozen=True)
class ApproxRealizationResult:
    """Outcome of the approximate realizer, with its error accounting."""

    edges: Tuple[Tuple[int, int], ...]
    demanded: Dict[int, int]
    realized_degrees: Dict[int, int]
    self_pairs: int
    duplicate_pairs: int
    stats: RoundStats

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @property
    def l1_error(self) -> int:
        """Σ |d'_v − d_v| over all nodes."""
        return sum(
            abs(self.realized_degrees.get(v, 0) - d)
            for v, d in self.demanded.items()
        )

    @property
    def relative_error(self) -> float:
        total = sum(self.demanded.values())
        return self.l1_error / max(1, total)


def approximate_degree_realization_protocol(
    net: Network,
    degrees: Dict[int, int],
    sort_fidelity: str = "full",
    pairing_salt: int = 0,
) -> Proto:
    """Protocol: single-shot stub-pairing realization.

    Returns ``(self_pairs, duplicate_pairs)``; edges land in node memory
    (explicitly: both endpoints record and know each other).
    """
    for v, d in degrees.items():
        if d < 0:
            raise ProtocolError(f"negative degree request at node {v}")
    total = sum(degrees.values())
    if total % 2:
        raise ProtocolError(
            "approximate realization needs an even degree sum (pad one node)"
        )
    if total == 0:
        return 0, 0
    n = net.n

    # --- Phase 1: sort by degree, index, stub prefix sums. --------------
    bound = n + 1
    srt_ns, order = yield from distributed_sort(
        net, lambda v: bound - degrees[v], fidelity=sort_fidelity
    )
    root = yield from build_indexed_path(net, srt_ns, order, order[0])
    yield from prefix_sums(
        net, srt_ns, order, root, value_of=lambda v: degrees[v], key="stub0"
    )
    two_m = total
    yield from global_broadcast(
        net, srt_ns, order, root, leader=root, value=(two_m,), key="two_m"
    )
    block = max(1, math.ceil(two_m / n))
    pairing = StubPairing(two_m, seed=_mix(net.config.seed ^ (pairing_salt * 0x9E37)))

    def interval(v: int) -> Tuple[int, int]:
        start = ns_state(net, v, srt_ns)["stub0"]
        return start, start + degrees[v]

    def owner_of_block(b: int) -> int:
        return order[b % n]

    # --- Phase 2: owners learn the intervals crossing their blocks. -----
    registrations: Dict[int, List] = {}
    for v in order:
        lo, hi = interval(v)
        if lo == hi:
            continue
        for b in range(lo // block, (hi - 1) // block + 1):
            registrations.setdefault(b, []).append(
                (v, ((v,), (lo, hi - lo)))
            )
    reg_groups = [
        ColGroup(gid=b, tokens=toks, dest=None, claimant=owner_of_block(b))
        for b, toks in sorted(registrations.items())
    ]
    reg_results = yield from token_collect(net, srt_ns, reg_groups)
    block_maps: Dict[int, List[Tuple[int, int, int]]] = {}
    for b, toks in sorted(registrations.items()):
        entries = []
        for token_ids, token_data in reg_results[b]:
            entries.append((token_data[0], token_data[0] + token_data[1], token_ids[0]))
        block_maps[b] = sorted(entries)

    # --- Phase 3: partner-stub resolution queries. -----------------------
    queries: Dict[int, List] = {}  # block -> [(querier, ((querier,), (u,)))]
    local_pairs: List[Tuple[int, int]] = []  # resolved without lookup
    self_pairs = 0
    for v in order:
        lo, hi = interval(v)
        for t in range(lo, hi):
            u = pairing.pair(t)
            if lo <= u < hi:
                # partner stub is our own: a self-pair (error, dropped).
                if u > t:
                    self_pairs += 1
                continue
            b = u // block
            queries.setdefault(b, []).append((v, ((v,), (u,))))
    query_groups = [
        ColGroup(gid=b, tokens=toks, dest=None, claimant=owner_of_block(b))
        for b, toks in sorted(queries.items())
    ]
    query_results = yield from token_collect(net, srt_ns, query_groups)

    # --- Phase 4: owners reply with partner IDs (dest-known collection). -
    reply_tokens: Dict[int, List] = {}  # querier -> [(owner, ((partner,), ()))]
    for b, _toks in sorted(queries.items()):
        owner = owner_of_block(b)
        entries = block_maps.get(b, [])
        for token_ids, token_data in query_results[b]:
            querier = token_ids[0]
            stub = token_data[0]
            partner = None
            for lo_e, hi_e, who in entries:
                if lo_e <= stub < hi_e:
                    partner = who
                    break
            if partner is None:
                raise ProtocolError(f"stub {stub} unresolved at block {b}")
            reply_tokens.setdefault(querier, []).append(
                (owner, ((partner,), ()))
            )
    pos_of = {v: i for i, v in enumerate(order)}
    reply_groups = [
        ColGroup(gid=n + pos_of[querier], tokens=toks, dest=querier)
        for querier, toks in sorted(reply_tokens.items(), key=lambda kv: pos_of[kv[0]])
    ]
    reply_results = yield from token_collect(net, srt_ns, reply_groups)

    # --- Phase 5: record edges; count duplicate-pair drops. --------------
    duplicate_pairs = 0
    for querier, _toks in sorted(reply_tokens.items(), key=lambda kv: pos_of[kv[0]]):
        partners = [ids[0] for ids, _data in reply_results[n + pos_of[querier]]]
        seen = set(net.mem[querier].get(NBRS_KEY, set()))
        for partner in partners:
            if partner == querier:
                continue
            if partner in seen:
                duplicate_pairs += 1
                continue
            seen.add(partner)
            record_edge(net, querier, partner)
    return self_pairs, duplicate_pairs // 2


def approximate_degree_realization(
    net: Network,
    degrees: Dict[int, int],
    sort_fidelity: str = "full",
    repair_rounds: int = 0,
) -> ApproxRealizationResult:
    """Run the Õ(1)-phase stub-pairing realizer and account its error.

    ``repair_rounds`` extra iterations re-pair the residual shortfall
    (demand minus realized degree) with fresh pairing seeds; each
    iteration shrinks the expected error geometrically at the cost of
    one more constant-phase pass.
    """

    for v, d in degrees.items():
        if d < 0:
            raise ProtocolError(f"negative degree request at node {v}")
    if sum(degrees.values()) % 2:
        raise ProtocolError(
            "approximate realization needs an even degree sum (pad one node)"
        )

    def run_once(demands: Dict[int, int], seed_shift: int):
        proto = approximate_degree_realization_protocol(
            net, demands, sort_fidelity=sort_fidelity, pairing_salt=seed_shift
        )
        return run_protocol(net, proto)

    total_self = 0
    total_dup = 0
    active = {v: d for v, d in degrees.items()}
    for iteration in range(1 + max(0, repair_rounds)):
        if sum(active.values()) % 2:
            # Parity fix: shave the largest residual by one for this pass.
            worst = max(active, key=lambda v: active[v])
            if active[worst] == 0:
                break
            active = dict(active)
            active[worst] -= 1
        if sum(active.values()) == 0:
            break
        self_pairs, duplicate_pairs = run_once(active, iteration)
        total_self += self_pairs
        total_dup += duplicate_pairs
        realized = overlay_degrees(net)
        active = {
            v: max(0, degrees[v] - realized.get(v, 0)) for v in degrees
        }
        if sum(active.values()) == 0:
            break
    return ApproxRealizationResult(
        edges=tuple(overlay_edges(net)),
        demanded=dict(degrees),
        realized_degrees=overlay_degrees(net),
        self_pairs=total_self,
        duplicate_pairs=total_dup,
        stats=net.stats(),
    )
