"""Implicit → explicit realization (Section 4.2, Theorem 12).

After Algorithm 3, each overlay edge ``(u, v)`` is known to exactly one
endpoint (the member ``u`` stored the head ``v``'s ID).  To make the
realization explicit, every holder must introduce itself to the other
endpoint.  Two interchangeable mechanisms:

* ``method="collection"`` (default; the paper's route): one token-
  collection group per edge target (Theorem 8) — the holders' IDs are
  the tokens, the target is the destination; rate shares keep strict cap
  enforcement happy, cost ``O(m/n + Δ/log n + log n)``-shaped.
* ``method="random"`` (ablation): every holder picks a uniformly random
  round in a window of length ``Θ(Δ/log n + log n)`` and sends directly.
  Cap overflows are Chernoff-rare; run the network in ``DEFER`` mode so
  rare bursts queue instead of aborting (Las Vegas behaviour, visible as
  round-count tails across seeds).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ncc.config import EnforcementMode
from repro.ncc.errors import ProtocolError
from repro.ncc.message import msg
from repro.ncc.network import Network
from repro.core.result import (
    NBRS_KEY,
    RealizationResult,
    overlay_degrees,
    overlay_edges,
    record_edge,
)
from repro.core.degree_realization import degree_realization_protocol
from repro.primitives.bbst import build_indexed_path
from repro.primitives.butterfly import ColGroup
from repro.primitives.groups import token_collect
from repro.primitives.path_ops import build_undirected_path
from repro.primitives.protocol import Proto, fresh_ns, ns_state, run_protocol, take


def explicit_conversion_protocol(net: Network, method: str = "collection") -> Proto:
    """Protocol: make every recorded overlay edge known to both endpoints.

    Returns the number of introductions performed.
    """
    # Holders of implicit edges: u knows v, v may not know u.
    pending: Dict[int, List[int]] = {}
    for u in net.node_ids:
        for v in net.mem[u].get(NBRS_KEY, ()):
            if u not in net.mem[v].get(NBRS_KEY, set()):
                pending.setdefault(v, []).append(u)
    total = sum(len(holders) for holders in pending.values())
    if total == 0:
        return 0

    if method == "collection":
        # An indexed path over Gk order provides butterfly wiring.
        ns = fresh_ns("xc")
        path_head = yield from build_undirected_path(net, ns)
        yield from build_indexed_path(net, ns, list(net.node_ids), path_head)
        groups = []
        for gid, (target, holders) in enumerate(sorted(pending.items())):
            groups.append(
                ColGroup(
                    gid=gid,
                    tokens={u: ((u,), ()) for u in holders},
                    dest=target,
                )
            )
        results = yield from token_collect(net, ns, groups)
        for gid, (target, _holders) in enumerate(sorted(pending.items())):
            for token_ids, _data in results[gid]:
                record_edge(net, target, token_ids[0])
        return total

    if method == "random":
        if net.config.enforcement is EnforcementMode.STRICT:
            raise ProtocolError(
                "random-schedule conversion needs DEFER or UNBOUNDED enforcement"
            )
        share = max(1, net.recv_cap // 2)
        max_in = max(len(holders) for holders in pending.values())
        log_n = max(1, math.ceil(math.log2(max(2, net.n))))
        window = math.ceil(8 * max_in / net.recv_cap) + 2 * log_n
        tag = fresh_ns("xr")
        schedule: Dict[int, List[Tuple[int, int]]] = {}
        for target, holders in pending.items():
            for u in holders:
                r = net.rng.randrange(window)
                schedule.setdefault(r, []).append((u, target))
        done = 0
        for r in range(window):
            sends = [
                (u, target, msg(tag, ids=(u,)))
                for (u, target) in schedule.get(r, ())
            ]
            inboxes = yield sends
            for v in net.node_ids:
                for message in take(inboxes, v, tag):
                    record_edge(net, v, message.ids[0])
                    done += 1
        while done < total:
            inboxes = yield []
            for v in net.node_ids:
                for message in take(inboxes, v, tag):
                    record_edge(net, v, message.ids[0])
                    done += 1
        return total

    raise ValueError(f"unknown conversion method {method!r}")


def realize_degree_sequence_explicit(
    net: Network,
    degrees: Dict[int, int],
    mode: str = "strict",
    sort_fidelity: str = "full",
    method: str = "collection",
) -> RealizationResult:
    """Theorem 12: implicit realization (Algorithm 3) + explicit conversion."""

    def proto():
        outcome = yield from degree_realization_protocol(
            net, degrees, mode=mode, sort_fidelity=sort_fidelity
        )
        if outcome["realized"]:
            yield from explicit_conversion_protocol(net, method=method)
        return outcome

    outcome = run_protocol(net, proto())
    return RealizationResult(
        realized=outcome["realized"],
        announced_unrealizable_by=tuple(outcome["violators"]),
        edges=tuple(overlay_edges(net)),
        realized_degrees=overlay_degrees(net),
        phases=outcome["phases"],
        explicit=outcome["realized"],
        stats=net.stats(),
    )
