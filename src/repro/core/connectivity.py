"""Connectivity threshold realizations (Section 6, Theorems 17 and 18).

Given per-node thresholds ``ρ(v)`` (the row maxima of the pairwise demand
matrix σ), build an overlay with ``Conn(u, v) >= min(ρ(u), ρ(v))`` using
at most twice the optimal edge count ``⌈Σρ/2⌉``.

* **NCC1 implicit, Õ(1)** (Theorem 17): find the max-ρ node ``w`` by
  aggregation, broadcast its address; every other node locally picks
  ``ρ(v)`` partners including ``w`` (it knows all IDs) and records the
  edges.  The star through ``w`` plus the two-hop detours give the
  required edge-disjoint paths (Menger).

* **NCC0/NCC1 explicit, Õ(Δ)** (Theorem 18, Algorithm 6): sort by ρ;
  realize the prefix ``(ρ(x_1) ... ρ(x_{d0+1}))`` as a degree sequence
  among the top ``d0+1`` nodes with the envelope realizer (Theorem 13);
  then every later node floods its ID to its ``ρ`` immediate
  predecessors along the sorted path (pipelined, ``O(Δ)`` rounds), which
  reply with theirs to make the edges explicit.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.ncc.config import Variant
from repro.ncc.errors import ProtocolError
from repro.ncc.message import msg
from repro.ncc.network import Network
from repro.core.degree_realization import degree_realization_protocol
from repro.core.explicit import explicit_conversion_protocol
from repro.core.result import (
    ConnectivityResult,
    overlay_edges,
    record_edge,
)
from repro.primitives.bbst import build_indexed_path
from repro.primitives.broadcast import global_aggregate, global_broadcast
from repro.primitives.path_ops import build_undirected_path
from repro.primitives.protocol import Proto, fresh_ns, ns_state, run_protocol, take
from repro.primitives.sorting import distributed_sort


def connectivity_lower_bound(rho: Dict[int, int]) -> int:
    """``⌈Σρ/2⌉`` — every node needs degree >= ρ(v) (§6's lower bound)."""
    return math.ceil(sum(rho.values()) / 2)


# ---------------------------------------------------------------------- #
# Theorem 17: NCC1, implicit, Õ(1)                                       #
# ---------------------------------------------------------------------- #

def connectivity_ncc1_protocol(net: Network, rho: Dict[int, int]) -> Proto:
    """Protocol: §6.1's two-step NCC1 realization.  Returns hub ``w``."""
    if net.config.variant is not Variant.NCC1:
        raise ProtocolError("Theorem 17's algorithm requires the NCC1 model")
    n = net.n
    for v, r in rho.items():
        if r < 0 or r > n - 1:
            raise ProtocolError(f"threshold rho={r} at node {v} is infeasible")

    ns = fresh_ns("cn1")
    # Aggregation tree over index order (IDs are common knowledge, but a
    # bounded-degree structure still bounds per-round message load).
    head = yield from build_undirected_path(net, ns)
    root = yield from build_indexed_path(net, ns, list(net.node_ids), head)

    # Step 1: find w maximizing (rho, id) — encoded in a single word.
    universe = net.ids.universe + 1

    def encoded(v: int) -> int:
        return rho[v] * universe + v

    best = yield from global_aggregate(
        net, ns, list(net.node_ids), root, leader=root,
        value_of=encoded, combine=max,
    )
    hub = best % universe
    yield from global_broadcast(
        net, ns, list(net.node_ids), root, leader=root,
        value=(), value_ids=(hub,), key="hub",
    )

    # Step 2: local edge selection (zero rounds — NCC1 knows all IDs).
    all_ids = sorted(net.node_ids)
    for v in net.node_ids:
        if v == hub:
            continue
        need = rho[v]
        if need == 0:
            continue
        chosen: List[int] = [hub]
        for candidate in all_ids:
            if len(chosen) >= need:
                break
            if candidate != v and candidate != hub:
                chosen.append(candidate)
        for u in chosen:
            record_edge(net, v, u)
    return hub


def realize_connectivity_ncc1(net: Network, rho: Dict[int, int]) -> ConnectivityResult:
    """Theorem 17: implicit 2-approximate realization in Õ(1) NCC1 rounds."""
    hub = run_protocol(net, connectivity_ncc1_protocol(net, rho))
    return ConnectivityResult(
        edges=tuple(overlay_edges(net)),
        hub=hub,
        explicit=False,
        lower_bound_edges=connectivity_lower_bound(rho),
        stats=net.stats(),
    )


# ---------------------------------------------------------------------- #
# Theorem 18: NCC0 (and NCC1), explicit, Õ(Δ) — Algorithm 6              #
# ---------------------------------------------------------------------- #

def connectivity_ncc0_protocol(
    net: Network, rho: Dict[int, int], sort_fidelity: str = "full"
) -> Proto:
    """Protocol: Algorithm 6.  Returns the number of phase-2 edges."""
    n = net.n
    for v, r in rho.items():
        if r < 0 or r > n - 1:
            raise ProtocolError(f"threshold rho={r} at node {v} is infeasible")
    if n == 1:
        return 0

    bound = n + 1

    def sort_key(v: int) -> int:
        return bound - rho[v]

    # Step 1: sort by non-increasing rho; index the sorted path.
    srt_ns, order = yield from distributed_sort(
        net, sort_key, fidelity=sort_fidelity
    )
    root = yield from build_indexed_path(net, srt_ns, order, order[0])

    # Step 2: broadcast d0 = rho(x1).
    d0 = rho[root]
    yield from global_broadcast(
        net, srt_ns, order, root, leader=root, value=(d0,), key="d0"
    )

    # Step 3: envelope-realize the prefix (rho(x1)..rho(x_{d0+1})) among
    # the top d0+1 nodes (Theorem 13), then make it explicit (the paper's
    # phase-1 graph G1 is explicit: Theorem 13 realizes explicitly).
    head_count = min(d0 + 1, n)
    prefix_members = order[:head_count]
    if head_count >= 2 and d0 >= 1:
        sub_ns = fresh_ns("cn0p")
        for idx, v in enumerate(prefix_members):
            state = ns_state(net, v, sub_ns)
            state["pred"] = prefix_members[idx - 1] if idx > 0 else None
            state["succ"] = (
                prefix_members[idx + 1] if idx < head_count - 1 else None
            )
        yield from degree_realization_protocol(
            net,
            {v: rho[v] for v in prefix_members},
            mode="envelope",
            sort_fidelity=sort_fidelity,
            members=prefix_members,
            path_ns=sub_ns,
            head=prefix_members[0],
        )
        yield from explicit_conversion_protocol(net, method="collection")

    # Step 4: every x_i (i > d0+1) floods its ID to its rho(x_i)
    # predecessors, hop by hop along the sorted path; recipients record
    # the edge and reply with their own IDs (explicitness).
    tag, reply_tag = f"{srt_ns}:flood", f"{srt_ns}:intro"
    share = max(1, net.send_cap // 3)
    queues: Dict[int, deque] = {v: deque() for v in net.node_ids}
    introductions = 0
    expected = 0
    for pos in range(head_count, n):
        v = order[pos]
        if rho[v] >= 1:
            queues[v].append((v, rho[v]))
            expected += rho[v]

    guard = 0
    limit = 8 * (n + expected + 8)
    while introductions < expected:
        sends = []
        for v in net.node_ids:
            queue = queues[v]
            state = ns_state(net, v, srt_ns)
            pred = state.get("pred")
            for _ in range(min(len(queue), share)):
                origin, ttl = queue.popleft()
                if pred is None:
                    raise ProtocolError("flood fell off the path head")
                sends.append((v, pred, msg(tag, ids=(origin,), data=(ttl,))))
        if not sends and introductions < expected:
            raise ProtocolError("predecessor flood stalled")
        inboxes = yield sends
        reply_sends = []
        for v in net.node_ids:
            for message in take(inboxes, v, tag):
                origin, ttl = message.ids[0], message.data[0]
                record_edge(net, v, origin)
                reply_sends.append((v, origin, msg(reply_tag, ids=(v,))))
                if ttl > 1:
                    queues[v].append((origin, ttl - 1))
        if reply_sends:
            inboxes = yield reply_sends
            for v in net.node_ids:
                for message in take(inboxes, v, reply_tag):
                    record_edge(net, v, message.ids[0])
                    introductions += 1
        guard += 1
        if guard > limit:
            raise ProtocolError("predecessor flood exceeded its round guard")
    return introductions


def realize_connectivity_ncc0(
    net: Network, rho: Dict[int, int], sort_fidelity: str = "full"
) -> ConnectivityResult:
    """Theorem 18: explicit 2-approximate realization in Õ(Δ) rounds."""
    run_protocol(net, connectivity_ncc0_protocol(net, rho, sort_fidelity))
    return ConnectivityResult(
        edges=tuple(overlay_edges(net)),
        hub=None,
        explicit=True,
        lower_bound_edges=connectivity_lower_bound(rho),
        stats=net.stats(),
    )
