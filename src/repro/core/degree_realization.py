"""Distributed degree realization — Algorithm 3 (Theorem 11, Lemma 10).

The parallel Havel–Hakimi: in each phase the nodes

1. sort themselves into a path by non-increasing residual degree
   (inactive, i.e. already-satisfied, nodes sink to the bottom),
2. learn the maximum degree ``δ`` (broadcast from the sorted head) and
   the count ``N`` of maximum-degree nodes plus the active count (one
   combined aggregation),
3. form ``q = max(1, ⌊N/(δ+1)⌋)`` star groups over the top ``q(δ+1)``
   positions — each group head multicasts its ID to the ``δ`` positions
   after it (range multicast over structure 𝓛, all groups in parallel),
   satisfies itself (degree := NIL) and leaves the computation, while
   members record the implicit edge and decrement their degree.

A member whose degree would go negative announces ``UNREALIZABLE``
(strict mode — the sequence is not graphic, exactly as in sequential
Havel–Hakimi) or resets to zero and keeps absorbing edges (envelope
mode — §4.3, Theorem 13).

Lemma 10 bounds the number of phases by ``O(min{√m, Δ})``; each phase is
``O(log³ n)`` rounds (sort-dominated), giving Theorem 11's
``Õ(min{√m, Δ})``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ncc.errors import ProtocolError
from repro.ncc.network import Network
from repro.core.result import (
    RealizationResult,
    overlay_degrees,
    overlay_edges,
    record_edge,
)
from repro.primitives.bbst import build_indexed_path
from repro.primitives.broadcast import global_aggregate, global_broadcast
from repro.primitives.path_ops import build_undirected_path
from repro.primitives.protocol import Proto, fresh_ns, ns_state, run_protocol
from repro.primitives.range_multicast import range_multicast
from repro.primitives.sorting import distributed_sort


def degree_realization_protocol(
    net: Network,
    degrees: Dict[int, int],
    mode: str = "strict",
    sort_fidelity: str = "full",
    members: Optional[Sequence[int]] = None,
    path_ns: Optional[str] = None,
    head: Optional[int] = None,
    ns: Optional[str] = None,
) -> Proto:
    """Protocol: Algorithm 3 over the whole network or a sub-path.

    Parameters
    ----------
    degrees:
        ``{node_id: required_degree}`` — each entry is that node's local
        input.
    mode:
        ``"strict"`` (Theorem 11: announce UNREALIZABLE on non-graphic
        input) or ``"envelope"`` (Theorem 13: clamp and over-satisfy).
    sort_fidelity:
        Passed to :func:`~repro.primitives.sorting.distributed_sort`.
    members / path_ns / head:
        Restrict to a sub-network whose current undirected path lives in
        ``path_ns`` (used by Algorithm 6's phase 1).

    Returns ``{"realized": bool, "violators": [...], "phases": int}``.
    """
    if ns is None:
        ns = fresh_ns("dr")
    scope = list(members) if members is not None else list(net.node_ids)
    bound = net.n  # degrees < n in any simple realization

    for v in scope:
        demand = degrees[v]
        if demand < 0:
            raise ProtocolError(f"negative degree request at node {v}")
        state = ns_state(net, v, ns)
        if mode == "envelope":
            demand = min(demand, len(scope) - 1)
        state["deg"] = demand
        state["active"] = True
        state["violated"] = False

    current_path_ns, current_head = path_ns, head
    phases = 0
    violators: List[int] = []
    guard = 2 * len(scope) + 8

    while True:
        phases += 1
        if phases > guard:
            raise ProtocolError("Algorithm 3 exceeded its phase guard")

        # --- Step 1: sort by non-increasing residual degree. ------------
        def sort_key(v: int) -> int:
            state = ns_state(net, v, ns)
            return (bound - state["deg"]) if state["active"] else bound + 1

        with net.phase("sort"):
            if members is None and current_path_ns is None:
                srt_ns, order = yield from distributed_sort(
                    net, sort_key, fidelity=sort_fidelity
                )
            else:
                srt_ns, order = yield from distributed_sort(
                    net,
                    sort_key,
                    fidelity=sort_fidelity,
                    members=scope,
                    path_ns=current_path_ns,
                    head=current_head,
                )
        current_path_ns, current_head = srt_ns, order[0]
        with net.phase("index"):
            root = yield from build_indexed_path(net, srt_ns, order, order[0])

        # --- Step 2: broadcast δ; aggregate N and the active count. -----
        root_state = ns_state(net, root, ns)
        delta = root_state["deg"] if root_state["active"] else 0
        yield from global_broadcast(
            net, srt_ns, order, root, leader=root, value=(delta,), key="delta"
        )
        if delta == 0:
            break

        # One combined aggregation: encode (count of degree-δ actives,
        # count of actives) in a single word.
        enc = len(scope) + 1

        def pair_value(v: int) -> int:
            state = ns_state(net, v, ns)
            is_active = 1 if state["active"] else 0
            is_max = 1 if (state["active"] and state["deg"] == delta) else 0
            return is_max * enc + is_active

        total = yield from global_aggregate(
            net, srt_ns, order, root, leader=root,
            value_of=pair_value, combine=lambda a, b: a + b,
        )
        n_max, n_active = total // enc, total % enc
        yield from global_broadcast(
            net, srt_ns, order, root, leader=root,
            value=(n_max, n_active), key="counts",
        )

        # --- Step 3: group formation (local) + parallel multicast. ------
        q = max(1, n_max // (delta + 1))
        requests = []
        head_nodes = []
        overflow = False
        for alpha in range(q):
            head_pos = alpha * (delta + 1)
            lo, hi = head_pos + 1, head_pos + delta
            if hi > n_active - 1:
                overflow = True
                if mode == "strict":
                    break
                hi = n_active - 1  # envelope: take every remaining active
            head_node = order[head_pos]
            head_nodes.append(head_node)
            if hi >= lo:
                requests.append((head_node, lo, hi, ((head_node,), ())))

        if overflow and mode == "strict":
            # The head cannot find enough partners: certifies
            # non-graphicality (as in sequential Havel-Hakimi).
            violators = [order[0]]
            ns_state(net, order[0], ns)["violated"] = True
            yield from global_broadcast(
                net, srt_ns, order, root, leader=root, value=(1,), key="verdict"
            )
            return {"realized": False, "violators": violators, "phases": phases}

        if requests:
            with net.phase("stars"):
                yield from range_multicast(net, srt_ns, requests, key="star")
        for head_node in head_nodes:
            state = ns_state(net, head_node, ns)
            state["active"] = False
            state["deg"] = 0

        phase_violation = 0
        for v in order:
            token = ns_state(net, v, srt_ns).pop("star", None)
            if token is None:
                continue
            head_id = token[0][0]
            record_edge(net, v, head_id)
            state = ns_state(net, v, ns)
            state["deg"] -= 1
            if state["deg"] < 0:
                state["deg"] = 0
                if mode == "strict":
                    state["violated"] = True
                    violators.append(v)
                    phase_violation = 1

        # --- Step 4: violation check ("broadcasts UNREALIZABLE"). -------
        if mode == "strict":
            flag = yield from global_aggregate(
                net, srt_ns, order, root, leader=root,
                value_of=lambda v: 1 if ns_state(net, v, ns)["violated"] else 0,
                combine=max,
            )
            if flag:
                yield from global_broadcast(
                    net, srt_ns, order, root, leader=root, value=(1,), key="verdict"
                )
                return {
                    "realized": False,
                    "violators": sorted(violators),
                    "phases": phases,
                }

    return {"realized": True, "violators": [], "phases": phases}


def realize_degree_sequence(
    net: Network,
    degrees: Dict[int, int],
    mode: str = "strict",
    sort_fidelity: str = "full",
) -> RealizationResult:
    """Run Algorithm 3 on ``net`` and return a structured result.

    ``mode="strict"`` reproduces Theorem 11 (implicit realization of
    graphic sequences, UNREALIZABLE announcement otherwise);
    ``mode="envelope"`` reproduces Theorem 13's upper-envelope variant.
    """
    outcome = run_protocol(
        net,
        degree_realization_protocol(
            net, degrees, mode=mode, sort_fidelity=sort_fidelity
        ),
    )
    return RealizationResult(
        realized=outcome["realized"],
        announced_unrealizable_by=tuple(outcome["violators"]),
        edges=tuple(overlay_edges(net)),
        realized_degrees=overlay_degrees(net),
        phases=outcome["phases"],
        explicit=False,
        stats=net.stats(),
    )
