"""Upper-envelope realization of non-graphic sequences (§4.3, Theorem 13).

The one-line change to Algorithm 3 ("if a degree goes negative, reset it
to 0") turns the strict realizer into an envelope realizer: every node
ends with at least its requested degree, and the realized degree total is
at most twice the requested total, because a reset node re-enters the
sorted order at the bottom and is used as a partner at most ``d_i`` more
times.

This module wraps :mod:`repro.core.degree_realization` in envelope mode
and adds the discrepancy accounting that Theorem 13 is stated in terms
of; the explicit variant chains the Theorem 12 conversion (the theorem
promises an *explicit* realization).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.ncc.network import Network
from repro.core.degree_realization import (
    degree_realization_protocol,
    realize_degree_sequence,
)
from repro.core.explicit import realize_degree_sequence_explicit
from repro.core.result import RealizationResult


def realize_envelope(
    net: Network,
    degrees: Dict[int, int],
    explicit: bool = True,
    sort_fidelity: str = "full",
) -> RealizationResult:
    """Theorem 13: realize an upper envelope of a possibly non-graphic D.

    Guarantees (validated by the test suite on admissible inputs, i.e.
    ``d_i <= n-1``): realized degree ``d'_i >= d_i`` for every node, and
    ``sum d' <= 2 sum d``.
    """
    if explicit:
        return realize_degree_sequence_explicit(
            net, degrees, mode="envelope", sort_fidelity=sort_fidelity
        )
    return realize_degree_sequence(
        net, degrees, mode="envelope", sort_fidelity=sort_fidelity
    )


def envelope_discrepancy(
    requested: Dict[int, int], result: RealizationResult
) -> int:
    """Total over-provisioning ``sum(d'_i - d_i)`` (Theorem 13's ε)."""
    return sum(
        max(0, result.realized_degrees.get(v, 0) - d) for v, d in requested.items()
    )


def envelope_holds(requested: Dict[int, int], result: RealizationResult) -> bool:
    """Check Theorem 13's two guarantees on a result."""
    n = len(requested)
    for v, d in requested.items():
        if result.realized_degrees.get(v, 0) < min(d, n - 1):
            return False
    total_requested = sum(min(d, n - 1) for d in requested.values())
    total_realized = sum(result.realized_degrees.values())
    return total_realized <= 2 * total_requested
