"""Section 7 lower bounds (Theorems 19 and 20) as measurable quantities.

The paper's lower bounds are information-theoretic: in NCC0 a node can
learn at most ``recv_cap = O(log n)`` new IDs per round, and realizations
force specific volumes of ID learning:

* **Theorem 19** (explicit): some node must learn ``Δ`` neighbour IDs →
  ``Ω(Δ / log n)`` rounds on *every* instance.
* **Theorem 20** (implicit): on the family ``D*`` (all degree mass on the
  first ``k = ⌊√m⌋`` nodes) the top-``k`` nodes jointly learn ``Ω(m)``
  IDs, so one of them learns ``Ω(√m)`` → ``Ω(√m / log n)`` rounds; and
  on the regular family ``(Δ, ..., Δ)`` there are instances needing
  ``Ω(Δ)`` rounds.

This module computes the instance-specific bound values in the
simulator's own units (using its actual ``recv_cap``), so benches report
dimensionless measured/lower-bound ratios; the §7 instance families live
in :mod:`repro.workloads.degree_sequences`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence


@dataclass(frozen=True)
class DegreeLowerBounds:
    """Instance-specific round lower bounds for a degree sequence."""

    n: int
    m: int
    max_degree: int
    recv_cap: int
    explicit_rounds: float  # Theorem 19: Δ / recv_cap
    implicit_sqrt_m_rounds: float  # Theorem 20, D* family: √m / recv_cap
    implicit_regular_rounds: float  # Theorem 20, regular family: Δ (phases)


def degree_lower_bounds(
    degrees: Sequence[int], recv_cap: int
) -> DegreeLowerBounds:
    """Compute the §7 bounds for ``degrees`` under a given receive cap.

    ``recv_cap`` should be the simulator's per-round receive budget so
    the returned values are directly comparable to measured rounds.
    """
    n = len(degrees)
    total = sum(degrees)
    if total % 2:
        m = total // 2  # non-graphic inputs still get a nominal bound
    else:
        m = total // 2
    delta = max(degrees) if degrees else 0
    cap = max(1, recv_cap)
    return DegreeLowerBounds(
        n=n,
        m=m,
        max_degree=delta,
        recv_cap=cap,
        explicit_rounds=delta / cap,
        implicit_sqrt_m_rounds=math.sqrt(max(0, m)) / cap,
        implicit_regular_rounds=float(delta),
    )


def tightness_ratio(measured_rounds: int, bound_rounds: float) -> float:
    """measured / bound — Theorems 19/20 predict this stays polylog(n)."""
    return measured_rounds / max(1.0, bound_rounds)


def polylog_envelope(n: int, power: int = 3, constant: float = 64.0) -> float:
    """A generous ``c · log^power n`` envelope used by tightness checks."""
    return constant * max(1.0, math.log2(max(2, n))) ** power
