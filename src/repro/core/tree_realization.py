"""Tree realizations (Section 5, Algorithms 4 and 5, Theorems 14 and 16).

Both algorithms share a skeleton: sort by non-increasing degree, verify
Harary's condition (``min d >= 1`` and ``sum d == 2(n-1)`` — correcting
the paper's ``2(n-2)`` typo), compute prefix sums over the sorted path,
then attach contiguous position ranges of children/leaves to each
non-leaf in parallel:

* **Algorithm 4** (max-diameter caterpillar): non-leaves form a spine
  (edges between path-consecutive positions, known to both endpoints at
  zero communication cost since path neighbours hold each other's IDs);
  each spine node acquires ``d - 2`` leaves (``d - 1`` for the head) at
  positions given by the prefix sums ``p_i = 2 + Σ_{j<i}(d_j - 2)``.
* **Algorithm 5** (min-diameter greedy tree ``T_G`` of [30], Lemma 15):
  each node adopts the next ``d - 1`` (``d`` for the root) parentless
  nodes, via ``p_i = 2 + Σ_{j<i}(d_j - 1)``.

A non-leaf reaches the *first* node of its (non-adjacent) range with a
claim-based token collection (both sides derive the group id from the
target position — Theorem 8's group-ID agreement device), and that node
relays the ID rightward with a doubling range multicast.  All ranges are
disjoint, so every group runs in parallel: ``O(log³ n)`` rounds in total,
sort-dominated (Theorems 14/16).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.ncc.errors import ProtocolError
from repro.ncc.network import Network
from repro.core.result import (
    TreeResult,
    overlay_degrees,
    overlay_edges,
    record_edge,
)
from repro.primitives.bbst import build_indexed_path
from repro.primitives.broadcast import global_aggregate, global_broadcast
from repro.primitives.butterfly import ColGroup
from repro.primitives.groups import token_collect
from repro.primitives.prefix import prefix_sums
from repro.primitives.protocol import Proto, fresh_ns, ns_state, run_protocol
from repro.primitives.range_multicast import range_multicast
from repro.primitives.sorting import distributed_sort


def tree_realization_protocol(
    net: Network,
    degrees: Dict[int, int],
    variant: str = "max_diameter",
    sort_fidelity: str = "full",
) -> Proto:
    """Protocol: Algorithm 4 (``variant="max_diameter"``) or Algorithm 5
    (``variant="min_diameter"``).

    Returns ``{"realized": bool, "violators": [...]}``.
    """
    if variant not in ("max_diameter", "min_diameter"):
        raise ValueError(f"unknown tree variant {variant!r}")
    n = net.n
    ns = fresh_ns("tr")
    for v in net.node_ids:
        ns_state(net, v, ns)["deg"] = degrees[v]

    if n == 1:
        return {"realized": degrees[net.node_ids[0]] == 0, "violators": []}

    # Steps 1-3: sort, index, aggregate the realizability checks.
    bound = n + 1

    def sort_key(v: int) -> int:
        return bound - ns_state(net, v, ns)["deg"]

    srt_ns, order = yield from distributed_sort(
        net, sort_key, fidelity=sort_fidelity
    )
    root = yield from build_indexed_path(net, srt_ns, order, order[0])

    # One combined aggregation: S = sum d (<= n^2) and k = #{d > 1} (<= n)
    # packed into one word; min-degree check rides as a flag.
    enc = n * n + 1

    def packed(v: int) -> int:
        d = ns_state(net, v, ns)["deg"]
        return (1 if d > 1 else 0) * enc + d

    total = yield from global_aggregate(
        net, srt_ns, order, root, leader=root,
        value_of=packed, combine=lambda a, b: a + b,
    )
    k, degree_sum = total // enc, total % enc
    dmin = yield from global_aggregate(
        net, srt_ns, order, root, leader=root,
        value_of=lambda v: ns_state(net, v, ns)["deg"], combine=min,
    )
    realizable = (degree_sum == 2 * (n - 1)) and dmin >= 1
    yield from global_broadcast(
        net, srt_ns, order, root, leader=root,
        value=(1 if realizable else 0, k), key="tree_check",
    )
    if not realizable:
        return {"realized": False, "violators": [root]}

    # Step 4: prefix sums over the sorted path.
    drop = 2 if variant == "max_diameter" else 1

    def prefix_value(v: int) -> int:
        state = ns_state(net, v, srt_ns)
        d = ns_state(net, v, ns)["deg"]
        if variant == "max_diameter" and state["pos"] >= k:
            return 0
        return d - drop

    yield from prefix_sums(net, srt_ns, order, root, prefix_value, key="pfx")

    # Step 5 (Algorithm 4 only): the spine — zero-cost explicit edges,
    # since path neighbours already hold each other's IDs.
    if variant == "max_diameter":
        if k == 0:
            # Only n == 2 reaches here: a single edge.
            record_edge(net, order[0], order[1])
            record_edge(net, order[1], order[0])
            return {"realized": True, "violators": []}
        for pos in range(min(k, n - 1)):
            record_edge(net, order[pos], order[pos + 1])
            record_edge(net, order[pos + 1], order[pos])

    # Step 6: attach contiguous ranges.  Each source computes its range
    # locally from (pos, prefix, degree, k); ranges are pairwise disjoint.
    attach: List[Tuple[int, int, int]] = []  # (source, lo, hi) 0-based
    for v in order:
        state = ns_state(net, v, srt_ns)
        pos = state["pos"]
        d = ns_state(net, v, ns)["deg"]
        i = pos + 1  # 1-based rank
        lead = 0 if i == 1 else 1
        p_i = 2 + state["pfx"]
        if variant == "max_diameter":
            if pos >= k:
                continue
            lo = k + p_i + lead - 1
            hi = k + p_i + d - 3
        else:
            lo = p_i + lead - 1
            hi = p_i + d - 2
        if hi < lo:
            continue
        if lo < 0 or hi > n - 1:
            raise ProtocolError(
                f"tree attachment range [{lo},{hi}] out of bounds at rank {i}"
            )
        attach.append((v, lo, hi))

    # 6a: claim-collected first contact (gid == first position).
    groups = []
    lo_node: Dict[int, int] = {}
    for source, lo, hi in attach:
        claimant = order[lo]
        lo_node[lo] = claimant
        groups.append(
            ColGroup(
                gid=lo,
                tokens={source: ((source,), (hi,))},
                dest=None,
                claimant=claimant,
            )
        )
    if groups:
        results = yield from token_collect(net, srt_ns, groups)
        # 6b: first nodes record their edge and relay rightward.
        requests = []
        for source, lo, hi in attach:
            (token_ids, token_data), = results[lo]
            first = lo_node[lo]
            record_edge(net, first, token_ids[0])
            if hi > lo:
                requests.append((first, lo + 1, hi, ((token_ids[0],), ())))
        if requests:
            yield from range_multicast(net, srt_ns, requests, key="tree_tok")
        for source, lo, hi in attach:
            for pos in range(lo + 1, hi + 1):
                v = order[pos]
                token = ns_state(net, v, srt_ns).pop("tree_tok", None)
                if token is None:
                    raise ProtocolError(f"missing attachment token at pos {pos}")
                record_edge(net, v, token[0][0])
    return {"realized": True, "violators": []}


def realize_tree(
    net: Network,
    degrees: Dict[int, int],
    variant: str = "max_diameter",
    sort_fidelity: str = "full",
) -> TreeResult:
    """Run Algorithm 4 or 5 and return a structured result.

    ``variant="max_diameter"`` gives Theorem 14's caterpillar;
    ``variant="min_diameter"`` gives Theorem 16's greedy tree ``T_G``.
    """
    outcome = run_protocol(
        net,
        tree_realization_protocol(
            net, degrees, variant=variant, sort_fidelity=sort_fidelity
        ),
    )
    edges = tuple(overlay_edges(net))
    diameter: Optional[int] = None
    if outcome["realized"] and net.n > 1 and edges:
        diameter = _tree_diameter(edges, list(net.node_ids))
    elif outcome["realized"]:
        diameter = 0
    return TreeResult(
        realized=outcome["realized"],
        announced_unrealizable_by=tuple(outcome["violators"]) if not outcome["realized"] else (),
        edges=edges,
        realized_degrees=overlay_degrees(net),
        diameter=diameter,
        stats=net.stats(),
    )


def _tree_diameter(edges: Sequence[Tuple[int, int]], nodes: Sequence[int]) -> int:
    """Double-BFS diameter (orchestrator-side analysis)."""
    from collections import deque

    adjacency: Dict[int, List[int]] = {v: [] for v in nodes}
    for u, v in edges:
        adjacency[u].append(v)
        adjacency[v].append(u)

    def far(start: int) -> Tuple[int, int]:
        dist = {start: 0}
        queue = deque([start])
        best, best_d = start, 0
        while queue:
            x = queue.popleft()
            for y in adjacency[x]:
                if y not in dist:
                    dist[y] = dist[x] + 1
                    if dist[y] > best_d:
                        best, best_d = y, dist[y]
                    queue.append(y)
        return best, best_d

    a, _ = far(nodes[0])
    _, diameter = far(a)
    return diameter
