"""repro.obs — the zero-dependency observability layer.

Three cooperating pieces, shared by the whole serve stack:

* **Request-scoped tracing** (:mod:`~repro.obs.trace`): a bounded
  :class:`Span` tree opened at admission, carried through every drain
  mode and across the process-pool boundary (fork *and* spawn) as a
  compact trace context on the columnar wire envelope, reassembled into
  one tree per request in the parent and exported as JSONL or Chrome
  ``trace_event`` JSON (:mod:`~repro.obs.exporters`).
* **A unified metrics registry** (:mod:`~repro.obs.metrics`):
  :class:`Counter`/:class:`Gauge`/:class:`Histogram` with labels behind
  one :class:`MetricsRegistry`, rendered in Prometheus text exposition
  format.  The executor's counters *are* registry instruments; its
  ``stats()`` keys are a view over them, and the pool/breaker/server
  counters join the same exposition through collector callbacks.
* **Engine phase hooks** (:func:`~repro.obs.trace.RoundPhaseAggregate`
  + ``Network.set_round_observer``): opt-in per-round
  validate/exchange/deliver timing with queue depth and defer backlog,
  feeding both spans and histograms — a ``None`` observer (the default)
  keeps the engine hot path flat.

Everything here is stdlib-only and imports nothing from ``repro.ncc``
or ``repro.service`` — the rest of the system layers on top.
"""

from repro.obs.exporters import (
    PROMETHEUS_CONTENT_TYPE,
    chrome_trace,
    span_to_dict,
    start_metrics_http,
    write_chrome_trace,
    write_trace_jsonl,
)
from repro.obs.latency import LatencyRecorder
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    RoundPhaseAggregate,
    Span,
    Tracer,
    decode_span_columns,
    encode_span_columns,
)

__all__ = [
    "Counter",
    "PROMETHEUS_CONTENT_TYPE",
    "Gauge",
    "Histogram",
    "LatencyRecorder",
    "MetricsRegistry",
    "RoundPhaseAggregate",
    "Span",
    "Tracer",
    "chrome_trace",
    "decode_span_columns",
    "encode_span_columns",
    "span_to_dict",
    "start_metrics_http",
    "write_chrome_trace",
    "write_trace_jsonl",
]
