"""Trace and metrics exporters.

* JSONL: one nested span-tree dict per line — greppable, diffable.
* Chrome ``trace_event`` JSON: load in ``chrome://tracing`` or
  https://ui.perfetto.dev for a flame view of a serve run.
* A stdlib HTTP listener serving the Prometheus exposition at
  ``/metrics`` (the ``--metrics-port`` flag).

Chrome timestamps are microseconds on the monotonic clock; the whole
trace shares one timebase (see :mod:`repro.obs.trace`), so relative
placement is exact even though the absolute epoch is boot time.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import IO, Any, Dict, Iterable, List, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span

__all__ = [
    "chrome_trace",
    "span_to_dict",
    "start_metrics_http",
    "write_chrome_trace",
    "write_trace_jsonl",
]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def span_to_dict(span: Span) -> Dict[str, Any]:
    """Nested dict form of a span tree (JSONL export unit)."""
    out: Dict[str, Any] = {
        "name": span.name,
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "start": span.start,
        "end": span.end if span.end is not None else span.start,
        "duration_ms": round(span.duration * 1000.0, 6),
    }
    if span.tags:
        out["tags"] = dict(span.tags)
    if span.children:
        out["children"] = [span_to_dict(child) for child in span.children]
    return out


def write_trace_jsonl(roots: Iterable[Span], stream: IO[str]) -> int:
    """One JSON line per trace; returns the number of traces written."""
    count = 0
    for root in roots:
        stream.write(json.dumps(span_to_dict(root), sort_keys=True))
        stream.write("\n")
        count += 1
    return count


def _chrome_events(
    span: Span, pid: int, tid: int, events: List[Dict[str, Any]]
) -> None:
    end = span.end if span.end is not None else span.start
    args = {str(k): v for k, v in span.tags.items()}
    args["trace_id"] = span.trace_id
    events.append(
        {
            "ph": "X",
            "name": span.name,
            "cat": "repro",
            "ts": span.start * 1e6,
            "dur": max(0.0, (end - span.start) * 1e6),
            "pid": pid,
            "tid": tid,
            "args": args,
        }
    )
    for child in span.children:
        # Worker-side spans carry their recording pid as a tag; give
        # them their own track so the flame view shows the hop.
        child_pid = child.tags.get("pid", pid)
        child_pid = child_pid if isinstance(child_pid, int) else pid
        _chrome_events(child, child_pid, tid, events)


def chrome_trace(roots: Iterable[Span]) -> Dict[str, Any]:
    """Chrome ``trace_event`` document for a batch of trace trees.

    Each trace gets its own ``tid`` so concurrent requests stack as
    separate rows; spans recorded in a pool worker keep that worker's
    pid as their track.
    """
    events: List[Dict[str, Any]] = []
    for tid, root in enumerate(roots, start=1):
        pid = root.tags.get("pid", 0)
        pid = pid if isinstance(pid, int) else 0
        _chrome_events(root, pid, tid, events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(roots: Iterable[Span], stream: IO[str]) -> int:
    doc = chrome_trace(roots)
    json.dump(doc, stream)
    stream.write("\n")
    return len(doc["traceEvents"])


class _MetricsHandler(BaseHTTPRequestHandler):
    registry: MetricsRegistry  # set on the subclass by start_metrics_http

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path.split("?", 1)[0] not in ("/metrics", "/"):
            self.send_error(404)
            return
        body = self.registry.render().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        pass  # scrapes are high-frequency; stay quiet on stderr


def start_metrics_http(
    registry: MetricsRegistry, port: int, host: str = "127.0.0.1"
) -> Tuple[ThreadingHTTPServer, threading.Thread]:
    """Serve ``registry.render()`` at ``http://host:port/metrics``.

    Runs in a daemon thread; call ``server.shutdown()`` to stop.  Pass
    ``port=0`` to bind an ephemeral port (``server.server_address``
    reports the real one).
    """
    handler = type("_BoundMetricsHandler", (_MetricsHandler,), {"registry": registry})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    thread = threading.Thread(
        target=server.serve_forever, name="repro-metrics-http", daemon=True
    )
    thread.start()
    return server, thread
