"""Per-request latency reservoir (moved here from ``service/executor``).

The serve ``stats`` kind keeps its original shape — ``count``/
``mean_ms``/``p50_ms``/``p99_ms`` over the whole request — while the
per-stage split (queue-wait vs execution) lives in registry
:class:`~repro.obs.metrics.Histogram` instruments beside it.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Dict, Sequence

__all__ = ["LatencyRecorder"]


class LatencyRecorder:
    """Thread-safe bounded reservoir of per-request service latencies.

    The serve front ends (stdio and socket) answer ``stats`` probes with
    latency percentiles; this recorder keeps the most recent
    ``capacity`` samples so a long-lived service reports *current*
    latency in O(1) memory instead of growing with traffic.  ``count``/
    ``mean`` cover the full lifetime; ``p50``/``p99`` are nearest-rank
    percentiles over the retained window.  Samples are recorded by the
    single-request paths (``BatchExecutor.handle`` and the async
    ``BatchExecutor.submit``) — the whole-batch drains time themselves.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._samples: "deque[float]" = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._count = 0
        self._total = 0.0

    def record(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(seconds)
            self._count += 1
            self._total += seconds

    @staticmethod
    def _nearest_rank(ordered: Sequence[float], fraction: float) -> float:
        if not ordered:
            return 0.0
        rank = max(0, math.ceil(fraction * len(ordered)) - 1)
        return ordered[min(rank, len(ordered) - 1)]

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile (seconds) over the retained window."""
        with self._lock:
            ordered = sorted(self._samples)
        return self._nearest_rank(ordered, fraction)

    def snapshot(self) -> Dict[str, float]:
        """Counters + percentiles, in milliseconds, for ``stats()``."""
        with self._lock:
            ordered = sorted(self._samples)
            count, total = self._count, self._total
        return {
            "count": count,
            "mean_ms": round(1000.0 * total / count, 3) if count else 0.0,
            "p50_ms": round(1000.0 * self._nearest_rank(ordered, 0.50), 3),
            "p99_ms": round(1000.0 * self._nearest_rank(ordered, 0.99), 3),
        }
