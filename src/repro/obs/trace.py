"""Request-scoped span trees.

A :class:`Span` is one timed operation on the monotonic clock with a
small dict of typed tags and a bounded list of children.  Spans form a
tree per request: the parent opens a root at admission, worker
processes open their own subtree from a two-field trace context
``(trace_id, parent_span_id)`` shipped on the wire envelope, and the
parent grafts the decoded subtree back under the dispatching span.

``CLOCK_MONOTONIC`` is system-wide on Linux, so parent- and worker-side
timestamps share a timebase and the reassembled tree is coherent —
the same property the wall-deadline code already relies on.

Everything is stdlib-only; nothing here imports ``repro.ncc`` or
``repro.service``.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "MAX_CHILDREN",
    "RoundPhaseAggregate",
    "Span",
    "TraceContext",
    "Tracer",
    "decode_span_columns",
    "encode_span_columns",
    "new_trace_id",
]

# Children beyond this bound are dropped (and counted in the
# ``dropped_children`` tag) so a pathological request cannot balloon a
# trace; deep per-round detail goes through RoundPhaseAggregate instead.
MAX_CHILDREN = 64

_ids = itertools.count(1)


def new_trace_id() -> str:
    """A process-unique trace id; pid-prefixed so fork children differ."""
    return "%x-%x" % (os.getpid(), next(_ids))


#: Compact trace context carried on the wire: (trace_id, parent span id).
TraceContext = Tuple[str, int]


class Span:
    """One timed node in a request's trace tree.

    Not thread-safe by design: a span is only ever touched by the one
    thread driving its request at that moment (handoffs between the
    event loop, pool callback threads, and workers are sequenced by the
    future machinery).  The :class:`Tracer` collecting finished roots
    is the synchronized piece.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "end",
        "tags",
        "children",
        "dropped",
    )

    def __init__(
        self,
        name: str,
        *,
        trace_id: Optional[str] = None,
        parent_id: int = 0,
        **tags: Any,
    ) -> None:
        self.name = name
        self.trace_id = trace_id if trace_id is not None else new_trace_id()
        self.span_id = next(_ids)
        self.parent_id = parent_id
        self.start = time.monotonic()
        self.end: Optional[float] = None
        self.tags: Dict[str, Any] = dict(tags) if tags else {}
        self.children: List["Span"] = []
        self.dropped = 0

    @classmethod
    def from_context(cls, name: str, context: TraceContext, **tags: Any) -> "Span":
        """Open a span continuing a remote trace (worker side)."""
        trace_id, parent_id = context
        return cls(name, trace_id=str(trace_id), parent_id=int(parent_id), **tags)

    def context(self) -> TraceContext:
        """The compact context to ship across a process boundary."""
        return (self.trace_id, self.span_id)

    def child(self, name: str, **tags: Any) -> "Span":
        """Open a child span; returns a detached throwaway if bounded out."""
        span = Span(name, trace_id=self.trace_id, parent_id=self.span_id, **tags)
        self.adopt(span)
        return span

    def adopt(self, span: "Span") -> None:
        """Attach an already-built span (e.g. a decoded worker subtree)."""
        if len(self.children) < MAX_CHILDREN:
            self.children.append(span)
        else:
            self.dropped += 1
            self.tags["dropped_children"] = self.dropped

    def tag(self, key: str, value: Any) -> "Span":
        self.tags[key] = value
        return self

    def finish(self, **tags: Any) -> "Span":
        if tags:
            self.tags.update(tags)
        if self.end is None:
            self.end = time.monotonic()
        return self

    @property
    def duration(self) -> float:
        end = self.end if self.end is not None else time.monotonic()
        return max(0.0, end - self.start)

    def walk(self) -> "itertools.chain[Span]":
        """All spans in the tree, pre-order."""
        return itertools.chain(
            (self,), *(child.walk() for child in self.children)
        )

    def find(self, name: str) -> Optional["Span"]:
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Span(%r, id=%d, parent=%d, dur=%.6f, tags=%r, children=%d)" % (
            self.name,
            self.span_id,
            self.parent_id,
            self.duration,
            self.tags,
            len(self.children),
        )


def encode_span_columns(root: Span) -> Tuple[Any, ...]:
    """Flatten a span tree into dense columns for the wire envelope.

    Pre-order flatten; parents are recorded as indices into the flat
    order (-1 for the root) so the structure survives without shipping
    span ids.  Layout mirrors the struct-of-arrays style of
    ``repro.ncc.wire``: one column per field, primitive types only.
    """
    order = list(root.walk())
    index = {id(span): i for i, span in enumerate(order)}
    names = tuple(span.name for span in order)
    starts = tuple(span.start for span in order)
    ends = tuple(
        span.end if span.end is not None else span.start for span in order
    )
    parents = tuple(
        index.get(id(parent), -1)
        for parent in _parent_column(root, order)
    )
    tags = tuple(tuple(sorted(span.tags.items())) for span in order)
    return (root.trace_id, root.parent_id, names, starts, ends, parents, tags)


def _parent_column(root: Span, order: Sequence[Span]) -> List[Optional[Span]]:
    parent_of: Dict[int, Optional[Span]] = {id(root): None}
    for span in order:
        for kid in span.children:
            parent_of[id(kid)] = span
    return [parent_of[id(span)] for span in order]


def decode_span_columns(columns: Sequence[Any]) -> Span:
    """Rebuild a span tree from :func:`encode_span_columns` output."""
    trace_id, parent_id, names, starts, ends, parents, tags = columns
    spans: List[Span] = []
    for i, name in enumerate(names):
        span = Span.__new__(Span)
        span.name = name
        span.trace_id = trace_id
        span.span_id = next(_ids)
        span.parent_id = int(parent_id) if parents[i] < 0 else 0
        span.start = float(starts[i])
        span.end = float(ends[i])
        span.tags = dict(tags[i])
        span.children = []
        span.dropped = 0
        spans.append(span)
    root: Optional[Span] = None
    for i, parent in enumerate(parents):
        if parent < 0:
            root = spans[i]
        else:
            spans[parent].children.append(spans[i])
            spans[i].parent_id = spans[parent].span_id
    if root is None:
        raise ValueError("span columns have no root")
    return root


class Tracer:
    """Collector of finished root spans, bounded to ``max_traces``.

    ``start()`` opens a root span; the caller finishes it and hands it
    back via ``collect()``.  ``drain()`` pops everything collected so
    far (exporters consume this).  Collection is thread-safe: serve
    finishes requests from pool callback threads.
    """

    def __init__(self, max_traces: int = 4096) -> None:
        self.max_traces = max_traces
        self._lock = threading.Lock()
        self._done: Deque[Span] = deque(maxlen=max_traces)
        self.started = 0
        self.collected = 0
        self.overflowed = 0

    def start(self, name: str, **tags: Any) -> Span:
        with self._lock:
            self.started += 1
        return Span(name, **tags)

    def collect(self, root: Span) -> None:
        root.finish()
        with self._lock:
            if len(self._done) == self._done.maxlen:
                self.overflowed += 1
            self._done.append(root)
            self.collected += 1

    def drain(self) -> List[Span]:
        with self._lock:
            out = list(self._done)
            self._done.clear()
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._done)


class RoundPhaseAggregate:
    """Aggregates engine round-observer callbacks for one request.

    The engines call ``observer(round_no, phases, queue_depth,
    defer_backlog)`` once per delivered round when an observer is
    installed on the network.  Per-round child spans would blow the
    bounded span tree on thousand-round requests, so this accumulates
    and emits a single ``rounds`` child span plus optional histogram
    observations.
    """

    __slots__ = ("rounds", "phase_seconds", "max_queue_depth", "max_defer_backlog")

    def __init__(self) -> None:
        self.rounds = 0
        self.phase_seconds: Dict[str, float] = {}
        self.max_queue_depth = 0
        self.max_defer_backlog = 0

    def __call__(
        self,
        round_no: int,
        phases: Dict[str, float],
        queue_depth: int,
        defer_backlog: int,
    ) -> None:
        self.rounds += 1
        for phase, seconds in phases.items():
            self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds
        if queue_depth > self.max_queue_depth:
            self.max_queue_depth = queue_depth
        if defer_backlog > self.max_defer_backlog:
            self.max_defer_backlog = defer_backlog

    def attach(self, span: Span) -> None:
        """Emit the aggregate as one ``rounds`` child of *span*."""
        if not self.rounds:
            return
        child = span.child("rounds", observed_rounds=self.rounds)
        for phase, seconds in sorted(self.phase_seconds.items()):
            child.tag("%s_s" % phase, round(seconds, 6))
        child.tag("max_queue_depth", self.max_queue_depth)
        child.tag("max_defer_backlog", self.max_defer_backlog)
        child.finish()

    def observe(self, observe_phase: Callable[[str, float], None]) -> None:
        """Feed accumulated per-phase seconds into a histogram callback."""
        for phase, seconds in self.phase_seconds.items():
            observe_phase(phase, seconds)
