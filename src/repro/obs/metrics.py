"""Unified metrics registry with Prometheus text exposition.

``Counter``/``Gauge``/``Histogram`` with optional labels behind one
:class:`MetricsRegistry`.  Counters are deliberately int-like
(``int()``, comparisons, ``==``) so call sites that used to read the
executor's ad-hoc ``self.x += 1`` integers keep working against the
registry-backed instruments without change.

For components that keep their own counters under their own locks
(network pool, circuit breaker, socket server), the registry accepts
*collector callbacks* that produce samples at scrape time instead of
duplicating state.
"""

from __future__ import annotations

import bisect
import threading
from collections import deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Sample",
]

# Seconds-scale latency buckets: 100µs .. 10s, roughly log-spaced.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: One exposition sample: (metric name, label pairs, value).
Sample = Tuple[str, Tuple[Tuple[str, str], ...], float]

_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or any(ch not in _NAME_OK for ch in name):
        raise ValueError("invalid metric name: %r" % (name,))
    return name


def _escape_label(value: Any) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _format_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    body = ",".join('%s="%s"' % (k, _escape_label(v)) for k, v in labels)
    return "{%s}" % body


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Base: a named family with optional label dimensions."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: Sequence[str] = ()) -> None:
        self.name = _check_name(name)
        self.help = help
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], Any] = {}

    def labels(self, **labels: Any) -> Any:
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ValueError(
                "metric %s expects labels %r, got %r"
                % (self.name, self.label_names, tuple(labels))
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make_child()
            return child

    def _make_child(self) -> Any:
        raise NotImplementedError

    def _child_items(self) -> List[Tuple[Tuple[Tuple[str, str], ...], Any]]:
        with self._lock:
            items = list(self._children.items())
        return [
            (tuple(zip(self.label_names, key)), child) for key, child in items
        ]

    def samples(self) -> List[Sample]:
        raise NotImplementedError


class _CounterValue:
    """A single monotonically-increasing value; int-like on read."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def __int__(self) -> int:
        return self.value

    def __index__(self) -> int:
        return self.value

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, _CounterValue):
            return self.value == other.value
        return self.value == other

    def __ne__(self, other: Any) -> bool:
        return not self.__eq__(other)

    def __lt__(self, other: Any) -> bool:
        return self.value < other

    def __le__(self, other: Any) -> bool:
        return self.value <= other

    def __gt__(self, other: Any) -> bool:
        return self.value > other

    def __ge__(self, other: Any) -> bool:
        return self.value >= other

    def __hash__(self) -> int:
        return hash(self.value)

    def __bool__(self) -> bool:
        return self.value != 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return str(self.value)


class Counter(_Metric, _CounterValue):
    """Counter family.  Unlabeled: inc()/value on the family itself;
    labeled: ``counter.labels(kind="tree").inc()``."""

    kind = "counter"

    def __init__(self, name: str, help: str, label_names: Sequence[str] = ()) -> None:
        _Metric.__init__(self, name, help, label_names)
        _CounterValue.__init__(self)
        # _Metric and _CounterValue both define _lock; keep them distinct.
        self._value_lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if self.label_names:
            raise ValueError("labeled counter %s needs .labels(...)" % self.name)
        if amount < 0:
            raise ValueError("counters only go up")
        with self._value_lock:
            self._value += amount

    @property
    def value(self) -> int:
        if self.label_names:
            return sum(child.value for _, child in self._child_items())
        with self._value_lock:
            return self._value

    def _make_child(self) -> _CounterValue:
        return _CounterValue()

    def as_dict(self) -> Dict[str, int]:
        """Label-value → count map for single-label counters."""
        if len(self.label_names) != 1:
            raise ValueError("as_dict needs exactly one label dimension")
        return {
            labels[0][1]: child.value for labels, child in self._child_items()
        }

    def samples(self) -> List[Sample]:
        if self.label_names:
            return [
                (self.name, labels, float(child.value))
                for labels, child in sorted(self._child_items())
            ]
        return [(self.name, (), float(self.value))]


class _GaugeValue:
    __slots__ = ("_lock", "_value", "_fn")

    def __init__(self, fn: Optional[Callable[[], float]] = None) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return self._value


class Gauge(_Metric, _GaugeValue):
    """Gauge family; may wrap a callback (``fn=``) read at scrape time."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str] = (),
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        if fn is not None and label_names:
            raise ValueError("callback gauges cannot be labeled")
        _Metric.__init__(self, name, help, label_names)
        _GaugeValue.__init__(self, fn)

    def _make_child(self) -> _GaugeValue:
        return _GaugeValue()

    def samples(self) -> List[Sample]:
        if self.label_names:
            return [
                (self.name, labels, float(child.value))
                for labels, child in sorted(self._child_items())
            ]
        return [(self.name, (), float(self.value))]


class _HistogramValue:
    __slots__ = ("_lock", "buckets", "counts", "total", "count", "_reservoir")

    def __init__(self, buckets: Tuple[float, ...], reservoir: int) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # +Inf bucket last
        self.total = 0.0
        self.count = 0
        self._lock = threading.Lock()
        self._reservoir: Deque[float] = deque(maxlen=reservoir)

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self.counts[idx] += 1
            self.total += value
            self.count += 1
            self._reservoir.append(value)

    def percentile(self, fraction: float) -> float:
        """Approximate percentile (seconds) from the bounded reservoir."""
        with self._lock:
            data = sorted(self._reservoir)
        if not data:
            return 0.0
        rank = min(len(data) - 1, max(0, int(round(fraction * (len(data) - 1)))))
        return data[rank]

    def snapshot(self) -> Dict[str, float]:
        """Milliseconds snapshot matching the LatencyRecorder shape."""
        with self._lock:
            count = self.count
            total = self.total
        mean = (total / count) if count else 0.0
        return {
            "count": count,
            "mean_ms": round(mean * 1000.0, 3),
            "p50_ms": round(self.percentile(0.50) * 1000.0, 3),
            "p99_ms": round(self.percentile(0.99) * 1000.0, 3),
        }


class Histogram(_Metric, _HistogramValue):
    """Histogram family with Prometheus cumulative buckets plus a
    bounded reservoir so the same instrument can answer p50/p99
    snapshots for the serve ``stats`` kind."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str] = (),
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        reservoir: int = 2048,
    ) -> None:
        _Metric.__init__(self, name, help, label_names)
        _HistogramValue.__init__(self, tuple(sorted(buckets)), reservoir)
        self._reservoir_size = reservoir

    def _make_child(self) -> _HistogramValue:
        return _HistogramValue(self.buckets, self._reservoir_size)

    def _value_samples(
        self, labels: Tuple[Tuple[str, str], ...], value: _HistogramValue
    ) -> List[Sample]:
        out: List[Sample] = []
        with value._lock:
            counts = list(value.counts)
            total = value.total
            count = value.count
        running = 0
        for bound, bucket_count in zip(value.buckets, counts):
            running += bucket_count
            out.append(
                (
                    self.name + "_bucket",
                    labels + (("le", _format_value(bound)),),
                    float(running),
                )
            )
        out.append((self.name + "_bucket", labels + (("le", "+Inf"),), float(count)))
        out.append((self.name + "_sum", labels, total))
        out.append((self.name + "_count", labels, float(count)))
        return out

    def samples(self) -> List[Sample]:
        if self.label_names:
            out: List[Sample] = []
            for labels, child in sorted(self._child_items()):
                out.extend(self._value_samples(labels, child))
            return out
        return self._value_samples((), self)


class MetricsRegistry:
    """Get-or-create instrument registry + Prometheus text renderer.

    ``counter()``/``gauge()``/``histogram()`` are idempotent by name
    (re-registering with a different type raises).  Components that
    keep state elsewhere register *collectors*: keyed callables
    returning ``(name, kind, help, samples)`` families at scrape time;
    re-registering a key replaces the callback (serve restarts).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}
        self._collectors: Dict[str, Callable[[], Iterable[Tuple[str, str, str, List[Sample]]]]] = {}

    def _register(self, metric: _Metric) -> _Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if type(existing) is not type(metric):
                    raise ValueError(
                        "metric %s already registered as %s"
                        % (metric.name, existing.kind)
                    )
                return existing
            self._metrics[metric.name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", label_names: Sequence[str] = ()
    ) -> Counter:
        metric = self._register(Counter(name, help, label_names))
        assert isinstance(metric, Counter)
        return metric

    def gauge(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        fn: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        metric = self._register(Gauge(name, help, label_names, fn=fn))
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        reservoir: int = 2048,
    ) -> Histogram:
        metric = self._register(
            Histogram(name, help, label_names, buckets=buckets, reservoir=reservoir)
        )
        assert isinstance(metric, Histogram)
        return metric

    def register_collector(
        self,
        key: str,
        fn: Callable[[], Iterable[Tuple[str, str, str, List[Sample]]]],
    ) -> None:
        with self._lock:
            self._collectors[key] = fn

    def unregister_collector(self, key: str) -> None:
        with self._lock:
            self._collectors.pop(key, None)

    def families(self) -> List[Tuple[str, str, str, List[Sample]]]:
        """All (name, kind, help, samples) families, metrics then collectors."""
        with self._lock:
            metrics = list(self._metrics.values())
            collectors = list(self._collectors.values())
        out = [(m.name, m.kind, m.help, m.samples()) for m in metrics]
        for collect in collectors:
            out.extend(collect())
        return out

    def render(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        lines: List[str] = []
        for name, kind, help, samples in self.families():
            if help:
                lines.append("# HELP %s %s" % (name, help.replace("\n", " ")))
            lines.append("# TYPE %s %s" % (name, kind))
            for sample_name, labels, value in samples:
                lines.append(
                    "%s%s %s"
                    % (sample_name, _format_labels(labels), _format_value(value))
                )
        return "\n".join(lines) + "\n"
