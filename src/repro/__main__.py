"""Command-line interface: ``python -m repro <command>``.

Small, dependency-free front door for trying the realizers without
writing a script:

* ``info --n 64`` — show the NCC model parameters for an n-node network;
* ``realize --degrees 3,3,2,2,2 [--explicit] [--envelope]`` — degree
  sequence realization (Algorithm 3 / Theorems 11-13);
* ``tree --degrees 3,2,2,1,1,1 [--variant min|max]`` — tree realization
  (Algorithms 4/5);
* ``connectivity --rho 3,2,2,1,1 [--model ncc0|ncc1]`` — connectivity
  thresholds (Theorems 17/18);
* ``approx --degrees 4,4,4,4,4,4 [--repairs 2]`` — the Õ(1) approximate
  realizer;
* ``profile sorting --n 256 [--top 25] [--sort-by cumulative]`` — run a
  workload under ``cProfile`` and print the hottest functions, so perf
  work starts from data instead of guesses.

Every command prints the verdict, edge count, and round/message costs.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List

from repro.ncc.config import NCCConfig, Variant
from repro.ncc.network import Network


def _parse_ints(text: str) -> List[int]:
    try:
        return [int(x) for x in text.replace(" ", "").split(",") if x != ""]
    except ValueError:
        raise SystemExit(f"could not parse integer list: {text!r}")


def _make_net(n: int, args, ncc1: bool = False) -> Network:
    config = NCCConfig(
        seed=args.seed,
        variant=Variant.NCC1 if ncc1 else Variant.NCC0,
        random_ids=not ncc1,
    )
    return Network(n, config)


def _report(net: Network, prefix: str) -> None:
    stats = net.stats()
    print(f"{prefix}: {stats.rounds} rounds "
          f"({stats.simulated_rounds} simulated + {stats.charged_rounds} charged), "
          f"{stats.messages} messages")
    per_phase = stats.phase_rounds()
    if per_phase:
        breakdown = ", ".join(f"{k}={v}" for k, v in sorted(per_phase.items()))
        print(f"  phase breakdown: {breakdown}")


def cmd_info(args) -> int:
    net = _make_net(args.n, args)
    print(f"NCC0 network, n={args.n}")
    print(f"  ID space: [1, {net.ids.universe}]")
    print(f"  per-round caps: send {net.send_cap}, receive {net.recv_cap}")
    print(f"  message budget: {net.config.max_words} words of {net.word_bits} bits")
    print(f"  initial knowledge: directed path Gk")
    return 0


def cmd_realize(args) -> int:
    from repro.core.degree_realization import realize_degree_sequence
    from repro.core.envelope import realize_envelope
    from repro.core.explicit import realize_degree_sequence_explicit

    degrees = _parse_ints(args.degrees)
    net = _make_net(len(degrees), args)
    demands = dict(zip(net.node_ids, degrees))
    fidelity = "charged" if args.fast else "full"
    if args.envelope:
        result = realize_envelope(net, demands, sort_fidelity=fidelity)
    elif args.explicit:
        result = realize_degree_sequence_explicit(net, demands, sort_fidelity=fidelity)
    else:
        result = realize_degree_sequence(net, demands, sort_fidelity=fidelity)
    if result.realized:
        print(f"REALIZED: {result.num_edges} edges in {result.phases} phases"
              f" ({'explicit' if result.explicit else 'implicit'})")
    else:
        print(f"UNREALIZABLE (announced by {len(result.announced_unrealizable_by)}"
              f" node(s))")
    _report(net, "cost")
    return 0 if result.realized or args.envelope else 1


def cmd_tree(args) -> int:
    from repro.core.tree_realization import realize_tree

    degrees = _parse_ints(args.degrees)
    net = _make_net(len(degrees), args)
    variant = "min_diameter" if args.variant == "min" else "max_diameter"
    result = realize_tree(
        net, dict(zip(net.node_ids, degrees)), variant=variant,
        sort_fidelity="charged" if args.fast else "full",
    )
    if result.realized:
        print(f"REALIZED tree: {result.num_edges} edges, diameter {result.diameter}"
              f" ({variant})")
    else:
        print("UNREALIZABLE as a tree (need sum d = 2(n-1), all d >= 1)")
    _report(net, "cost")
    return 0 if result.realized else 1


def cmd_connectivity(args) -> int:
    from repro.core.connectivity import (
        realize_connectivity_ncc0,
        realize_connectivity_ncc1,
    )

    rho_values = _parse_ints(args.rho)
    ncc1 = args.model == "ncc1"
    net = _make_net(len(rho_values), args, ncc1=ncc1)
    rho = dict(zip(net.node_ids, rho_values))
    if ncc1:
        result = realize_connectivity_ncc1(net, rho)
    else:
        result = realize_connectivity_ncc0(
            net, rho, sort_fidelity="charged" if args.fast else "full"
        )
    print(f"REALIZED: {result.num_edges} edges "
          f"(lower bound {result.lower_bound_edges}, "
          f"ratio {result.approximation_ratio:.2f} <= 2, "
          f"{'explicit' if result.explicit else 'implicit'})")
    _report(net, "cost")
    return 0


def cmd_approx(args) -> int:
    from repro.core.approximate import approximate_degree_realization

    degrees = _parse_ints(args.degrees)
    net = _make_net(len(degrees), args)
    result = approximate_degree_realization(
        net, dict(zip(net.node_ids, degrees)),
        sort_fidelity="charged" if args.fast else "full",
        repair_rounds=args.repairs,
    )
    print(f"APPROXIMATED: {result.num_edges} edges, "
          f"L1 shortfall {result.l1_error} "
          f"({result.relative_error:.1%} of demand), "
          f"{result.self_pairs} self-pairs, "
          f"{result.duplicate_pairs} duplicate pairs dropped")
    _report(net, "cost")
    return 0


#: ``profile`` subcommand workloads: name -> (description, runner).
#: Runners take (net, n, seed) and execute one full workload.
def _profile_sorting(net, n: int, seed: int) -> None:
    import random

    from repro.primitives.protocol import run_protocol
    from repro.primitives.sorting import distributed_sort

    rng = random.Random(seed * 1000 + n)
    table = {v: rng.randrange(n) for v in net.node_ids}
    run_protocol(net, distributed_sort(net, lambda v: table[v]))


def _profile_bbst(net, n: int, seed: int) -> None:
    from repro.primitives.bbst import build_bbst
    from repro.primitives.protocol import run_protocol

    run_protocol(net, build_bbst(net))


def _profile_collection(net, n: int, seed: int) -> None:
    from repro.primitives.bbst import build_bbst
    from repro.primitives.collection import global_collect
    from repro.primitives.protocol import run_protocol

    k = max(1, n // 4)
    ids = list(net.node_ids)
    holders = {ids[(i * 3) % n]: ((ids[i % n],), (i,)) for i in range(k)}

    def proto():
        ns, root = yield from build_bbst(net)
        yield from global_collect(
            net, ns, list(net.node_ids), root, leader=root, holders=holders
        )

    run_protocol(net, proto())


def _profile_realize(net, n: int, seed: int) -> None:
    from repro.core.degree_realization import realize_degree_sequence
    from repro.workloads import random_graphic_sequence

    seq = random_graphic_sequence(n, 0.3, seed=seed)
    realize_degree_sequence(net, dict(zip(net.node_ids, seq)))


def _profile_tree(net, n: int, seed: int) -> None:
    from repro.core.tree_realization import realize_tree
    from repro.workloads import random_tree_sequence

    seq = random_tree_sequence(n, seed=seed)
    realize_tree(net, dict(zip(net.node_ids, seq)))


PROFILE_WORKLOADS = {
    "sorting": ("Theorem 3 distributed mergesort", _profile_sorting),
    "bbst": ("Theorem 1 BBST construction", _profile_bbst),
    "collection": ("Theorem 5 global token collection", _profile_collection),
    "realize": ("Algorithm 3 degree-sequence realization", _profile_realize),
    "tree": ("Algorithm 4/5 tree realization", _profile_tree),
}


def cmd_profile(args) -> int:
    import cProfile
    import pstats

    _description, runner = PROFILE_WORKLOADS[args.workload]
    net = _make_net(args.n, args)
    profiler = cProfile.Profile()
    profiler.enable()
    runner(net, args.n, args.seed)
    profiler.disable()
    print(f"profile: {args.workload} (n={args.n}, seed={args.seed})")
    _report(net, "cost")
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort_by).print_stats(args.top)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed Graph Realizations (IPDPS 2020) — CLI",
    )
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="show NCC model parameters")
    p.add_argument("--n", type=int, default=64)
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("realize", help="degree-sequence realization")
    p.add_argument("--degrees", required=True, help="comma-separated degrees")
    p.add_argument("--explicit", action="store_true")
    p.add_argument("--envelope", action="store_true")
    p.add_argument("--fast", action="store_true", help="charged-mode sorting")
    p.set_defaults(fn=cmd_realize)

    p = sub.add_parser("tree", help="tree realization")
    p.add_argument("--degrees", required=True)
    p.add_argument("--variant", choices=("min", "max"), default="min")
    p.add_argument("--fast", action="store_true")
    p.set_defaults(fn=cmd_tree)

    p = sub.add_parser("connectivity", help="connectivity thresholds")
    p.add_argument("--rho", required=True, help="comma-separated thresholds")
    p.add_argument("--model", choices=("ncc0", "ncc1"), default="ncc0")
    p.add_argument("--fast", action="store_true")
    p.set_defaults(fn=cmd_connectivity)

    p = sub.add_parser("approx", help="Õ(1) approximate realization")
    p.add_argument("--degrees", required=True)
    p.add_argument("--repairs", type=int, default=0)
    p.add_argument("--fast", action="store_true")
    p.set_defaults(fn=cmd_approx)

    p = sub.add_parser("profile", help="profile a workload under cProfile")
    p.add_argument("workload", choices=sorted(PROFILE_WORKLOADS))
    p.add_argument("--n", type=int, default=256, help="network size")
    p.add_argument("--top", type=int, default=25, help="hotspots to print")
    p.add_argument(
        "--sort-by",
        choices=("cumulative", "tottime", "ncalls"),
        default="cumulative",
        help="pstats sort column",
    )
    p.set_defaults(fn=cmd_profile)
    return parser


def main(argv=None) -> int:
    sys.setrecursionlimit(200_000)
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
