"""Command-line interface: ``python -m repro <command>``.

Small, dependency-free front door for trying the realizers without
writing a script:

* ``info --n 64`` — show the NCC model parameters for an n-node network;
* ``realize --degrees 3,3,2,2,2 [--explicit] [--envelope]`` — degree
  sequence realization (Algorithm 3 / Theorems 11-13);
* ``tree --degrees 3,2,2,1,1,1 [--variant min|max]`` — tree realization
  (Algorithms 4/5);
* ``connectivity --rho 3,2,2,1,1 [--model ncc0|ncc1]`` — connectivity
  thresholds (Theorems 17/18);
* ``approx --degrees 4,4,4,4,4,4 [--repairs 2]`` — the Õ(1) approximate
  realizer;
* ``scenarios`` — list the named workload scenarios of the service
  registry;
* ``batch requests.jsonl`` (or ``-`` for stdin) — drain a JSONL request
  batch through the warm-pool executor, one JSON response per line
  (``--mode processes --workers N`` drains across worker processes,
  each with its own warm network pool);
* ``serve`` — long-lived JSONL service on stdin/stdout
  (``--mode processes --workers N`` streams: requests enter the worker
  pool as their lines arrive, responses are emitted in input order as
  they complete); with ``--port`` it becomes a multi-client TCP socket
  server with bounded admission (``--window``) and typed
  ``ADMISSION_REJECTED`` overflow responses; requests may carry a
  ``deadline_ms`` wall-clock budget (typed ``DEADLINE_EXCEEDED``), and
  ``--hang-timeout`` arms the processes-mode watchdog (typed
  ``WORKER_TIMEOUT``); ``--trace-out`` collects request-scoped traces
  and ``--metrics-port`` exposes the Prometheus exposition over HTTP;
  ``--journal PATH`` arms the write-ahead request journal (crash
  recovery, idempotent exactly-once replay, client session resume) and
  ``--supervise`` runs the socket server as a respawned-on-crash child;
* ``supervise --port N`` — shorthand for ``serve --supervise``: run the
  socket server under the kill-9 crash-restart supervisor;
* ``trace requests.jsonl --out trace.json`` — drain a batch with
  tracing enabled and write the span trees as Chrome ``trace_event``
  JSON (``--format jsonl`` for one tree per line);
* ``profile sorting --n 256 [--top 25] [--sort-by cumulative]`` — run a
  registry scenario under ``cProfile`` and print the hottest functions,
  so perf work starts from data instead of guesses.

The protocol-running commands accept ``--engine {fast,reference,sharded}``
(plus ``--shards N`` for the multiprocess sharded engine) to select the
round-execution engine (``fast`` is the default; all are bit-identical,
see ``repro/ncc/engine.py`` and ``repro/ncc/sharded.py``).  Every
command prints the verdict, edge count, and round/message costs.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.ncc.config import NCCConfig, Variant
from repro.ncc.network import Network


def _parse_ints(text: str) -> List[int]:
    try:
        values = [int(x) for x in text.replace(" ", "").split(",") if x != ""]
    except ValueError:
        raise SystemExit(f"could not parse integer list: {text!r}")
    if not values:
        raise SystemExit(
            f"empty integer list: {text!r} (expected comma-separated "
            "integers, e.g. 3,3,2,2)"
        )
    return values


def _make_net(n: int, args, ncc1: bool = False) -> Network:
    engine = getattr(args, "engine", "fast")
    shards = getattr(args, "shards", None)
    kwargs = {}
    if shards is not None:
        # Validate here, at the CLI surface, instead of surfacing a deep
        # worker/partitioner failure (or a silent clamp) mid-run.
        if shards < 1:
            raise SystemExit(f"--shards must be >= 1, got {shards}")
        if engine == "sharded" and shards > n:
            raise SystemExit(
                f"--shards {shards} exceeds the network size (n={n}); "
                "the sharded engine partitions nodes across 1..n workers"
            )
        kwargs["engine_shards"] = shards
    config = NCCConfig(
        seed=args.seed,
        engine=engine,
        variant=Variant.NCC1 if ncc1 else Variant.NCC0,
        random_ids=not ncc1,
        **kwargs,
    )
    return Network(n, config)


def _report(net: Network, prefix: str) -> None:
    stats = net.stats()
    print(f"{prefix}: {stats.rounds} rounds "
          f"({stats.simulated_rounds} simulated + {stats.charged_rounds} charged), "
          f"{stats.messages} messages")
    per_phase = stats.phase_rounds()
    if per_phase:
        breakdown = ", ".join(f"{k}={v}" for k, v in sorted(per_phase.items()))
        print(f"  phase breakdown: {breakdown}")


def cmd_info(args) -> int:
    net = _make_net(args.n, args)
    print(f"NCC0 network, n={args.n}")
    print(f"  ID space: [1, {net.ids.universe}]")
    print(f"  per-round caps: send {net.send_cap}, receive {net.recv_cap}")
    print(f"  message budget: {net.config.max_words} words of {net.word_bits} bits")
    print(f"  initial knowledge: directed path Gk")
    return 0


def cmd_realize(args) -> int:
    from repro.core.degree_realization import realize_degree_sequence
    from repro.core.envelope import realize_envelope
    from repro.core.explicit import realize_degree_sequence_explicit

    degrees = _parse_ints(args.degrees)
    net = _make_net(len(degrees), args)
    demands = dict(zip(net.node_ids, degrees))
    fidelity = "charged" if args.fast else "full"
    if args.envelope:
        result = realize_envelope(net, demands, sort_fidelity=fidelity)
    elif args.explicit:
        result = realize_degree_sequence_explicit(net, demands, sort_fidelity=fidelity)
    else:
        result = realize_degree_sequence(net, demands, sort_fidelity=fidelity)
    if result.realized:
        print(f"REALIZED: {result.num_edges} edges in {result.phases} phases"
              f" ({'explicit' if result.explicit else 'implicit'})")
    else:
        print(f"UNREALIZABLE (announced by {len(result.announced_unrealizable_by)}"
              f" node(s))")
    _report(net, "cost")
    return 0 if result.realized or args.envelope else 1


def cmd_tree(args) -> int:
    from repro.core.tree_realization import realize_tree

    degrees = _parse_ints(args.degrees)
    net = _make_net(len(degrees), args)
    variant = "min_diameter" if args.variant == "min" else "max_diameter"
    result = realize_tree(
        net, dict(zip(net.node_ids, degrees)), variant=variant,
        sort_fidelity="charged" if args.fast else "full",
    )
    if result.realized:
        print(f"REALIZED tree: {result.num_edges} edges, diameter {result.diameter}"
              f" ({variant})")
    else:
        print("UNREALIZABLE as a tree (need sum d = 2(n-1), all d >= 1)")
    _report(net, "cost")
    return 0 if result.realized else 1


def cmd_connectivity(args) -> int:
    from repro.core.connectivity import (
        realize_connectivity_ncc0,
        realize_connectivity_ncc1,
    )

    rho_values = _parse_ints(args.rho)
    ncc1 = args.model == "ncc1"
    net = _make_net(len(rho_values), args, ncc1=ncc1)
    rho = dict(zip(net.node_ids, rho_values))
    if ncc1:
        result = realize_connectivity_ncc1(net, rho)
    else:
        result = realize_connectivity_ncc0(
            net, rho, sort_fidelity="charged" if args.fast else "full"
        )
    print(f"REALIZED: {result.num_edges} edges "
          f"(lower bound {result.lower_bound_edges}, "
          f"ratio {result.approximation_ratio:.2f} <= 2, "
          f"{'explicit' if result.explicit else 'implicit'})")
    _report(net, "cost")
    return 0


def cmd_approx(args) -> int:
    from repro.core.approximate import approximate_degree_realization

    degrees = _parse_ints(args.degrees)
    net = _make_net(len(degrees), args)
    result = approximate_degree_realization(
        net, dict(zip(net.node_ids, degrees)),
        sort_fidelity="charged" if args.fast else "full",
        repair_rounds=args.repairs,
    )
    print(f"APPROXIMATED: {result.num_edges} edges, "
          f"L1 shortfall {result.l1_error} "
          f"({result.relative_error:.1%} of demand), "
          f"{result.self_pairs} self-pairs, "
          f"{result.duplicate_pairs} duplicate pairs dropped")
    _report(net, "cost")
    return 0


# ---------------------------------------------------------------------- #
# Service front ends                                                    #
# ---------------------------------------------------------------------- #


def _make_executor(args, tracer=None, journal=None):
    from repro.service import BatchExecutor, NetworkPool

    try:
        return BatchExecutor(
            pool=None if getattr(args, "no_pool", False) else NetworkPool(),
            cache_responses=not getattr(args, "no_cache", False),
            mode=getattr(args, "mode", "sequential"),
            workers=getattr(args, "workers", 4),
            hang_timeout=getattr(args, "hang_timeout", None),
            tracer=tracer,
            journal=journal,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))


def _write_traces(tracer, path: str, fmt: str = "chrome") -> int:
    """Drain ``tracer`` into ``path``; returns the trace count."""
    from repro.obs import write_chrome_trace, write_trace_jsonl

    roots = tracer.drain()
    try:
        with open(path, "w") as handle:
            if fmt == "jsonl":
                write_trace_jsonl(roots, handle)
            else:
                write_chrome_trace(roots, handle)
    except OSError as exc:
        raise SystemExit(f"cannot write trace file: {exc}")
    return len(roots)


def cmd_scenarios(args) -> int:
    from repro.service import DEFAULT_REGISTRY

    print(f"{'name':<18} {'kind':<16} description")
    for scenario in DEFAULT_REGISTRY:
        kind = "(profile only)" if scenario.is_primitive else scenario.kind
        print(f"{scenario.name:<18} {kind:<16} {scenario.description}")
    return 0


def cmd_batch(args) -> int:
    import json

    from repro.service import run_batch_lines

    if args.path == "-":
        lines = sys.stdin.read().splitlines()
    else:
        try:
            with open(args.path) as handle:
                lines = handle.read().splitlines()
        except OSError as exc:
            raise SystemExit(f"cannot read batch file: {exc}")
    executor = _make_executor(args)
    try:
        responses = run_batch_lines(lines, executor)
        # Capture the counters while the executor is live: close() tears
        # the pool down, so a later stats() call would describe a
        # torn-down executor (it now freezes, but the summary should not
        # depend on that).
        stats = executor.stats()
    finally:
        executor.close()
    errors = 0
    for response in responses:
        if response.verdict == "ERROR":
            errors += 1
        print(json.dumps(response.to_dict()))
    pool = stats.get("pool", {})
    summary = (
        f"batch[{stats['mode']}]: {len(responses)} response(s), "
        f"{errors} error(s); cache hits {stats['response_cache_hits']}, "
        f"coalesced {stats['coalesced_hits']}"
    )
    if stats["mode"] == "processes":
        # Worker processes own their pools; the parent pool is unused.
        if stats["worker_crashes"]:
            summary += f", worker crashes {stats['worker_crashes']}"
    else:
        summary += (
            f", pool hits {pool.get('pool_hits', 0)}/{pool.get('leases', 0)}"
        )
    print(summary, file=sys.stderr)
    return 1 if errors else 0


def _serve_child_argv(args) -> List[str]:
    """Rebuild the ``serve`` argv for a supervised child process.

    Reconstructed from the parsed namespace (not ``sys.argv``) so the
    ``supervise`` subcommand and ``serve --supervise`` produce the same
    child either way, minus the supervision flags themselves.
    """
    argv = [sys.executable, "-m", "repro", "--seed", str(args.seed), "serve",
            "--mode", args.mode, "--workers", str(args.workers),
            "--host", args.host, "--port", str(args.port),
            "--emit-timeout", str(args.emit_timeout),
            "--close-timeout", str(args.close_timeout)]
    if args.no_pool:
        argv.append("--no-pool")
    if args.no_cache:
        argv.append("--no-cache")
    if args.window is not None:
        argv += ["--window", str(args.window)]
    if args.hang_timeout is not None:
        argv += ["--hang-timeout", str(args.hang_timeout)]
    if args.trace_out is not None:
        argv += ["--trace-out", args.trace_out, "--trace-format", args.trace_format]
    if args.metrics_port is not None:
        argv += ["--metrics-port", str(args.metrics_port)]
    if args.journal is not None:
        argv += ["--journal", args.journal, "--fsync", args.fsync]
    return argv


def cmd_serve(args) -> int:
    from repro.service import ServiceError, serve
    from repro.service.executor import validate_window

    try:
        window = validate_window(args.window)
    except ValueError as exc:
        raise SystemExit(str(exc))
    if args.port is not None and not 0 <= args.port <= 65535:
        raise SystemExit(f"--port must be in 0..65535, got {args.port}")
    if args.metrics_port is not None and not 0 <= args.metrics_port <= 65535:
        raise SystemExit(
            f"--metrics-port must be in 0..65535, got {args.metrics_port}"
        )
    if getattr(args, "supervise", False):
        from repro.service.supervise import supervise_loop, supervisor_policy

        if args.port is None:
            raise SystemExit(
                "--supervise requires --port: the supervisor and a "
                "respawned child cannot share one stdin/stdout stream"
            )
        if args.max_restarts < 0:
            raise SystemExit(
                f"--max-restarts must be >= 0, got {args.max_restarts}"
            )
        return supervise_loop(
            _serve_child_argv(args),
            policy=supervisor_policy(seed=args.seed),
            max_restarts=args.max_restarts,
        )
    tracer = None
    if args.trace_out is not None:
        from repro.obs import Tracer

        tracer = Tracer()
    journal = None
    sessions = None
    if args.journal is not None:
        from repro.service.journal import JournalError, RequestJournal

        try:
            journal = RequestJournal(args.journal, fsync=args.fsync)
        except (JournalError, OSError, ValueError) as exc:
            raise SystemExit(f"cannot open journal: {exc}")
    executor = _make_executor(args, tracer=tracer, journal=journal)
    if journal is not None:
        # Recovery happens before any socket binds: admitted-but-not-
        # completed requests from a crashed predecessor are re-executed
        # exactly once, and resuming sessions get their replay buffers.
        sessions = executor.recover_journal()
        recovery = journal.stats()
        print(
            f"serve[{executor.mode}]: journal {args.journal} recovered "
            f"{recovery['recovered_records']} record(s), "
            f"{recovery['recovered_incomplete']} re-executed, "
            f"{len(sessions)} session(s)"
            + (
                f", torn tail truncated ({recovery['truncated_bytes']} bytes)"
                if recovery["torn_tail"]
                else ""
            ),
            file=sys.stderr, flush=True,
        )
    metrics_httpd = None
    if args.metrics_port is not None:
        from repro.obs import start_metrics_http

        try:
            metrics_httpd, _ = start_metrics_http(
                executor.metrics, args.metrics_port
            )
        except OSError as exc:
            executor.close()
            raise SystemExit(f"cannot bind --metrics-port: {exc}")
        print(
            f"serve[{executor.mode}]: metrics on "
            f"http://127.0.0.1:{metrics_httpd.server_address[1]}/metrics",
            file=sys.stderr, flush=True,
        )
    if args.port is not None:
        from repro.service.server import serve_socket

        def ready(server) -> None:
            # Machine-parseable (the CI smoke and tests scrape it): with
            # --port 0 this is how callers learn the bound port.
            print(
                f"serve[{executor.mode}]: listening on "
                f"{server.host}:{server.port}",
                file=sys.stderr, flush=True,
            )

        try:
            handled, errors = serve_socket(
                executor, host=args.host, port=args.port, window=window,
                ready=ready,
                emit_timeout=args.emit_timeout,
                close_timeout=args.close_timeout,
                sessions=sessions,
            )
        except ServiceError as exc:
            raise SystemExit(str(exc))
        finally:
            executor.close()
            if metrics_httpd is not None:
                metrics_httpd.shutdown()
    else:
        try:
            handled, errors = serve(sys.stdin, sys.stdout, executor, window=window)
        finally:
            executor.close()
            if metrics_httpd is not None:
                metrics_httpd.shutdown()
    if journal is not None:
        # Clean drain: every admitted request has its completed record,
        # so compaction shrinks the journal to the replay/session tail.
        journal.compact()
        jstats = journal.stats()
        journal.close()
        print(
            f"serve[{executor.mode}]: journal compacted "
            f"({jstats['replay_keys']} replay key(s), "
            f"{jstats['sessions']} session tail(s), "
            f"{jstats['incomplete']} incomplete)",
            file=sys.stderr,
        )
    if tracer is not None:
        traces = _write_traces(tracer, args.trace_out, args.trace_format)
        print(
            f"serve[{executor.mode}]: wrote {traces} trace(s) to "
            f"{args.trace_out}",
            file=sys.stderr,
        )
    print(
        f"serve[{executor.mode}]: emitted {handled} response(s), "
        f"{errors} error(s)",
        file=sys.stderr,
    )
    return 1 if errors else 0


def cmd_supervise(args) -> int:
    args.supervise = True
    return cmd_serve(args)


def cmd_trace(args) -> int:
    from repro.obs import Tracer
    from repro.service import run_batch_lines

    if args.path == "-":
        lines = sys.stdin.read().splitlines()
    else:
        try:
            with open(args.path) as handle:
                lines = handle.read().splitlines()
        except OSError as exc:
            raise SystemExit(f"cannot read batch file: {exc}")
    tracer = Tracer()
    executor = _make_executor(args, tracer=tracer)
    try:
        responses = run_batch_lines(lines, executor)
    finally:
        executor.close()
    traces = _write_traces(tracer, args.out, args.format)
    errors = sum(1 for r in responses if r.verdict == "ERROR")
    print(
        f"trace[{executor.mode}]: {len(responses)} response(s), "
        f"{errors} error(s); wrote {traces} trace(s) to {args.out}",
        file=sys.stderr,
    )
    return 1 if errors else 0


# ---------------------------------------------------------------------- #
# Profiling                                                              #
# ---------------------------------------------------------------------- #

#: Pre-registry profile names kept as aliases into the scenario registry.
PROFILE_ALIASES = {"realize": "random_graphic", "tree": "tree_random"}


def cmd_profile(args) -> int:
    import cProfile
    import pstats

    from repro.service import DEFAULT_REGISTRY, RealizationRequest, ServiceError, run_request

    name = PROFILE_ALIASES.get(args.workload, args.workload)
    # The workload and its parameters are validated here rather than via
    # argparse choices so that building the parser never imports the
    # service stack.
    try:
        scenario = DEFAULT_REGISTRY.get(name)
        request = None
        if not scenario.is_primitive:
            request = RealizationRequest(
                kind=scenario.kind,
                scenario=name,
                n=args.n,
                seed=args.seed,
                engine=getattr(args, "engine", "fast"),
                sort_fidelity="full",
                # Matches realize_tree's default, which the pre-registry
                # profile runner used (the service default is min).
                tree_variant="max_diameter",
            ).validate()
    except ServiceError as exc:
        raise SystemExit(str(exc))
    profiler = cProfile.Profile()
    if scenario.is_primitive:
        net = _make_net(args.n, args)
        profiler.enable()
        scenario.runner(net, args.n, args.seed)
        profiler.disable()
    else:
        net = Network(request.size, request.config())
        profiler.enable()
        response = run_request(request, net)
        profiler.disable()
        if response.error:
            raise SystemExit(f"profile workload failed: {response.error}")
    print(f"profile: {args.workload} (n={args.n}, seed={args.seed})")
    _report(net, "cost")
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort_by).print_stats(args.top)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed Graph Realizations (IPDPS 2020) — CLI",
    )
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_engine(p) -> None:
        from repro.ncc.engine import engine_names

        p.add_argument(
            "--engine",
            choices=engine_names(),
            default="fast",
            help="round-execution engine (bit-identical; fast is the default; "
            "sharded runs the round loop across worker processes)",
        )
        p.add_argument(
            "--shards",
            type=int,
            default=None,
            help="worker-process count for --engine sharded "
            "(1..n; default: engine default, clamped to n)",
        )

    p = sub.add_parser("info", help="show NCC model parameters")
    p.add_argument("--n", type=int, default=64)
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("realize", help="degree-sequence realization")
    p.add_argument("--degrees", required=True, help="comma-separated degrees")
    p.add_argument("--explicit", action="store_true")
    p.add_argument("--envelope", action="store_true")
    p.add_argument("--fast", action="store_true", help="charged-mode sorting")
    add_engine(p)
    p.set_defaults(fn=cmd_realize)

    p = sub.add_parser("tree", help="tree realization")
    p.add_argument("--degrees", required=True)
    p.add_argument("--variant", choices=("min", "max"), default="min")
    p.add_argument("--fast", action="store_true")
    add_engine(p)
    p.set_defaults(fn=cmd_tree)

    p = sub.add_parser("connectivity", help="connectivity thresholds")
    p.add_argument("--rho", required=True, help="comma-separated thresholds")
    p.add_argument("--model", choices=("ncc0", "ncc1"), default="ncc0")
    p.add_argument("--fast", action="store_true")
    add_engine(p)
    p.set_defaults(fn=cmd_connectivity)

    p = sub.add_parser("approx", help="Õ(1) approximate realization")
    p.add_argument("--degrees", required=True)
    p.add_argument("--repairs", type=int, default=0)
    p.add_argument("--fast", action="store_true")
    add_engine(p)
    p.set_defaults(fn=cmd_approx)

    p = sub.add_parser("scenarios", help="list named workload scenarios")
    p.set_defaults(fn=cmd_scenarios)

    p = sub.add_parser(
        "batch", help="drain a JSONL request batch (file path or '-' for stdin)"
    )
    p.add_argument("path", help="JSONL file with one request object per line")
    p.add_argument(
        "--mode",
        choices=("sequential", "threads", "processes"),
        default="sequential",
        help="drain strategy (processes = one warm NetworkPool per worker "
        "process, true parallel execution)",
    )
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--no-pool", action="store_true", help="fresh network per request")
    p.add_argument("--no-cache", action="store_true", help="disable response cache")
    p.set_defaults(fn=cmd_batch)

    def add_serve_args(p) -> None:
        # Shared between `serve` and `supervise` (the supervisor rebuilds
        # the child's `serve` argv from this same namespace).
        p.add_argument(
            "--mode",
            choices=("sequential", "threads", "processes"),
            default="sequential",
            help="request handling: sequential/threads handle each line in "
            "turn; processes streams — lines are submitted to the worker "
            "pool as they arrive and responses are emitted, in input order, "
            "as they complete",
        )
        p.add_argument("--workers", type=int, default=4)
        p.add_argument("--no-pool", action="store_true", help="fresh network per request")
        p.add_argument("--no-cache", action="store_true", help="disable response cache")
        p.add_argument(
            "--host", default="127.0.0.1",
            help="bind address for the socket server (with --port)",
        )
        p.add_argument(
            "--port", type=int, default=None,
            help="serve JSONL over TCP on this port instead of stdin/stdout "
            "(0 = ephemeral; the bound address is printed to stderr)",
        )
        p.add_argument(
            "--window", type=int, default=None,
            help="in-flight backpressure window (>= 1; default "
            "%(default)s -> module default): the stdio streaming path "
            "blocks its reader at the window, the socket server rejects "
            "with error_code=ADMISSION_REJECTED",
        )
        p.add_argument(
            "--emit-timeout", type=float, default=60.0,
            help="socket server: max seconds to flush a closing "
            "connection's pending responses (default %(default)s; tightened "
            "automatically when every request on the connection carries a "
            "deadline_ms)",
        )
        p.add_argument(
            "--close-timeout", type=float, default=5.0,
            help="socket server: max seconds to wait for a closing "
            "connection's transport to shut down (default %(default)s)",
        )
        p.add_argument(
            "--hang-timeout", type=float, default=None,
            help="processes mode: kill and replace a worker whose request "
            "runs longer than this many seconds even without a deadline_ms "
            "(typed WORKER_TIMEOUT; default: off, deadlines still enforced)",
        )
        p.add_argument(
            "--trace-out", default=None, metavar="PATH",
            help="enable request-scoped tracing and write the collected "
            "traces to PATH at shutdown (--trace-format selects the format)",
        )
        p.add_argument(
            "--trace-format", choices=("chrome", "jsonl"), default="chrome",
            help="trace file format for --trace-out: Chrome trace_event JSON "
            "(load in chrome://tracing / Perfetto) or one span tree per "
            "line (default %(default)s)",
        )
        p.add_argument(
            "--metrics-port", type=int, default=None, metavar="PORT",
            help="also expose the Prometheus text exposition on "
            "http://127.0.0.1:PORT/metrics (0 = ephemeral; the bound "
            "address is printed to stderr).  The same text is available "
            "in-band via a {\"kind\": \"metrics\"} request line",
        )
        p.add_argument(
            "--journal", default=None, metavar="PATH",
            help="write-ahead request journal: every admission and "
            "completion is logged (CRC-checked) so a crash-restarted "
            "server recovers in-flight work and answers duplicate "
            "idempotency_key submissions exactly once",
        )
        p.add_argument(
            "--fsync", choices=("never", "batch", "always"), default="batch",
            help="journal fsync policy (default %(default)s): never = OS "
            "flush only, batch = fsync every 32 records plus barriers, "
            "always = fsync per record.  SIGKILL loses nothing at any "
            "policy; the policy only bounds the power-loss window",
        )
        p.add_argument(
            "--max-restarts", type=int, default=5,
            help="supervision: give up after this many crash respawns "
            "(default %(default)s; seeded exponential backoff between "
            "respawns)",
        )

    p = sub.add_parser(
        "serve",
        help="long-lived JSONL service on stdin/stdout (default) or, "
        "with --port, a multi-client TCP socket server",
    )
    add_serve_args(p)
    p.add_argument(
        "--supervise", action="store_true",
        help="run the server as a supervised child process (requires "
        "--port): a crash or SIGKILL respawns it with bounded backoff, "
        "and with --journal the restart recovers in-flight requests",
    )
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "supervise",
        help="run `serve --port N` under the crash-restart supervisor "
        "(same as `serve --supervise`; requires --port)",
    )
    add_serve_args(p)
    p.set_defaults(fn=cmd_supervise)

    p = sub.add_parser(
        "trace",
        help="drain a JSONL request batch with tracing enabled and "
        "write the span trees (file path or '-' for stdin)",
    )
    p.add_argument("path", help="JSONL file with one request object per line")
    p.add_argument(
        "--out", required=True, metavar="PATH", help="trace output file"
    )
    p.add_argument(
        "--format", choices=("chrome", "jsonl"), default="chrome",
        help="Chrome trace_event JSON or one span tree per line "
        "(default %(default)s)",
    )
    p.add_argument(
        "--mode",
        choices=("sequential", "threads", "processes"),
        default="sequential",
        help="drain strategy (processes: worker-side spans ship back "
        "over the wire and reassemble under each request's trace)",
    )
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--no-pool", action="store_true", help="fresh network per request")
    p.add_argument("--no-cache", action="store_true", help="disable response cache")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("profile", help="profile a workload under cProfile")
    p.add_argument(
        "workload",
        help="a scenario name from `python -m repro scenarios` "
        "(plus legacy aliases: realize, tree)",
    )
    p.add_argument("--n", type=int, default=256, help="network size")
    p.add_argument("--top", type=int, default=25, help="hotspots to print")
    p.add_argument(
        "--sort-by",
        choices=("cumulative", "tottime", "ncalls"),
        default="cumulative",
        help="pstats sort column",
    )
    add_engine(p)
    p.set_defaults(fn=cmd_profile)
    return parser


def main(argv=None) -> int:
    sys.setrecursionlimit(200_000)
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
