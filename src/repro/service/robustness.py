"""Retry and circuit-breaker policies for the batch executor.

Two small, independently testable pieces that ``BatchExecutor`` composes
with its hung-worker watchdog:

* :class:`RetryPolicy` — how many attempts a pool-breaking request gets
  and how long to back off between them.  Delays are jittered
  exponential backoff, but *deterministic*: a pure function of
  ``(seed, attempt)``, so chaos tests and reruns see identical timing
  decisions (the same design as :mod:`repro.service.faults`).
* :class:`CircuitBreaker` — after repeated consecutive pool breaks
  (crashes, watchdog kills), stop feeding the process pool and let the
  executor degrade to in-parent sequential execution; probe the pool
  again after a cooldown (classic closed → open → half-open cycle).
  The clock is injectable so the state machine is testable without
  sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.service.faults import hash_unit


class RetryPolicy:
    """Jittered exponential backoff with a deterministic jitter.

    ``max_attempts`` counts *total* attempts including the first (so the
    default 2 preserves the executor's historical single blind retry).
    ``delay_sec(k)`` is the pause before attempt ``k``: zero for the
    first attempt, then ``base_delay_ms * multiplier**(k-2)`` clamped to
    ``max_delay_ms`` and jittered by ±``jitter`` (fraction).  The jitter
    coin is ``hash_unit(f"{seed}:{k}")`` — two policies with the same
    seed back off identically, different seeds decorrelate.
    """

    def __init__(
        self,
        max_attempts: int = 2,
        base_delay_ms: float = 10.0,
        multiplier: float = 2.0,
        max_delay_ms: float = 1000.0,
        jitter: float = 0.5,
        seed: int = 0,
    ) -> None:
        if isinstance(max_attempts, bool) or not isinstance(max_attempts, int):
            raise ValueError(f"max_attempts must be an int, got {max_attempts!r}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay_ms < 0 or max_delay_ms < 0:
            raise ValueError("delays must be >= 0")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ValueError(f"seed must be an int, got {seed!r}")
        self.max_attempts = max_attempts
        self.base_delay_ms = float(base_delay_ms)
        self.multiplier = float(multiplier)
        self.max_delay_ms = float(max_delay_ms)
        self.jitter = float(jitter)
        self.seed = seed

    def delay_sec(self, attempt: int) -> float:
        """Backoff (seconds) before attempt number ``attempt`` (1-based)."""
        if attempt <= 1:
            return 0.0
        base = self.base_delay_ms * (self.multiplier ** (attempt - 2))
        base = min(base, self.max_delay_ms)
        coin = hash_unit(f"{self.seed}:{attempt}")
        jittered = base * (1.0 - self.jitter + 2.0 * self.jitter * coin)
        return min(jittered, self.max_delay_ms) / 1000.0

    def schedule(self, attempts: int) -> list:
        """The full seeded backoff schedule (seconds) for ``attempts``
        tries — what a supervisor logs up front so an operator can see
        the worst-case respawn timeline before it happens."""
        return [self.delay_sec(attempt) for attempt in range(1, attempts + 1)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base_delay_ms={self.base_delay_ms}, seed={self.seed})"
        )


class CircuitBreaker:
    """Closed → open → half-open breaker over consecutive pool breaks.

    ``record_failure()`` on every pool break, ``record_success()`` on
    every completed pool job.  ``failure_threshold`` consecutive
    failures open the breaker: ``allow()`` answers False (callers
    degrade) until ``cooldown_sec`` elapses, then exactly one probe is
    let through (half-open); its success closes the breaker, its
    failure reopens it and restarts the cooldown.  Thread-safe; the
    clock is injectable for tests.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_sec: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if isinstance(failure_threshold, bool) or not isinstance(
            failure_threshold, int
        ):
            raise ValueError(
                f"failure_threshold must be an int, got {failure_threshold!r}"
            )
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_sec < 0:
            raise ValueError(f"cooldown_sec must be >= 0, got {cooldown_sec}")
        self.failure_threshold = failure_threshold
        self.cooldown_sec = float(cooldown_sec)
        self.clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        self.opens = 0
        self.failures_total = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May the caller dispatch to the pool right now?

        In half-open exactly one caller gets True (the probe) until that
        probe resolves via record_success/record_failure.
        """
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if self.clock() - self._opened_at >= self.cooldown_sec:
                    self._state = self.HALF_OPEN
                    self._probe_inflight = True
                    return True
                return False
            # HALF_OPEN: one probe at a time.
            if self._probe_inflight:
                return False
            self._probe_inflight = True
            return True

    def record_failure(self) -> None:
        """A pool break happened (crash or watchdog kill)."""
        with self._lock:
            self.failures_total += 1
            self._consecutive_failures += 1
            if self._state == self.HALF_OPEN:
                self._state = self.OPEN
                self._opened_at = self.clock()
                self._probe_inflight = False
                self.opens += 1
            elif (
                self._state == self.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = self.OPEN
                self._opened_at = self.clock()
                self.opens += 1

    def record_success(self) -> None:
        """A pool job completed normally."""
        with self._lock:
            self._consecutive_failures = 0
            if self._state == self.HALF_OPEN:
                self._state = self.CLOSED
                self._probe_inflight = False

    def snapshot(self) -> Dict[str, object]:
        """Counters for ``BatchExecutor.stats()`` / the serve stats kind."""
        with self._lock:
            return {
                "state": self._state,
                "opens": self.opens,
                "failures_total": self.failures_total,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "cooldown_sec": self.cooldown_sec,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CircuitBreaker(state={self.state!r}, opens={self.opens})"
