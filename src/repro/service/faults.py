"""Deterministic fault injection for the service stack.

Chaos testing only works if the chaos is *reproducible*: a failure seen
once in CI must be re-runnable locally, bit for bit.  This module
replaces the old fork-only ``_CRASH_REQUEST_IDS`` module-global seam in
``executor.py`` with a seeded, serializable :class:`FaultPlan` that

* travels to worker processes under **both** fork and spawn start
  methods (via the ``REPRO_FAULT_PLAN`` environment variable, re-read by
  every pool worker's initializer), and
* decides probabilistic fires with a pure hash of
  ``(seed, rule index, action, request_id)`` — no shared RNG state, so
  every process, thread, and rerun reaches the same verdict for the
  same request.

Supported actions (each applied at its natural choke point):

==============  =====================================================
``crash``       worker ``os._exit(70)`` before running the request
``hang``        worker sleeps (default effectively forever) — watchdog prey
``slow``        worker sleeps ``delay_ms`` then runs normally
``wire_error``  worker returns a malformed wire tuple (decode fails in
                the parent, exercising the transport-error envelope)
``writer_error``  socket server treats the next write of a matching
                response as a broken pipe (``_emit_loop``)
``server_kill``  the *server* process SIGKILLs itself right after the
                matching request's ``admitted`` journal record lands —
                the supervisor/restart drill (requires a journal)
``fsync_error``  the journal's next fsync barrier for a matching record
                fails (counted, durability degrades, service continues)
==============  =====================================================

Nothing here runs in production paths unless a plan is installed: the
hot-path cost is one module-global ``is None`` check.

Rules with ``max_fires`` count fires **per process** by default, which
is wrong for exactly the two new actions: a ``server_kill`` rule must
not re-fire in the respawned server (the supervisor would kill-loop to
its restart bound), and spawn-mode pool children re-parsing
``REPRO_FAULT_PLAN`` used to get fresh counters and double-fire
one-shot rules.  A plan may therefore carry a ``state_path``: a shared
append-only file recording every fire (one rule index per line), making
``max_fires`` a *cross-process* bound that survives respawns and
re-parses.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

ACTIONS = (
    "crash",
    "hang",
    "slow",
    "wire_error",
    "writer_error",
    "server_kill",
    "fsync_error",
)


def hash_unit(token: str) -> float:
    """Map ``token`` to a deterministic uniform coin in [0, 1).

    sha256 rather than ``crc32``: CRC is *linear*, so tokens differing
    by a fixed character XOR (e.g. seed 3 vs seed 4) yield perfectly
    correlated high bits — adjacent seeds would flip the same requests.
    A cryptographic hash has no such structure, and is still a pure
    function of the token (stable across processes and start methods,
    unlike Python's salted ``hash`` or shared ``random.Random`` state).
    """
    digest = hashlib.sha256(token.encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64

ENV_VAR = "REPRO_FAULT_PLAN"

# Sleep used for "hang" when no delay_ms is given: far beyond any
# deadline or watchdog bound, short enough that a leaked process exits
# on its own eventually even if SIGKILL never arrives.
HANG_SLEEP_SEC = 3600.0


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: fire ``action`` for matching requests.

    ``request_ids`` empty means "match every request"; ``probability``
    below 1.0 makes the (deterministic) coin decide; ``max_fires`` caps
    how many times the rule fires per process.
    """

    action: str
    request_ids: Tuple[str, ...] = ()
    probability: float = 1.0
    delay_ms: int = 0
    max_fires: Optional[int] = None

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r} (expected one of {ACTIONS})"
            )
        object.__setattr__(self, "request_ids", tuple(str(r) for r in self.request_ids))
        if isinstance(self.probability, bool) or not isinstance(
            self.probability, (int, float)
        ):
            raise ValueError(f"probability must be a number, got {self.probability!r}")
        if not 0.0 <= float(self.probability) <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if isinstance(self.delay_ms, bool) or not isinstance(self.delay_ms, int):
            raise ValueError(f"delay_ms must be an int, got {self.delay_ms!r}")
        if self.delay_ms < 0:
            raise ValueError(f"delay_ms must be >= 0, got {self.delay_ms}")
        if self.max_fires is not None:
            if isinstance(self.max_fires, bool) or not isinstance(self.max_fires, int):
                raise ValueError(f"max_fires must be an int, got {self.max_fires!r}")
            if self.max_fires < 1:
                raise ValueError(f"max_fires must be >= 1, got {self.max_fires}")

    def sleep_sec(self) -> float:
        """Sleep duration for hang/slow rules."""
        if self.delay_ms:
            return self.delay_ms / 1000.0
        return HANG_SLEEP_SEC if self.action == "hang" else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "action": self.action,
            "request_ids": list(self.request_ids),
            "probability": self.probability,
            "delay_ms": self.delay_ms,
            "max_fires": self.max_fires,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultRule":
        if not isinstance(payload, dict):
            raise ValueError(f"fault rule must be an object, got {payload!r}")
        known = {"action", "request_ids", "probability", "delay_ms", "max_fires"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown fault rule fields: {sorted(unknown)}")
        if "action" not in payload:
            raise ValueError("fault rule missing 'action'")
        return cls(
            action=payload["action"],
            request_ids=tuple(payload.get("request_ids") or ()),
            probability=payload.get("probability", 1.0),
            delay_ms=payload.get("delay_ms", 0),
            max_fires=payload.get("max_fires"),
        )


class FaultPlan:
    """A seeded set of :class:`FaultRule` with per-process fire counters.

    :meth:`match` is the single decision point: given an action and a
    request id it returns the first rule that fires (or None).  The
    probabilistic coin is
    ``hash_unit(f"{seed}:{i}:{action}:{request_id}")`` — stable across
    processes and start methods.  Fire counters (for ``max_fires``) are
    per plan instance, hence per process: each pool worker parses its
    own plan from the environment.  With ``state_path`` set, fires are
    additionally recorded in (and counted from) a shared append-only
    file, so the cap holds across processes, respawns and env
    re-parses — a one-shot ``crash`` rule fires once *globally* instead
    of once per spawned child, and a ``server_kill`` rule cannot
    kill-loop the supervisor.
    """

    def __init__(
        self,
        rules: Sequence[FaultRule],
        seed: int = 0,
        state_path: Optional[str] = None,
    ) -> None:
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ValueError(f"seed must be an int, got {seed!r}")
        if state_path is not None and not isinstance(state_path, str):
            raise ValueError(f"state_path must be a string, got {state_path!r}")
        self.seed = seed
        self.state_path = state_path
        self._fired: Dict[int, int] = {}
        self._lock = threading.Lock()

    def _shared_count(self, index: int) -> int:
        """Fires recorded for rule ``index`` in the shared state file."""
        assert self.state_path is not None
        try:
            with open(self.state_path, "r", encoding="ascii") as fh:
                wanted = str(index)
                return sum(1 for line in fh if line.strip() == wanted)
        except FileNotFoundError:
            return 0

    def _record_shared_fire(self, index: int) -> None:
        assert self.state_path is not None
        # O_APPEND: concurrent writers interleave whole lines.  Two
        # processes racing through the read-then-append window can
        # overfire by one — the deterministic choke points the tests use
        # are single-threaded, so the simplicity wins.
        with open(self.state_path, "a", encoding="ascii") as fh:
            fh.write(f"{index}\n")

    def _coin(self, index: int, rule: FaultRule, request_id: str) -> bool:
        token = f"{self.seed}:{index}:{rule.action}:{request_id}"
        return hash_unit(token) < float(rule.probability)

    def match(self, action: str, request_id: str) -> Optional[FaultRule]:
        """First rule firing for (action, request_id), or None."""
        for index, rule in enumerate(self.rules):
            if rule.action != action:
                continue
            if rule.request_ids and request_id not in rule.request_ids:
                continue
            if rule.probability < 1.0 and not self._coin(index, rule, request_id):
                continue
            with self._lock:
                fired = self._fired.get(index, 0)
                if rule.max_fires is not None:
                    if self.state_path is not None:
                        fired = max(fired, self._shared_count(index))
                    if fired >= rule.max_fires:
                        continue
                    if self.state_path is not None:
                        self._record_shared_fire(index)
                self._fired[index] = self._fired.get(index, 0) + 1
            return rule
        return None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }
        if self.state_path is not None:
            out["state_path"] = self.state_path
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise ValueError(f"fault plan must be an object, got {payload!r}")
        unknown = set(payload) - {"seed", "rules", "state_path"}
        if unknown:
            raise ValueError(f"unknown fault plan fields: {sorted(unknown)}")
        rules = payload.get("rules", [])
        if not isinstance(rules, (list, tuple)):
            raise ValueError(f"fault plan rules must be a list, got {rules!r}")
        return cls(
            rules=[FaultRule.from_dict(rule) for rule in rules],
            seed=payload.get("seed", 0),
            state_path=payload.get("state_path"),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(seed={self.seed}, rules={len(self.rules)})"


# ---------------------------------------------------------------------- #
# Process-wide installation                                              #
# ---------------------------------------------------------------------- #

# _UNSET: env not consulted yet.  None: consulted, no plan.  FaultPlan:
# active.  A module global (not threading.local): faults must be visible
# to the executor's callback threads and the asyncio server alike.
_UNSET = object()
_active: object = _UNSET
_lock = threading.Lock()


def install(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` process-wide (None disables injection)."""
    global _active
    with _lock:
        _active = plan


def clear() -> None:
    """Drop any installed plan *and* the env-parse cache (test hygiene)."""
    global _active
    with _lock:
        _active = _UNSET


def plan_from_env(environ=os.environ) -> Optional[FaultPlan]:
    """Parse ``REPRO_FAULT_PLAN`` from ``environ`` (None if unset/empty)."""
    raw = environ.get(ENV_VAR, "").strip()
    if not raw:
        return None
    return FaultPlan.from_json(raw)


def active() -> Optional[FaultPlan]:
    """The process's current plan, lazily sourced from the environment.

    First call with nothing installed consults ``REPRO_FAULT_PLAN`` and
    caches the result (including the no-plan case) — the hot path stays
    a single global read.  A malformed env plan raises loudly rather
    than silently running without chaos.
    """
    global _active
    plan = _active
    if plan is _UNSET:
        with _lock:
            if _active is _UNSET:
                _active = plan_from_env()
            plan = _active
    return plan  # type: ignore[return-value]


def ensure_worker_plan() -> None:
    """Pool-worker initializer hook: (re)load the plan for this process.

    Under spawn the child starts clean, so the env var is the only
    channel; under fork a parent-installed plan is inherited but its
    fire counters are shared-by-copy — re-parsing from the environment
    (when set) gives every worker fresh counters.  With no env var set,
    an inherited (fork) install is kept.

    Fresh counters per process are exactly what one-shot rules must
    *not* get (a ``max_fires=1`` rule would re-fire in every spawned
    child): plans that need the cap to hold across processes carry a
    ``state_path``, whose shared fire log survives this re-parse.
    """
    env_plan = plan_from_env()
    if env_plan is not None:
        install(env_plan)
    elif active() is None:
        install(None)
