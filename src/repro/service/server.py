"""Asyncio TCP front end for the realization service.

The paper's NCC model targets overlay/peer-to-peer settings where many
independent parties issue small realization queries concurrently — a
workload the stdio ``serve`` pipe (one client, one stream) cannot
express.  :class:`SocketServer` multiplexes any number of newline-
delimited JSONL connections onto one shared :class:`BatchExecutor`:

* **Same envelopes.**  Each line is parsed by the executor's own
  ``parse_request_payload``; responses are the standard
  :class:`~repro.service.api.RealizationResponse` dicts.  The executor's
  cache/coalescing layers sit behind the socket unchanged, so responses
  are bit-identical to the stdio and ``run()`` paths.
* **Per-connection in-order streaming.**  Every connection owns a FIFO
  of pending items; a response is written as soon as its future
  completes *and* every earlier response on that connection has been
  written.  Connections never block each other.
* **Bounded admission, typed rejection.**  A global in-flight window
  (the same validated knob as the stdio path's ``--window``) caps the
  work outstanding across all clients, and each client is further held
  to a fair share ``max(1, window // connections)``.  Overflow is not
  queued: the request is answered immediately with an ``ERROR``
  envelope carrying ``error_code="ADMISSION_REJECTED"``, so clients can
  back off and retry instead of silently stalling.
* **Round-robin fairness.**  The reader yields to the event loop after
  every admission, so pipelined connections interleave one request at a
  time instead of one socket being drained dry first.
* **Graceful drain.**  ``drain()`` (installed on SIGTERM/SIGINT by
  :func:`serve_socket`) stops accepting connections, rejects new
  requests, lets in-flight work finish and flush, then shuts down.
* **Introspection.**  A ``{"kind": "stats"}`` line is answered inline
  (never queued behind realization work) with the executor's counters —
  cache, coalescing, crashes, and the p50/p99 latency recorder — plus
  the server's own admission counters.
* **Session resume.**  A ``{"kind": "session"}`` handshake issues a
  token; every realization response emitted on a session-bound
  connection is buffered under a monotone ``session_seq`` (and, with a
  journal attached, recorded durably).  A client that reconnects — after
  a dropped socket *or* a server restart — presents the token with the
  count of responses it has processed and receives the unacked tail
  replayed in order, field-identical, before new traffic:

  .. code-block:: text

     C> {"kind": "session"}
     S< {"kind": "session", "ok": true, "verdict": "SESSION",
         "session": "ab12...", "resumed": false, "replayed": 0, ...}
     C> {"kind": "tree", "request_id": "t1", "degrees": [1, 1]}
     S< {..., "request_id": "t1", "session_seq": 0}
        -- connection drops; client reconnects --
     C> {"kind": "session", "session": "ab12...", "acked": 0}
     S< {"kind": "session", ..., "resumed": true, "replayed": 1}
     S< {..., "request_id": "t1", "session_seq": 0}   (replay)
"""

from __future__ import annotations

import asyncio
import json
import secrets
import signal
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.obs import PROMETHEUS_CONTENT_TYPE
from repro.service import faults
from repro.service.api import RealizationResponse, ServiceError, error_response
from repro.service.executor import (
    BatchExecutor,
    parse_request_payload,
    validate_window,
)
from repro.service.pool import NetworkPool

__all__ = [
    "ADMISSION_REJECTED",
    "METRICS_KIND",
    "SESSION_KIND",
    "SESSION_UNKNOWN",
    "STATS_KIND",
    "SocketServer",
    "retry_after_hint",
    "serve_socket",
    "validate_timeout",
]


def validate_timeout(name: str, value: float) -> float:
    """Validate an emit/close timeout knob: a finite number > 0."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ServiceError(f"{name!r} must be a number, got {value!r}")
    value = float(value)
    if not value > 0 or value != value or value == float("inf"):
        raise ServiceError(f"{name!r} must be a finite number > 0, got {value}")
    return value

#: Typed ``error_code`` for requests refused by admission control (the
#: window is full, the client exceeded its fair share, or the server is
#: draining).  The request was *not* executed; clients should back off
#: and resubmit.
ADMISSION_REJECTED = "ADMISSION_REJECTED"

#: Request ``kind`` answered by the server itself (not a realizer —
#: deliberately absent from ``api.KINDS`` so the stdio path still
#: rejects it as unknown rather than half-supporting it).
STATS_KIND = "stats"

#: Request ``kind`` answered inline with the Prometheus text exposition
#: of the executor's metrics registry (same carve-out as ``stats``).
#: The envelope wraps the exposition: ``{"kind": "metrics",
#: "verdict": "METRICS", "content_type": ..., "text": ...}`` — scrape
#: bridges unwrap ``text`` verbatim.
METRICS_KIND = "metrics"

#: Request ``kind`` for the session-resume handshake (server-side
#: carve-out like ``stats``/``metrics``).  Bare → issue a fresh token;
#: with ``session``+``acked`` → rebind and replay the unacked tail;
#: with ``session``+``ack`` → trim the buffer only (flow control).
SESSION_KIND = "session"

#: Typed ``error_code`` for a resume presenting a token this server has
#: no state for (never issued, expired/evicted, or the journal holding
#: it was compacted away).  The client's only recourse is a fresh
#: handshake and re-submission (idempotency keys make that safe).
SESSION_UNKNOWN = "SESSION_UNKNOWN"

#: Deterministic ``retry_after_ms`` hint on draining-server rejections:
#: the drain outlasts any window pressure, so the hint is a flat bound.
RETRY_AFTER_DRAINING_MS = 1000

#: Unacked responses buffered per session (oldest dropped beyond this —
#: a client that never acks cannot pin unbounded memory).
SESSION_BUFFER_LIMIT = 1024

#: Sessions tracked at once (oldest evicted beyond this).
MAX_SESSIONS = 1024


def retry_after_hint(inflight: int, window: int) -> int:
    """Deterministic backoff hint (ms) for ``ADMISSION_REJECTED``.

    Scales linearly with window occupancy — a nearly-empty window says
    "come right back", a saturated one says "give it ~100ms" — and is a
    pure function of two counters, so identical load patterns produce
    identical hints (the chaos bench asserts on them).
    """
    occupancy = min(1.0, inflight / max(1, window))
    return max(1, int(round(100 * occupancy)))


#: Sentinel closing a connection's emit FIFO.
_EOF = object()

#: Sentinel: ``_route`` already enqueued everything itself (the session
#: handshake emits a reply *plus* replayed responses).
_HANDLED = object()

_WRITE_FAILURES = (OSError, RuntimeError)  # reset/broken pipe/closed transport


class _Session:
    """Resumable response stream: the unacked tail, keyed by seq."""

    __slots__ = ("token", "next_index", "buffer", "dropped")

    def __init__(self, token: str) -> None:
        self.token = token
        self.next_index = 0  # next session_seq to assign at admission
        # session_seq -> response payload (without the seq, re-stamped
        # at emit), insertion-ordered = seq-ordered.
        self.buffer: "OrderedDict[int, Dict[str, Any]]" = OrderedDict()
        self.dropped = 0

    def record(self, sidx: int, payload: Dict[str, Any]) -> None:
        self.buffer[sidx] = payload
        while len(self.buffer) > SESSION_BUFFER_LIMIT:
            self.buffer.popitem(last=False)
            self.dropped += 1

    def trim(self, acked: int) -> None:
        """Drop buffered responses the client has processed."""
        for sidx in [s for s in self.buffer if s < acked]:
            del self.buffer[sidx]


class _Indexed:
    """A FIFO item bound to a session slot (stamped ``session_seq``)."""

    __slots__ = ("index", "item", "session")

    def __init__(self, index: int, item: Any, session: "_Session") -> None:
        self.index = index
        self.item = item
        self.session = session


class _Replay:
    """A buffered response re-emitted on resume (not re-recorded)."""

    __slots__ = ("index", "payload")

    def __init__(self, index: int, payload: Dict[str, Any]) -> None:
        self.index = index
        self.payload = payload


class _Connection:
    """Per-connection state: the in-order emit FIFO and admission count."""

    __slots__ = (
        "writer", "queue", "inflight", "broken", "deadline_horizon", "bare",
        "session",
    )

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.queue: "asyncio.Queue[Any]" = asyncio.Queue()
        self.inflight = 0  # admitted, future not yet done
        self.broken = False  # write failed: consume silently from here on
        # Latest absolute deadline admitted on this connection, and
        # whether any admitted request carried *no* deadline (sticky:
        # one bare request means the emit flush can't be deadline-bounded).
        self.deadline_horizon: Optional[float] = None
        self.bare = False
        self.session: Optional[_Session] = None


class SocketServer:
    """JSONL-over-TCP multiplexer for one shared :class:`BatchExecutor`.

    Run from inside a running event loop::

        server = SocketServer(executor, port=0, window=64)
        await server.start()          # binds; server.port is now real
        ...
        server.drain()                # graceful shutdown
        handled, errors = await server.wait_done()

    or use :func:`serve_socket` for the blocking CLI shape.

    ``window`` is the shared backpressure knob (``None`` → the module
    default, else a validated int ≥ 1 — exactly :func:`serve`'s rule).
    """

    def __init__(
        self,
        executor: BatchExecutor,
        host: str = "127.0.0.1",
        port: int = 0,
        window: Optional[int] = None,
        emit_timeout: float = 60.0,
        close_timeout: float = 5.0,
        sessions: Optional[
            Dict[str, List[Tuple[int, RealizationResponse]]]
        ] = None,
    ) -> None:
        self.executor = executor
        self.host = host
        self.port = port  # rewritten with the bound port by start()
        self.window = validate_window(window)
        # Shutdown knobs (previously hard-coded): the bound on flushing
        # a closing connection's FIFO, and on waiting for the transport
        # to report closed.  When every request a connection admitted
        # carried a deadline, the emit bound is tightened to just past
        # the latest deadline — an expired client never pins the drain
        # for the full emit_timeout.
        self.emit_timeout = validate_timeout("emit_timeout", emit_timeout)
        self.close_timeout = validate_timeout("close_timeout", close_timeout)
        self.handled = 0  # responses emitted (all connections)
        self.errors = 0  # of those, verdict == "ERROR"
        self.rejected = 0  # admission rejections (counted in errors too)
        self.connections_total = 0
        self.started_at = time.monotonic()  # re-stamped by start()
        self._inflight = 0  # admitted requests whose future is not done
        self._connections: Set[_Connection] = set()
        self._conn_tasks: "Set[asyncio.Task]" = set()
        self._draining = False
        self._server: Optional[asyncio.base_events.Server] = None
        self._threads: Optional[ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._done: Optional[asyncio.Event] = None
        # Session resume: token -> _Session, optionally seeded from a
        # journal recovery (BatchExecutor.recover_journal()) so clients
        # of the *previous* server process can resume here.
        self.sessions_created = 0
        self.sessions_resumed = 0
        self.session_replayed = 0  # responses re-emitted on resume
        self._sessions: "OrderedDict[str, _Session]" = OrderedDict()
        for token, tail in (sessions or {}).items():
            session = _Session(token)
            for sidx, response in tail:
                session.buffer[sidx] = response.to_dict()
                session.next_index = max(session.next_index, sidx + 1)
            self._sessions[token] = session

    # ------------------------------------------------------------------ #
    # Lifecycle                                                          #
    # ------------------------------------------------------------------ #

    async def start(self) -> "SocketServer":
        """Bind and start accepting; resolves ``self.port`` (port 0 ⇒
        ephemeral) so callers can discover the real address."""
        self._loop = asyncio.get_running_loop()
        self._done = asyncio.Event()
        self.started_at = time.monotonic()
        # The server's own admission/emission counters join the
        # executor's registry as a collector, so one scrape (`metrics`
        # kind or --metrics-port) sees the whole serve stack.  Test
        # stubs standing in for the executor may carry no registry.
        registry = getattr(self.executor, "metrics", None)
        if registry is not None:
            registry.register_collector("server", self._server_metrics)
        if self.executor.mode != "processes":
            # handle() blocks — it must never run on the event loop.  A
            # sequential executor keeps its semantics behind exactly one
            # thread; a threads executor gets its own worker count.
            workers = 1 if self.executor.mode == "sequential" else self.executor.workers
            self._threads = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="socket-serve"
            )
        self._server = await asyncio.start_server(
            self._client_connected, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    def drain(self) -> None:
        """Begin graceful shutdown (idempotent, callable from signal
        handlers): stop accepting, reject new requests, let in-flight
        work finish and flush, then release the worker threads and wake
        :meth:`wait_done`."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
        assert self._loop is not None, "drain() before start()"
        task = self._loop.create_task(self._finish_drain())
        # Keep a reference so the finisher is never garbage-collected
        # mid-flight (asyncio holds tasks weakly).
        self._drain_task = task

    async def _finish_drain(self) -> None:
        while self._inflight > 0:
            await asyncio.sleep(0.01)
        # Every admitted future is done; completed responses still
        # sitting in connection FIFOs flush when the handler's finally
        # block runs.  Cancelling the handler is the EOF nudge — its
        # read loop is parked on clients that may never close.
        for task in list(self._conn_tasks):
            task.cancel()
        while self._conn_tasks:
            await asyncio.sleep(0.01)
        if self._server is not None:
            await self._server.wait_closed()
        if self._threads is not None:
            self._threads.shutdown(wait=True)
        assert self._done is not None
        self._done.set()

    async def wait_done(self) -> Tuple[int, int]:
        """Block until a :meth:`drain` completes; ``(handled, errors)``
        with the same semantics as :func:`serve`."""
        assert self._done is not None, "wait_done() before start()"
        await self._done.wait()
        return self.handled, self.errors

    # ------------------------------------------------------------------ #
    # Per-connection machinery                                           #
    # ------------------------------------------------------------------ #

    async def _client_connected(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._draining:
            # Accepted before close() landed: one typed rejection, bye.
            rejection = error_response(
                "", "?", "server is draining; connection rejected",
                code=ADMISSION_REJECTED,
            )
            try:
                writer.write((json.dumps(rejection.to_dict()) + "\n").encode())
                await writer.drain()
            except _WRITE_FAILURES:
                pass
            writer.close()
            return
        conn = _Connection(writer)
        self._connections.add(conn)
        self.connections_total += 1
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        emit = asyncio.create_task(self._emit_loop(conn))
        try:
            await self._read_loop(reader, conn)
        except asyncio.CancelledError:
            pass  # drain's EOF nudge: flush and close below
        except (ConnectionResetError, BrokenPipeError):
            pass  # client vanished mid-read
        finally:
            self._connections.discard(conn)
            conn.queue.put_nowait(_EOF)
            try:
                # Shielded: a second cancellation must not abandon the
                # flush of already-completed responses.
                await asyncio.wait_for(
                    asyncio.shield(emit), timeout=self._emit_bound(conn)
                )
            except (asyncio.TimeoutError, asyncio.CancelledError):
                emit.cancel()
            writer.close()
            try:
                await asyncio.wait_for(
                    writer.wait_closed(), timeout=self.close_timeout
                )
            except (asyncio.TimeoutError, asyncio.CancelledError, *_WRITE_FAILURES):
                pass
            if task is not None:
                self._conn_tasks.discard(task)

    def _emit_bound(self, conn: _Connection) -> float:
        """Flush bound for a closing connection's emit FIFO.

        ``emit_timeout`` by default; when *every* request the connection
        admitted carried a deadline, tightened to one second past the
        latest of those deadlines (floored at 0.5s) — the executor
        answers each of them by then, typed or realized.
        """
        bound = self.emit_timeout
        if conn.deadline_horizon is not None and not conn.bare:
            remaining = conn.deadline_horizon - time.monotonic() + 1.0
            bound = min(bound, max(0.5, remaining))
        return bound

    async def _read_loop(
        self, reader: asyncio.StreamReader, conn: _Connection
    ) -> None:
        while True:
            line = await reader.readline()
            if not line:
                return  # client EOF
            text = line.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            item = self._route(text, conn)
            if item is not _HANDLED:
                conn.queue.put_nowait(item)
            # Round-robin fairness: yield after every admission so
            # pipelined connections interleave one request at a time
            # instead of one socket being drained dry first.
            await asyncio.sleep(0)

    def _route(self, text: str, conn: _Connection) -> Any:
        """One request line -> FIFO item: a response payload (parse
        error, rejection, stats) or the admitted request's future.
        Returns ``_HANDLED`` when it enqueued items itself (the session
        handshake emits a reply plus any replayed responses)."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            return self._immediate(
                error_response("", "?", f"bad JSON: {exc}"), conn
            )
        if isinstance(payload, dict) and payload.get("kind") == STATS_KIND:
            return self._stats_envelope(payload)
        if isinstance(payload, dict) and payload.get("kind") == METRICS_KIND:
            return self._metrics_envelope(payload)
        if isinstance(payload, dict) and payload.get("kind") == SESSION_KIND:
            self._session_handshake(payload, conn)
            return _HANDLED
        parsed = parse_request_payload(payload)
        if isinstance(parsed, RealizationResponse):
            return self._immediate(parsed, conn)  # parse error envelope
        return self._admit(parsed, conn)

    def _immediate(self, response: RealizationResponse, conn: _Connection) -> Any:
        """An envelope answered without executing (parse error or
        admission rejection): journaled as a ``rejected`` record when a
        journal is attached, and bound to the next session slot so a
        resumed client sees the identical stream."""
        session = conn.session
        slot: Optional[Tuple[str, int]] = None
        sidx: Optional[int] = None
        if session is not None:
            sidx = session.next_index
            session.next_index += 1
            slot = (session.token, sidx)
        journal = getattr(self.executor, "journal", None)
        if journal is not None:
            journal.append_rejected(response, slot)
        if sidx is None:
            return response
        assert session is not None
        return _Indexed(sidx, response, session)

    # ------------------------------------------------------------------ #
    # Session resume                                                     #
    # ------------------------------------------------------------------ #

    def _session_envelope(
        self, request_id: str, session: _Session, resumed: bool, replayed: int
    ) -> Dict[str, Any]:
        return {
            "request_id": request_id,
            "kind": SESSION_KIND,
            "ok": True,
            "verdict": "SESSION",
            "session": session.token,
            "resumed": resumed,
            "replayed": replayed,
            "next_seq": session.next_index,
        }

    def _session_handshake(self, payload: Dict[str, Any], conn: _Connection) -> None:
        """Create, resume, or ack a session (items go straight onto the
        connection FIFO: the reply, then any replayed responses, strictly
        before traffic admitted afterwards)."""
        request_id = str(payload.get("request_id") or "")
        token = payload.get("session")
        ack_only = "ack" in payload
        acked = payload.get("ack" if ack_only else "acked", 0)
        if (
            not isinstance(acked, int)
            or isinstance(acked, bool)
            or acked < 0
        ):
            conn.queue.put_nowait(
                error_response(
                    request_id, SESSION_KIND,
                    f"'{'ack' if ack_only else 'acked'}' must be a "
                    f"non-negative integer, got {acked!r}",
                )
            )
            return
        if token is None:
            while len(self._sessions) >= MAX_SESSIONS:
                self._sessions.popitem(last=False)  # oldest token out
            token = secrets.token_hex(8)
            while token in self._sessions:  # pragma: no cover - 2^-64
                token = secrets.token_hex(8)
            session = _Session(token)
            self._sessions[token] = session
            conn.session = session
            self.sessions_created += 1
            conn.queue.put_nowait(
                self._session_envelope(request_id, session, False, 0)
            )
            return
        session = (
            self._sessions.get(token) if isinstance(token, str) else None
        )
        if session is None:
            conn.queue.put_nowait(
                error_response(
                    request_id, SESSION_KIND,
                    f"unknown session token {token!r}; open a fresh session "
                    "and resubmit (idempotency keys make resubmission safe)",
                    code=SESSION_UNKNOWN,
                )
            )
            return
        session.trim(acked)
        if ack_only:
            conn.queue.put_nowait(
                self._session_envelope(request_id, session, False, 0)
            )
            return
        conn.session = session
        self._sessions.move_to_end(token)
        self.sessions_resumed += 1
        pending = list(session.buffer.items())
        conn.queue.put_nowait(
            self._session_envelope(request_id, session, True, len(pending))
        )
        for sidx, buffered in pending:
            conn.queue.put_nowait(_Replay(sidx, buffered))

    def _admit(self, request: Any, conn: _Connection) -> Any:
        """Admission control: dispatch within the window, typed
        rejection beyond it.  Rejected requests are never executed; the
        rejection carries a deterministic ``retry_after_ms`` hint
        (:func:`retry_after_hint`, from window occupancy) in ``detail``
        so clients pace their resubmission."""
        if self._draining:
            self.rejected += 1
            return self._immediate(
                error_response(
                    request.request_id, request.kind,
                    "server is draining; request rejected",
                    code=ADMISSION_REJECTED,
                    retry_after_ms=RETRY_AFTER_DRAINING_MS,
                ),
                conn,
            )
        if self._inflight >= self.window:
            self.rejected += 1
            return self._immediate(
                error_response(
                    request.request_id, request.kind,
                    f"in-flight window full ({self.window}); back off and retry",
                    code=ADMISSION_REJECTED,
                    retry_after_ms=retry_after_hint(self._inflight, self.window),
                ),
                conn,
            )
        share = max(1, self.window // max(1, len(self._connections)))
        if conn.inflight >= share:
            self.rejected += 1
            return self._immediate(
                error_response(
                    request.request_id, request.kind,
                    f"per-connection fair share exhausted "
                    f"({share} of window {self.window}); back off and retry",
                    code=ADMISSION_REJECTED,
                    retry_after_ms=retry_after_hint(self._inflight, self.window),
                ),
                conn,
            )
        self._inflight += 1
        conn.inflight += 1
        # Deadlines are stamped at admission — queue time behind the
        # thread/process pool counts against the client's budget, like
        # any real RPC deadline.
        deadline: Optional[float] = None
        if getattr(request, "deadline_ms", None) is not None:
            deadline = time.monotonic() + request.deadline_ms / 1000.0
            if conn.deadline_horizon is None or deadline > conn.deadline_horizon:
                conn.deadline_horizon = deadline
        else:
            conn.bare = True
        # Session slot assignment happens at admission (read order), and
        # the per-connection FIFO preserves it through emit — so
        # session_seq is dense and ordered even though futures complete
        # out of order.  The slot rides to the executor so the journal's
        # admitted record can rebuild the session after a restart.
        slot: Optional[Tuple[str, int]] = None
        sidx: Optional[int] = None
        if conn.session is not None:
            sidx = conn.session.next_index
            conn.session.next_index += 1
            slot = (conn.session.token, sidx)
        if self.executor.mode == "processes":
            # The async pool path — and deliberately the non-reopening
            # _submit: a racing close() must resolve the future, not
            # resurrect the pool.
            if slot is not None:
                cfut = self.executor._submit(
                    request, Future(), deadline=deadline, session=slot
                )
            else:
                cfut = self.executor._submit(request, Future(), deadline=deadline)
        else:
            assert self._threads is not None
            if slot is not None:
                cfut = self._threads.submit(self.executor.handle, request, slot)
            else:
                cfut = self._threads.submit(self.executor.handle, request)
        cfut.add_done_callback(lambda _f, c=conn: self._release_threadsafe(c))
        wrapped = asyncio.wrap_future(cfut, loop=self._loop)
        if sidx is None:
            return wrapped
        assert conn.session is not None
        return _Indexed(sidx, wrapped, conn.session)

    def _release_threadsafe(self, conn: _Connection) -> None:
        try:
            assert self._loop is not None
            self._loop.call_soon_threadsafe(self._release, conn)
        except RuntimeError:  # loop already closed (forced teardown)
            pass

    def _release(self, conn: _Connection) -> None:
        self._inflight -= 1
        conn.inflight -= 1

    async def _emit_loop(self, conn: _Connection) -> None:
        """Drain one connection's FIFO to its socket, in order.

        Session-slotted items (``_Indexed``) are recorded into the
        session's resume buffer *before* the write — and before the
        broken-connection check, which is the point: a response that
        completes after the client dropped is exactly the one a resume
        must replay.  Replays (``_Replay``) are re-emitted verbatim and
        neither re-recorded nor re-counted in ``handled``.
        """
        while True:
            item = await conn.queue.get()
            if item is _EOF:
                return
            sidx: Optional[int] = None
            session: Optional[_Session] = None
            if type(item) is _Replay:
                payload = dict(item.payload)
                payload["session_seq"] = item.index
                self.session_replayed += 1
                if not conn.broken:
                    try:
                        conn.writer.write((json.dumps(payload) + "\n").encode())
                        await conn.writer.drain()
                    except _WRITE_FAILURES:
                        conn.broken = True
                continue
            if type(item) is _Indexed:
                sidx, session, item = item.index, item.session, item.item
            if isinstance(item, RealizationResponse):
                payload = item.to_dict()
            elif isinstance(item, dict):
                payload = item  # stats envelope
            else:
                try:
                    response = await item
                except asyncio.CancelledError:
                    if item.cancelled():
                        continue  # future killed in forced teardown
                    raise  # the emit task itself was cancelled
                payload = response.to_dict()
            if sidx is not None and session is not None:
                session.record(sidx, dict(payload))
                payload = dict(payload)
                payload["session_seq"] = sidx
            self.handled += 1
            if payload.get("verdict") == "ERROR":
                self.errors += 1
            if not conn.broken:
                # Chaos hook: a writer_error fault simulates the client
                # vanishing right before this response hits the socket.
                plan = faults.active()
                if plan is not None and plan.match(
                    "writer_error", str(payload.get("request_id") or "")
                ):
                    conn.broken = True
            if conn.broken:
                continue  # keep consuming so futures stay observed
            try:
                conn.writer.write((json.dumps(payload) + "\n").encode())
                await conn.writer.drain()
            except _WRITE_FAILURES:
                # The client stopped reading.  Stop writing, but keep
                # draining the FIFO: in-flight futures must still be
                # awaited (observed) and released from the window.
                conn.broken = True

    # ------------------------------------------------------------------ #
    # Introspection                                                      #
    # ------------------------------------------------------------------ #

    def _stats_envelope(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """The ``kind="stats"`` response: executor counters (cache,
        coalescing, crashes, latency percentiles) plus server-side
        admission state.  Answered inline on the event loop — never
        queued behind realization work."""
        request_id = payload.get("request_id", "")
        return {
            "request_id": str(request_id) if request_id is not None else "",
            "kind": STATS_KIND,
            "ok": True,
            "verdict": "STATS",
            "executor": self.executor.stats(),
            "server": {
                "host": self.host,
                "port": self.port,
                "window": self.window,
                "emit_timeout": self.emit_timeout,
                "close_timeout": self.close_timeout,
                "inflight": self._inflight,
                "connections": len(self._connections),
                "connections_total": self.connections_total,
                "handled": self.handled,
                "errors": self.errors,
                "rejected": self.rejected,
                "draining": self._draining,
                "uptime_s": round(time.monotonic() - self.started_at, 3),
                "sessions": {
                    "active": len(self._sessions),
                    "created": self.sessions_created,
                    "resumed": self.sessions_resumed,
                    "replayed": self.session_replayed,
                    "buffered": sum(
                        len(s.buffer) for s in self._sessions.values()
                    ),
                    "dropped": sum(
                        s.dropped for s in self._sessions.values()
                    ),
                },
            },
        }

    def _metrics_envelope(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """The ``kind="metrics"`` response: the registry's Prometheus
        text exposition, wrapped in a JSONL envelope (the socket speaks
        line-delimited JSON; an HTTP scrape surface is the CLI's
        ``--metrics-port``).  Answered inline, like ``stats``."""
        request_id = payload.get("request_id", "")
        registry = getattr(self.executor, "metrics", None)
        return {
            "request_id": str(request_id) if request_id is not None else "",
            "kind": METRICS_KIND,
            "ok": True,
            "verdict": "METRICS",
            "content_type": PROMETHEUS_CONTENT_TYPE,
            "text": registry.render() if registry is not None else "",
        }

    def _server_metrics(self):
        """Registry collector: the server's admission counters."""
        series = (
            ("repro_server_handled_total", "counter",
             "Responses emitted across all connections", float(self.handled)),
            ("repro_server_errors_total", "counter",
             "Emitted responses with verdict=ERROR", float(self.errors)),
            ("repro_server_rejected_total", "counter",
             "Requests refused by admission control", float(self.rejected)),
            ("repro_server_connections_total", "counter",
             "Connections accepted since start", float(self.connections_total)),
            ("repro_server_inflight", "gauge",
             "Admitted requests not yet answered", float(self._inflight)),
            ("repro_server_connections", "gauge",
             "Currently open connections", float(len(self._connections))),
            ("repro_server_uptime_seconds", "gauge",
             "Seconds since the server started",
             time.monotonic() - self.started_at),
            ("repro_server_sessions", "gauge",
             "Resumable sessions tracked", float(len(self._sessions))),
            ("repro_server_sessions_resumed_total", "counter",
             "Session resume handshakes served", float(self.sessions_resumed)),
            ("repro_server_session_replayed_total", "counter",
             "Responses replayed to resuming clients",
             float(self.session_replayed)),
        )
        return [
            (name, kind, help, [(name, (), value)])
            for name, kind, help, value in series
        ]


def serve_socket(
    executor: Optional[BatchExecutor] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    window: Optional[int] = None,
    ready: Optional[Callable[[SocketServer], None]] = None,
    install_signal_handlers: bool = True,
    emit_timeout: float = 60.0,
    close_timeout: float = 5.0,
    sessions: Optional[Dict[str, List[Tuple[int, RealizationResponse]]]] = None,
) -> Tuple[int, int]:
    """Blocking socket-serve entry point (the CLI shape).

    Runs a fresh event loop hosting a :class:`SocketServer` until a
    graceful drain completes (SIGTERM/SIGINT, when signal handlers are
    installable).  ``ready`` is invoked once the server is bound — with
    ``port=0`` that is how callers learn the real port.  Returns
    ``(handled, errors)``, matching :func:`serve`.
    """
    if executor is None:
        executor = BatchExecutor(pool=NetworkPool())

    async def _run() -> Tuple[int, int]:
        server = await SocketServer(
            executor,
            host=host,
            port=port,
            window=window,
            emit_timeout=emit_timeout,
            close_timeout=close_timeout,
            sessions=sessions,
        ).start()
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, server.drain)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass  # platform/thread without signal support
        if ready is not None:
            ready(server)
        return await server.wait_done()

    return asyncio.run(_run())
