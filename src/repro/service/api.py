"""Typed request/response envelopes for the batch realization service.

A :class:`RealizationRequest` names one unit of work: which realizer to
run (``kind``), on what workload (an inline ``degrees``/``rho`` vector,
or a named :mod:`~repro.service.registry` scenario plus ``n``), with
which simulation parameters (seed, engine, sorting fidelity, per-kind
options).  Requests are frozen and hashable: two requests that differ
only in ``request_id`` describe the *same deterministic computation*,
which is what lets the executor memoize responses for repeated traffic.

A :class:`RealizationResponse` carries the verdict, the realized edge
count, the full round/message meters, and per-kind detail.  Both
envelopes round-trip through plain JSON dicts (``to_dict``/``from_dict``)
so the CLI front ends can speak JSONL.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.ncc import wire
from repro.ncc.config import NCCConfig, Variant
from repro.ncc.engine import engine_names

#: The workload kinds the service accepts, mapping 1:1 onto the paper's
#: realizers (Theorems 11/12/13, 14/16, 17/18, and the Õ(1) approximate
#: realizer).
KINDS = (
    "degree_implicit",
    "degree_explicit",
    "degree_envelope",
    "tree",
    "connectivity",
    "approximate",
)

_TREE_VARIANTS = {
    "min": "min_diameter",
    "max": "max_diameter",
    "min_diameter": "min_diameter",
    "max_diameter": "max_diameter",
}


class ServiceError(ValueError):
    """A malformed or infeasible service request."""


_SCALAR_PARAM_TYPES = (int, float, bool, str, type(None))


def _params_key(params: Optional[Mapping[str, Any]]) -> Tuple[Tuple[str, Any], ...]:
    """Canonical hashable form of a scenario-parameter mapping.

    Rejects non-mapping params and non-scalar values up front: requests
    are hashed (cache keys), so an unhashable value must surface as a
    :class:`ServiceError` here, not a ``TypeError`` deep in the executor.
    """
    if not params:
        return ()
    if not isinstance(params, Mapping):
        raise ServiceError(
            f"'params' must be an object, got {type(params).__name__}"
        )
    for key, value in params.items():
        if not isinstance(key, str):
            raise ServiceError(f"param names must be strings, got {key!r}")
        if not isinstance(value, _SCALAR_PARAM_TYPES):
            raise ServiceError(
                f"param {key!r} must be a scalar, got {type(value).__name__}"
            )
    return tuple(sorted(params.items()))


@dataclass(frozen=True)
class RealizationRequest:
    """One realization job.

    Exactly one of ``degrees`` (inline workload vector; also the ρ vector
    for ``kind="connectivity"``) or ``scenario`` (+ ``n``) must be given.
    """

    kind: str
    request_id: str = ""
    degrees: Optional[Tuple[int, ...]] = None
    scenario: Optional[str] = None
    params: Tuple[Tuple[str, Any], ...] = ()
    n: Optional[int] = None
    seed: int = 0
    engine: str = "fast"
    sort_fidelity: str = "charged"
    tree_variant: str = "min_diameter"
    model: str = "ncc0"  # connectivity only: "ncc0" | "ncc1"
    repairs: int = 0  # approximate only
    explicit_envelope: bool = False  # degree_envelope only
    max_rounds: Optional[int] = None  # per-request round budget (isolation)
    shards: int = 0  # engine="sharded" only; 0 = engine default
    deadline_ms: Optional[int] = None  # wall-clock budget from arrival (ms)
    idempotency_key: Optional[str] = None  # exactly-once replay identity

    def __post_init__(self) -> None:
        if self.degrees is not None and not isinstance(self.degrees, tuple):
            object.__setattr__(self, "degrees", tuple(self.degrees))
        if not isinstance(self.params, tuple):
            object.__setattr__(self, "params", _params_key(self.params))
        else:
            # Canonical pair order even for directly built tuples, so
            # equal computations share one cache key.  Param names are
            # unique strings, so values are never compared; malformed
            # entries that defeat sorting are left for validate().
            try:
                object.__setattr__(self, "params", tuple(sorted(self.params)))
            except TypeError:
                pass
        # A redundant n alongside inline degrees is normalised away so the
        # two spellings of the same computation share one cache key (an
        # *inconsistent* or type-invalid n is kept for validate() to
        # reject — True == 1 must not slip through the equality).
        if (
            self.degrees is not None
            and type(self.n) is int  # bool/float n must reach validate()
            and self.n == len(self.degrees)
        ):
            object.__setattr__(self, "n", None)
        # "min"/"max" aliases normalise here (not just in from_dict) so
        # directly constructed requests run, and alias spellings share a
        # cache key.
        if self.tree_variant in _TREE_VARIANTS:
            object.__setattr__(
                self, "tree_variant", _TREE_VARIANTS[self.tree_variant]
            )

    # ---------------------------------------------------------------- #
    # Validation and derived simulation parameters                     #
    # ---------------------------------------------------------------- #

    def validate(self) -> "RealizationRequest":
        """Raise :class:`ServiceError` on malformed requests; return self."""
        # Field types first: every later check (and the executor's cache
        # hashing and Network construction) assumes them.
        for attr, expected in (
            ("request_id", str), ("kind", str), ("seed", int),
            ("repairs", int), ("engine", str), ("sort_fidelity", str),
            ("tree_variant", str), ("model", str), ("explicit_envelope", bool),
        ):
            value = getattr(self, attr)
            bad_bool = expected is int and isinstance(value, bool)
            if bad_bool or not isinstance(value, expected):
                raise ServiceError(
                    f"{attr!r} must be {expected.__name__}, got "
                    f"{type(value).__name__}"
                )
        if self.n is not None and (
            not isinstance(self.n, int) or isinstance(self.n, bool)
        ):
            raise ServiceError(f"'n' must be an integer, got {self.n!r}")
        if self.degrees is not None and any(
            not isinstance(d, int) or isinstance(d, bool) for d in self.degrees
        ):
            raise ServiceError(
                f"'degrees' must contain integers only: {self.degrees!r}"
            )
        try:
            params_map = dict(self.params)
        except (TypeError, ValueError):
            raise ServiceError(
                f"'params' must be (name, value) pairs: {self.params!r}"
            ) from None
        _params_key(params_map)
        if self.kind not in KINDS:
            raise ServiceError(
                f"unknown kind {self.kind!r}; expected one of {sorted(KINDS)}"
            )
        if (self.degrees is None) == (self.scenario is None):
            raise ServiceError(
                "exactly one of 'degrees' and 'scenario' must be provided"
            )
        if self.scenario is not None and (self.n is None or self.n < 1):
            raise ServiceError("scenario requests need a positive 'n'")
        if self.degrees is not None:
            if len(self.degrees) == 0:
                raise ServiceError("'degrees' must be a non-empty integer list")
            if self.n is not None and self.n != len(self.degrees):
                raise ServiceError(
                    f"n={self.n} disagrees with len(degrees)={len(self.degrees)}"
                )
        if self.engine not in engine_names():
            raise ServiceError(f"unknown engine {self.engine!r}")
        if self.max_rounds is not None and (
            not isinstance(self.max_rounds, int)
            or isinstance(self.max_rounds, bool)
            or self.max_rounds < 1
        ):
            raise ServiceError(
                f"'max_rounds' must be a positive integer, got {self.max_rounds!r}"
            )
        if self.deadline_ms is not None and (
            not isinstance(self.deadline_ms, int)
            or isinstance(self.deadline_ms, bool)
            or self.deadline_ms < 1
        ):
            raise ServiceError(
                f"'deadline_ms' must be a positive integer, got {self.deadline_ms!r}"
            )
        if self.idempotency_key is not None and (
            not isinstance(self.idempotency_key, str) or not self.idempotency_key
        ):
            raise ServiceError(
                "'idempotency_key' must be a non-empty string, got "
                f"{self.idempotency_key!r}"
            )
        if not isinstance(self.shards, int) or isinstance(self.shards, bool):
            raise ServiceError(f"'shards' must be an integer, got {self.shards!r}")
        if self.shards < 0:
            raise ServiceError("'shards' must be >= 0 (0 = engine default)")
        if self.engine == "sharded" and self.shards > self.size:
            raise ServiceError(
                f"'shards' ({self.shards}) cannot exceed n ({self.size}): "
                "the sharded engine partitions nodes across 1..n workers"
            )
        if self.sort_fidelity not in ("full", "charged"):
            raise ServiceError(f"unknown sort_fidelity {self.sort_fidelity!r}")
        if self.kind == "tree" and self.tree_variant not in _TREE_VARIANTS:
            raise ServiceError(f"unknown tree_variant {self.tree_variant!r}")
        if self.kind == "connectivity" and self.model not in ("ncc0", "ncc1"):
            raise ServiceError(f"unknown connectivity model {self.model!r}")
        if self.repairs < 0:
            raise ServiceError("'repairs' must be >= 0")
        return self

    @property
    def size(self) -> int:
        """The network size this request runs on."""
        if self.degrees is not None:
            return len(self.degrees)
        assert self.n is not None
        return self.n

    def config(self) -> NCCConfig:
        """The :class:`NCCConfig` (and pool key half) for this request."""
        ncc1 = self.kind == "connectivity" and self.model == "ncc1"
        kwargs = {}
        if self.engine == "sharded" and self.shards > 0:
            kwargs["engine_shards"] = self.shards
        return NCCConfig(
            seed=self.seed,
            engine=self.engine,
            variant=Variant.NCC1 if ncc1 else Variant.NCC0,
            random_ids=not ncc1,
            **kwargs,
        )

    def cache_key(self) -> "RealizationRequest":
        """The request with its identity stripped and kind-irrelevant
        options defaulted: equal keys ⇒ equal deterministic computations
        ⇒ shareable responses (e.g. a stray ``repairs=3`` on a tree
        request must not split the cache).  ``deadline_ms`` is neutral
        too: the deadline bounds *when* an answer arrives, never *what*
        it is (cache hits resolve instantly, so a hit always meets any
        deadline; error envelopes are never cached).  ``idempotency_key``
        is likewise neutral: it names the *submission* for journal
        replay, never the computation."""
        neutral = {"request_id": "", "deadline_ms": None, "idempotency_key": None}
        if self.kind != "tree":
            neutral["tree_variant"] = "min_diameter"
        if self.kind != "connectivity":
            neutral["model"] = "ncc0"
        elif self.model == "ncc1":
            # The NCC1 realizer takes no sorting-fidelity knob.
            neutral["sort_fidelity"] = "charged"
        if self.kind != "approximate":
            neutral["repairs"] = 0
        if self.kind != "degree_envelope":
            neutral["explicit_envelope"] = False
        if self.scenario is None:
            neutral["params"] = ()
        if self.engine != "sharded":
            # Shard count only reaches the simulation via the sharded
            # engine; a stray value must not split the cache.
            neutral["shards"] = 0
        return replace(self, **neutral)

    # ---------------------------------------------------------------- #
    # Wire mapping (the process-drain boundary)                        #
    # ---------------------------------------------------------------- #

    _WIRE_KEYS = (
        "kind", "request_id", "degrees", "scenario", "params", "n", "seed",
        "engine", "sort_fidelity", "tree_variant", "model", "repairs",
        "explicit_envelope", "max_rounds", "shards", "deadline_ms",
        "idempotency_key",
    )
    _DEGREES_SLOT = _WIRE_KEYS.index("degrees")

    def to_wire(self, trace: Optional[tuple] = None) -> tuple:
        """Compact positional envelope for the process-drain boundary.

        The inline workload vector — the only request field that scales
        with ``n`` — travels as an ``array('q')`` column (one memcpy for
        ``pickle`` instead of a tuple of boxed ints); everything else is
        a flat positional tuple, skipping the dataclass pickle protocol.
        ``_WIRE_KEYS`` is the single source of the field order (asserted
        against the dataclass fields at import time).

        A traced request ships its ``(trace_id, parent_span_id)``
        context as an optional trailer past the fixed width
        (:func:`repro.ncc.wire.attach_trailer`) — absent entirely when
        tracing is off, so the untraced envelope is byte-identical to
        the pre-tracing one.
        """
        values = [getattr(self, key) for key in self._WIRE_KEYS]
        slot = self._DEGREES_SLOT
        if values[slot] is not None:
            try:
                values[slot] = array("q", values[slot])
            except OverflowError:  # absurd but valid ints: ship boxed
                pass
        out = tuple(values)
        return wire.attach_trailer(out, trace) if trace is not None else out

    @classmethod
    def from_wire(cls, wire_tuple: tuple) -> "RealizationRequest":
        """Rebuild a request from :meth:`to_wire` output.

        Trusts the sender — the parent validates and normalises before
        shipping — so the frozen-dataclass ``__init__``/``__post_init__``
        machinery is skipped entirely (a plain dict fill, like the
        message codec's decode path).  Any trace trailer is sliced off;
        callers that want it use :meth:`wire_trace`.
        """
        self = cls.__new__(cls)
        inner = self.__dict__
        body = wire.wire_body(wire_tuple, len(cls._WIRE_KEYS))
        for key, value in zip(cls._WIRE_KEYS, body, strict=True):
            inner[key] = value
        if inner["degrees"] is not None:
            inner["degrees"] = tuple(inner["degrees"])
        return self

    @classmethod
    def wire_trace(cls, wire_tuple: tuple) -> Optional[tuple]:
        """The ``(trace_id, parent_span_id)`` trailer, or ``None``."""
        return wire.wire_trailer(wire_tuple, len(cls._WIRE_KEYS))

    # ---------------------------------------------------------------- #
    # JSON mapping                                                     #
    # ---------------------------------------------------------------- #

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RealizationRequest":
        """Build and validate a request from a JSON-style dict."""
        if not isinstance(payload, Mapping):
            raise ServiceError(f"request must be an object, got {type(payload).__name__}")
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(payload) - known - {"rho"}
        if unknown:
            raise ServiceError(f"unknown request field(s): {sorted(unknown)}")
        data = dict(payload)
        # "rho" is an accepted alias for the connectivity workload vector.
        if "rho" in data:
            if "degrees" in data:
                raise ServiceError("give either 'degrees' or 'rho', not both")
            data["degrees"] = data.pop("rho")
        if data.get("degrees") is not None:
            if isinstance(data["degrees"], (str, bytes)):
                raise ServiceError(
                    f"'degrees' must be a list of integers, not a string: "
                    f"{data['degrees']!r}"
                )
            try:
                data["degrees"] = tuple(data["degrees"])
            except TypeError:
                raise ServiceError(
                    f"'degrees' must be a list of integers: {data['degrees']!r}"
                ) from None
        data["params"] = _params_key(data.get("params"))
        try:
            request = cls(**data)
        except TypeError as exc:
            raise ServiceError(f"malformed request: {exc}") from None
        return request.validate()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict, omitting defaulted fields for readability."""
        out: Dict[str, Any] = {"kind": self.kind}
        if self.request_id:
            out["request_id"] = self.request_id
        if self.degrees is not None:
            out["degrees"] = list(self.degrees)
        if self.scenario is not None:
            out["scenario"] = self.scenario
            out["n"] = self.n
        if self.params:
            out["params"] = dict(self.params)
        for attr, default in (
            ("seed", 0),
            ("engine", "fast"),
            ("sort_fidelity", "charged"),
            ("tree_variant", "min_diameter"),
            ("model", "ncc0"),
            ("repairs", 0),
            ("explicit_envelope", False),
            ("max_rounds", None),
            ("shards", 0),
            ("deadline_ms", None),
            ("idempotency_key", None),
        ):
            value = getattr(self, attr)
            if value != default:
                out[attr] = value
        return out


@dataclass(frozen=True)
class RealizationResponse:
    """Outcome of one request.

    ``verdict`` is the service-level summary: ``REALIZED`` /
    ``UNREALIZABLE`` (the distributed announcement), ``APPROXIMATED``
    (the approximate realizer always produces an overlay, with its error
    in ``detail``), or ``ERROR`` (the request was malformed or the run
    raised).  ``error_code`` types machine-actionable failures
    (``"BUDGET_EXCEEDED"`` when a per-request ``max_rounds`` budget
    fired, ``"DEADLINE_EXCEEDED"`` when a per-request ``deadline_ms``
    wall-clock budget expired — before dispatch or cooperatively at a
    round boundary, ``"WORKER_CRASHED"`` when a process-drain worker
    died, ``"WORKER_TIMEOUT"`` when the hung-worker watchdog killed the
    pool worker running this request,
    ``"ADMISSION_REJECTED"`` when the socket front end refused the
    request unexecuted — window full or server draining — so the client
    should back off and resubmit); free-form failures leave it ``None``.  ``cached`` marks responses
    served from the executor's response cache (or coalesced onto a
    concurrent identical execution); by determinism they are
    field-identical to a fresh run (``fingerprint()`` is the comparison
    the tests use).
    """

    request_id: str
    kind: str
    ok: bool
    verdict: str
    num_edges: int = 0
    rounds: int = 0
    simulated_rounds: int = 0
    charged_rounds: int = 0
    messages: int = 0
    words: int = 0
    detail: Tuple[Tuple[str, Any], ...] = ()
    cached: bool = False
    elapsed_sec: float = 0.0
    error: Optional[str] = None
    error_code: Optional[str] = None

    def fingerprint(self) -> Tuple:
        """Everything except identity and measurement volatiles."""
        return (
            self.kind,
            self.ok,
            self.verdict,
            self.num_edges,
            self.rounds,
            self.simulated_rounds,
            self.charged_rounds,
            self.messages,
            self.words,
            self.detail,
            self.error,
            self.error_code,
        )

    _WIRE_KEYS = (
        "request_id", "kind", "ok", "verdict", "num_edges", "rounds",
        "simulated_rounds", "charged_rounds", "messages", "words", "detail",
        "cached", "elapsed_sec", "error", "error_code",
    )

    def to_wire(self, spans: Optional[tuple] = None) -> tuple:
        """Flat positional envelope for the process-drain return path.

        A worker that recorded spans ships them flattened into columns
        (:func:`repro.obs.trace.encode_span_columns`) as an optional
        trailer — the response dataclass itself stays trace-free, so
        fingerprints and caches never see tracing state.
        """
        out = tuple(getattr(self, key) for key in self._WIRE_KEYS)
        return wire.attach_trailer(out, spans) if spans is not None else out

    @classmethod
    def from_wire(cls, wire_tuple: tuple) -> "RealizationResponse":
        """Rebuild a response from :meth:`to_wire` output (trusted)."""
        self = cls.__new__(cls)
        inner = self.__dict__
        body = wire.wire_body(wire_tuple, len(cls._WIRE_KEYS))
        for key, value in zip(cls._WIRE_KEYS, body, strict=True):
            inner[key] = value
        return self

    @classmethod
    def wire_spans(cls, wire_tuple: tuple) -> Optional[tuple]:
        """The worker-side span columns trailer, or ``None``."""
        return wire.wire_trailer(wire_tuple, len(cls._WIRE_KEYS))

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "request_id": self.request_id,
            "kind": self.kind,
            "ok": self.ok,
            "verdict": self.verdict,
            "num_edges": self.num_edges,
            "rounds": self.rounds,
            "simulated_rounds": self.simulated_rounds,
            "charged_rounds": self.charged_rounds,
            "messages": self.messages,
            "words": self.words,
            "detail": dict(self.detail),
            "cached": self.cached,
            "elapsed_sec": round(self.elapsed_sec, 6),
        }
        if self.error is not None:
            out["error"] = self.error
        if self.error_code is not None:
            out["error_code"] = self.error_code
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RealizationResponse":
        data = dict(payload)
        data["detail"] = tuple(sorted(dict(data.get("detail", ())).items()))
        return cls(**data)


# The wire envelopes zip positional tuples against _WIRE_KEYS, and zip
# truncates silently on skew — so the key tuples must track the
# dataclass fields exactly.  Checked once, at import time.
assert RealizationRequest._WIRE_KEYS == tuple(
    f.name for f in fields(RealizationRequest)
), "RealizationRequest._WIRE_KEYS drifted from the dataclass fields"
assert RealizationResponse._WIRE_KEYS == tuple(
    f.name for f in fields(RealizationResponse)
), "RealizationResponse._WIRE_KEYS drifted from the dataclass fields"


def error_response(
    request_id: str,
    kind: str,
    message: str,
    code: Optional[str] = None,
    retry_after_ms: Optional[int] = None,
) -> RealizationResponse:
    """The uniform failure envelope (``code`` types actionable failures).

    ``retry_after_ms`` rides in ``detail`` — a deterministic backoff
    hint on ``ADMISSION_REJECTED`` envelopes (derived from window
    occupancy by the socket server) so clients can pace resubmission
    instead of hammering a full window.  It must be a positive int;
    anything else is a caller bug, rejected here rather than shipped.
    """
    detail: Tuple[Tuple[str, Any], ...] = ()
    if retry_after_ms is not None:
        if (
            not isinstance(retry_after_ms, int)
            or isinstance(retry_after_ms, bool)
            or retry_after_ms < 1
        ):
            raise ValueError(
                f"retry_after_ms must be a positive integer, got {retry_after_ms!r}"
            )
        detail = (("retry_after_ms", retry_after_ms),)
    return RealizationResponse(
        request_id=request_id,
        kind=kind,
        ok=False,
        verdict="ERROR",
        detail=detail,
        error=message,
        error_code=code,
    )
