"""Crash-restart supervisor for the socket serve front end.

``python -m repro serve --supervise`` (or the ``supervise`` subcommand)
runs the actual server as a *child process* and respawns it when it
dies abnormally — SIGKILL, SIGSEGV, an uncaught crash — with bounded,
seeded backoff (:class:`repro.service.robustness.RetryPolicy`, the same
deterministic jitter the in-process retry machinery uses).  Composed
with the write-ahead journal (``--journal``) this closes the
exactly-once loop: the respawned child recovers the journal at startup,
re-executes ``admitted``-but-not-``completed`` requests, and resuming
clients replay their unacked responses from the session buffers the
journal rebuilt.

Division of labor: the *child* owns every piece of serving state
(journal recovery included — it owns the executor); the supervisor only
watches exit codes, forwards shutdown signals, paces respawns, and
stops at the restart bound.  Exit-code policy:

* ``0`` and ``1`` are **clean drains** (1 = drained with errorful
  responses, the established serve contract) — the supervisor exits
  with the same code.
* A negative code (killed by signal) or ``>= 2`` is a **crash** —
  respawn, unless the supervisor itself was asked to shut down
  (SIGTERM/SIGINT are forwarded to the child, whose graceful drain then
  finishes the story).
"""

from __future__ import annotations

import signal
import subprocess
import sys
import time
from typing import List, Optional, TextIO

from .robustness import RetryPolicy

#: Child exit codes that end supervision (clean drain contract).
CLEAN_EXIT_CODES = (0, 1)

DEFAULT_MAX_RESTARTS = 5


def supervisor_policy(seed: int = 0) -> RetryPolicy:
    """The default respawn backoff: 100ms doubling to 5s, seeded."""
    return RetryPolicy(
        max_attempts=DEFAULT_MAX_RESTARTS + 1,
        base_delay_ms=100.0,
        multiplier=2.0,
        max_delay_ms=5000.0,
        jitter=0.5,
        seed=seed,
    )


def supervise_loop(
    child_argv: List[str],
    policy: Optional[RetryPolicy] = None,
    max_restarts: int = DEFAULT_MAX_RESTARTS,
    stream: Optional[TextIO] = None,
    sleep=time.sleep,
    popen=subprocess.Popen,
) -> int:
    """Run ``child_argv`` under supervision; returns the exit code.

    The child inherits stderr, so its ``listening on host:port`` line
    reaches the same stream as the supervisor's own progress lines —
    clients watching the combined stream learn each respawn's (possibly
    new, under ``--port 0``) address the same way they learned the
    first.  ``sleep``/``popen`` are injection points for tests.
    """
    if max_restarts < 0:
        raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
    if policy is None:
        policy = supervisor_policy()
    out = stream if stream is not None else sys.stderr
    print(
        "supervise: restart backoff schedule (s): "
        + ", ".join(f"{d:.3f}" for d in policy.schedule(max_restarts + 1)),
        file=out,
        flush=True,
    )
    restarts = 0
    shutting_down = False
    child: Optional[subprocess.Popen] = None

    def _forward(signum, _frame):
        nonlocal shutting_down
        shutting_down = True
        if child is not None and child.poll() is None:
            try:
                child.send_signal(signum)
            except (ProcessLookupError, OSError):  # pragma: no cover - race
                pass

    previous = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[sig] = signal.signal(sig, _forward)
        except ValueError:  # pragma: no cover - non-main thread
            pass
    try:
        while True:
            child = popen(child_argv)
            print(f"supervise: child pid {child.pid}", file=out, flush=True)
            code = child.wait()
            if shutting_down or code in CLEAN_EXIT_CODES:
                print(
                    f"supervise: child exited {code}; done", file=out, flush=True
                )
                return code if code is not None else 1
            restarts += 1
            if restarts > max_restarts:
                print(
                    f"supervise: child died (exit {code}) and the restart "
                    f"bound ({max_restarts}) is spent; giving up",
                    file=out,
                    flush=True,
                )
                return 2
            # attempt 1 is the original spawn: restart N waits the
            # policy's delay for attempt N+1.
            delay = policy.delay_sec(restarts + 1)
            print(
                f"supervise: child died (exit {code}); "
                f"respawn {restarts}/{max_restarts} in {delay:.3f}s",
                file=out,
                flush=True,
            )
            if delay > 0:
                sleep(delay)
            if shutting_down:  # signal landed during the backoff sleep
                return code if code is not None else 1
    finally:
        for sig, handler in previous.items():
            try:
                signal.signal(sig, handler)
            except ValueError:  # pragma: no cover - non-main thread
                pass
