"""The batch executor: drain realization requests across a warm pool.

``run_request`` is the stateless core — one request, one network, one
realizer dispatch, one response.  :class:`BatchExecutor` wraps it with
the three warm-path layers a long-lived service wants:

* a :class:`~repro.service.pool.NetworkPool` so requests lease warm
  networks instead of constructing them;
* the :class:`~repro.service.registry.ScenarioRegistry`'s memoized
  materialization so named workloads are generated once;
* a response cache: the simulation is deterministic in the request's
  ``cache_key()`` (everything but ``request_id``), so repeated requests
  — the shape of real service traffic — are answered without re-running
  the realizer.  Cached responses are field-identical to fresh ones
  (``RealizationResponse.fingerprint()``; enforced by the tests and the
  service benchmark) and are marked ``cached=True``.

Two drain modes: ``sequential`` (default) and ``threads`` (a
``ThreadPoolExecutor`` sharing the pool and caches — request handling is
pure Python, so threads buy overlap rather than parallel speedup today;
the mode exists so the multiprocess sharded engine can slot in behind
the same API).
"""

from __future__ import annotations

import dataclasses
import io
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.ncc.network import Network
from repro.service.api import (
    RealizationRequest,
    RealizationResponse,
    ServiceError,
    error_response,
)
from repro.service.pool import NetworkPool
from repro.service.registry import DEFAULT_REGISTRY, ScenarioRegistry

EXECUTOR_MODES = ("sequential", "threads")


def resolve_workload(
    request: RealizationRequest,
    registry: ScenarioRegistry = DEFAULT_REGISTRY,
    use_cache: bool = True,
) -> Tuple[int, ...]:
    """The request's workload vector (inline, or materialized scenario)."""
    if request.degrees is not None:
        return request.degrees
    assert request.scenario is not None and request.n is not None
    return registry.materialize(
        request.scenario,
        request.n,
        seed=request.seed,
        params=dict(request.params),
        use_cache=use_cache,
    )


def run_request(
    request: RealizationRequest,
    net: Network,
    workload: Optional[Sequence[int]] = None,
    registry: ScenarioRegistry = DEFAULT_REGISTRY,
) -> RealizationResponse:
    """Execute one validated request on ``net`` and envelope the outcome.

    ``net`` must be pristine and match ``request.size`` /
    ``request.config()`` (the executor guarantees this; direct callers
    are trusted).  Realizer errors become ``verdict="ERROR"`` responses,
    not exceptions — the batch keeps draining.
    """
    started = time.perf_counter()
    try:
        vector = tuple(workload) if workload is not None else resolve_workload(
            request, registry
        )
        demands = dict(zip(net.node_ids, vector))
        detail: Dict[str, Any] = {}
        kind = request.kind

        if kind in ("degree_implicit", "degree_explicit", "degree_envelope"):
            from repro.core.degree_realization import realize_degree_sequence
            from repro.core.envelope import realize_envelope
            from repro.core.explicit import realize_degree_sequence_explicit

            if kind == "degree_implicit":
                result = realize_degree_sequence(
                    net, demands, sort_fidelity=request.sort_fidelity
                )
            elif kind == "degree_explicit":
                result = realize_degree_sequence_explicit(
                    net, demands, sort_fidelity=request.sort_fidelity
                )
            else:
                result = realize_envelope(
                    net,
                    demands,
                    explicit=request.explicit_envelope,
                    sort_fidelity=request.sort_fidelity,
                )
            verdict = "REALIZED" if result.realized else "UNREALIZABLE"
            detail["phases"] = result.phases
            detail["explicit"] = result.explicit
            detail["announced_by"] = len(result.announced_unrealizable_by)
        elif kind == "tree":
            from repro.core.tree_realization import realize_tree

            result = realize_tree(
                net,
                demands,
                variant=request.tree_variant,
                sort_fidelity=request.sort_fidelity,
            )
            verdict = "REALIZED" if result.realized else "UNREALIZABLE"
            detail["diameter"] = result.diameter
            detail["variant"] = request.tree_variant
        elif kind == "connectivity":
            from repro.core.connectivity import (
                realize_connectivity_ncc0,
                realize_connectivity_ncc1,
            )

            if request.model == "ncc1":
                result = realize_connectivity_ncc1(net, demands)
            else:
                result = realize_connectivity_ncc0(
                    net, demands, sort_fidelity=request.sort_fidelity
                )
            verdict = "REALIZED"
            detail["lower_bound_edges"] = result.lower_bound_edges
            detail["approximation_ratio"] = round(result.approximation_ratio, 4)
            detail["explicit"] = result.explicit
        elif kind == "approximate":
            from repro.core.approximate import approximate_degree_realization

            result = approximate_degree_realization(
                net,
                demands,
                sort_fidelity=request.sort_fidelity,
                repair_rounds=request.repairs,
            )
            verdict = "APPROXIMATED"
            detail["l1_error"] = result.l1_error
            detail["relative_error"] = round(result.relative_error, 6)
            detail["self_pairs"] = result.self_pairs
            detail["duplicate_pairs"] = result.duplicate_pairs
        else:  # pragma: no cover - request.validate() forbids this
            raise ServiceError(f"unknown kind {kind!r}")
    except Exception as exc:
        response = error_response(request.request_id, request.kind, str(exc))
        return response

    stats = result.stats
    return RealizationResponse(
        request_id=request.request_id,
        kind=request.kind,
        ok=verdict != "UNREALIZABLE",
        verdict=verdict,
        num_edges=result.num_edges,
        rounds=stats.rounds,
        simulated_rounds=stats.simulated_rounds,
        charged_rounds=stats.charged_rounds,
        messages=stats.messages,
        words=stats.words,
        detail=tuple(sorted(detail.items())),
        elapsed_sec=time.perf_counter() - started,
    )


class BatchExecutor:
    """Drains request batches/queues over a shared pool and caches.

    Parameters
    ----------
    pool:
        The warm-network pool; ``None`` disables pooling (a fresh
        ``Network`` per request — the cold path the service benchmark
        compares against).
    registry:
        Scenario registry for named workloads.
    cache_responses:
        Memoize responses by ``request.cache_key()``.  Sound because the
        whole simulation is deterministic in that key; disable for
        workloads with non-request randomness (there are none today).
        Only successful computations are cached — an ``ERROR`` response
        may reflect a transient environment failure, not a property of
        the request.  The cache is FIFO-bounded by
        ``max_cached_responses`` so long-lived services stay bounded
        under diverse traffic.
    cache_scenarios:
        Use the registry's memoized materialization; disable to force
        regeneration per request (the benchmark's cold mode).
    mode / workers:
        ``"sequential"`` or ``"threads"`` (+ worker count) for
        :meth:`run`.
    """

    def __init__(
        self,
        pool: Optional[NetworkPool] = None,
        registry: ScenarioRegistry = DEFAULT_REGISTRY,
        cache_responses: bool = True,
        cache_scenarios: bool = True,
        mode: str = "sequential",
        workers: int = 4,
        max_cached_responses: int = 4096,
    ) -> None:
        if mode not in EXECUTOR_MODES:
            raise ValueError(f"mode must be one of {EXECUTOR_MODES}, got {mode!r}")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.pool = pool
        self.registry = registry
        self.mode = mode
        self.workers = workers
        self.cache_responses = cache_responses
        self.cache_scenarios = cache_scenarios
        self.max_cached_responses = max_cached_responses
        self._response_cache: Dict[RealizationRequest, RealizationResponse] = {}
        # One lock guards the cache and the counters (threads mode).
        self._cache_lock = threading.Lock()
        self.requests_handled = 0
        self.response_cache_hits = 0
        # The registry may be shared (DEFAULT_REGISTRY); snapshot its
        # counters so stats() excludes traffic from before this executor
        # existed.  (Concurrent traffic from *other* executors sharing
        # the registry is still counted — give each executor its own
        # registry when per-executor numbers must be exact.)
        self._registry_hits_base = registry.cache_hits
        self._registry_misses_base = registry.cache_misses

    # ---------------------------------------------------------------- #
    # Single requests                                                  #
    # ---------------------------------------------------------------- #

    def handle(self, request: RealizationRequest) -> RealizationResponse:
        """One request through the full warm path (validate/cache/run)."""
        try:
            request.validate()
            key = request.cache_key() if self.cache_responses else None
            if self.cache_responses:
                with self._cache_lock:
                    hit = self._response_cache.get(key)
                    if hit is not None:
                        self.requests_handled += 1
                        self.response_cache_hits += 1
                if hit is not None:
                    return dataclasses.replace(
                        hit,
                        request_id=request.request_id,
                        cached=True,
                        elapsed_sec=0.0,
                    )
            workload = resolve_workload(
                request, self.registry, use_cache=self.cache_scenarios
            )
            n, config = request.size, request.config()
            if self.pool is not None:
                with self.pool.network(n, config) as net:
                    response = run_request(request, net, workload, self.registry)
            else:
                response = run_request(
                    request, Network(n, config), workload, self.registry
                )
        except ServiceError as exc:
            with self._cache_lock:
                self.requests_handled += 1
            return error_response(request.request_id, request.kind, str(exc))
        except Exception as exc:  # last resort: a long-lived serve loop
            # must envelope even unforeseen failures, not die mid-stream.
            with self._cache_lock:
                self.requests_handled += 1
            return error_response(
                request.request_id,
                request.kind,
                f"internal error: {type(exc).__name__}: {exc}",
            )
        with self._cache_lock:
            self.requests_handled += 1
            # Cache successful computations only: an ERROR may reflect a
            # transient environment failure (e.g. memory pressure), which
            # must not be replayed forever for a deterministic key.
            if self.cache_responses and response.verdict != "ERROR":
                self._response_cache.setdefault(key, response)
                while len(self._response_cache) > self.max_cached_responses:
                    self._response_cache.pop(next(iter(self._response_cache)))
        return response

    def handle_dict(self, payload: Mapping[str, Any]) -> RealizationResponse:
        """Parse + handle one JSON-style request dict."""
        parsed = parse_request_payload(payload)
        if isinstance(parsed, RealizationResponse):
            return parsed
        return self.handle(parsed)

    # ---------------------------------------------------------------- #
    # Batches                                                          #
    # ---------------------------------------------------------------- #

    def run(self, requests: Iterable[RealizationRequest]) -> List[RealizationResponse]:
        """Drain a batch, preserving request order in the responses."""
        batch = list(requests)
        if self.mode == "threads" and len(batch) > 1:
            with ThreadPoolExecutor(max_workers=self.workers) as tpe:
                return list(tpe.map(self.handle, batch))
        return [self.handle(request) for request in batch]

    def stats(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "requests_handled": self.requests_handled,
            "response_cache_hits": self.response_cache_hits,
            "response_cache_size": len(self._response_cache),
            "scenario_cache_hits": self.registry.cache_hits - self._registry_hits_base,
            "scenario_cache_misses": (
                self.registry.cache_misses - self._registry_misses_base
            ),
        }
        if self.pool is not None:
            out["pool"] = self.pool.stats()
        return out


# ---------------------------------------------------------------------- #
# JSONL front ends (python -m repro serve / batch)                       #
# ---------------------------------------------------------------------- #


def parse_request_payload(payload: Any):
    """One JSON-style value -> :class:`RealizationRequest`, or an ERROR
    :class:`RealizationResponse` enveloping the parse failure.

    The single parse-error path every front end (``handle_dict``,
    :func:`serve`, :func:`run_batch_lines`) shares.
    """
    try:
        return RealizationRequest.from_dict(payload)
    except ServiceError as exc:
        rid = payload.get("request_id", "") if isinstance(payload, Mapping) else ""
        kind = payload.get("kind", "?") if isinstance(payload, Mapping) else "?"
        return error_response(str(rid), str(kind), str(exc))


def parse_request_line(line: str):
    """One JSONL line -> request or ERROR response (never raises)."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        return error_response("", "?", f"bad JSON: {exc}")
    return parse_request_payload(payload)


def serve(
    in_stream: io.TextIOBase,
    out_stream: io.TextIOBase,
    executor: Optional[BatchExecutor] = None,
) -> int:
    """Long-lived JSONL loop: one request per line in, one response out.

    Malformed lines produce ``verdict="ERROR"`` responses (the stream
    keeps serving).  Returns the number of responses emitted, including
    parse-error envelopes (``executor.requests_handled`` counts only the
    requests that reached the executor) — the loop ends at EOF.
    """
    if executor is None:
        executor = BatchExecutor(pool=NetworkPool())
    handled = 0
    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        parsed = parse_request_line(line)
        if isinstance(parsed, RealizationResponse):
            response = parsed
        else:
            response = executor.handle(parsed)
        out_stream.write(json.dumps(response.to_dict()) + "\n")
        out_stream.flush()
        handled += 1
    return handled


def run_batch_lines(
    lines: Iterable[str],
    executor: Optional[BatchExecutor] = None,
) -> List[RealizationResponse]:
    """Parse a JSONL batch and drain it through ``executor``."""
    if executor is None:
        executor = BatchExecutor(pool=NetworkPool())
    # Parse every line first (parse errors become in-place ERROR
    # responses), then drain the well-formed requests as one batch so
    # the executor's threaded mode can overlap them.
    responses: List[Optional[RealizationResponse]] = []
    requests: List[RealizationRequest] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        parsed = parse_request_line(line)
        if isinstance(parsed, RealizationResponse):
            responses.append(parsed)
        else:
            requests.append(parsed)
            responses.append(None)  # placeholder, filled after the drain

    outcomes = iter(executor.run(requests))
    return [
        response if response is not None else next(outcomes)
        for response in responses
    ]
