"""The batch executor: drain realization requests across a warm pool.

``run_request`` is the stateless core — one request, one network, one
realizer dispatch, one response.  :class:`BatchExecutor` wraps it with
the warm-path layers a long-lived service wants:

* a :class:`~repro.service.pool.NetworkPool` so requests lease warm
  networks instead of constructing them;
* the :class:`~repro.service.registry.ScenarioRegistry`'s memoized
  materialization so named workloads are generated once;
* a response cache: the simulation is deterministic in the request's
  ``cache_key()`` (everything but ``request_id``), so repeated requests
  — the shape of real service traffic — are answered without re-running
  the realizer.  The cache is LRU-bounded (``max_cached_responses``)
  with hit/eviction counters in :meth:`BatchExecutor.stats`.  Cached
  responses are field-identical to fresh ones
  (``RealizationResponse.fingerprint()``; enforced by the tests and the
  service benchmark) and are marked ``cached=True``;
* in-flight coalescing: concurrent identical requests (same cache key)
  wait on one execution instead of all running before the cache
  populates — single-flight in the threaded drain, batch-level dedup in
  the process drain.

Three drain modes:

``sequential`` (default)
    One request at a time in the calling thread.

``threads``
    A ``ThreadPoolExecutor`` sharing the pool and caches.  Request
    handling is pure Python, so threads buy overlap (and coalescing
    pressure relief), not parallel speedup.

``processes``
    A ``ProcessPoolExecutor`` of persistent workers, each owning its
    *own* warm :class:`NetworkPool` and scenario registry — the
    CPU-bound realizer runs truly in parallel, one core per worker.
    Results funnel back through the parent's deterministic response
    cache, so a drained batch is field-identical to the sequential
    drain.  A worker that dies mid-request (OOM-killed, crashed) fails
    that request with a typed ``WORKER_CRASHED`` error and the drain
    recovers on a fresh pool — one bad request cannot wedge the batch.
    Requests and responses cross the boundary as compact wire envelopes
    (``to_wire``/``from_wire``), not pickled dataclasses.
    ``benchmarks/bench_multiprocess.py`` records the process-vs-thread
    drain ratio.

Beyond batch drains, ``mode="processes"`` executors expose an
asynchronous :meth:`BatchExecutor.submit` (future per request, same
cache/coalescing/crash semantics), which :func:`serve` uses to *stream*:
requests are submitted as their lines arrive and responses are emitted,
in input order, as futures complete.
"""

from __future__ import annotations

import dataclasses
import io
import json
import os
import signal
import threading
import time
from collections import OrderedDict
from concurrent.futures import (
    BrokenExecutor,
    CancelledError,
    Future,
    InvalidStateError,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from queue import Empty, Queue
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.ncc.errors import DeadlineExceeded, RoundBudgetExceeded
from repro.ncc.network import Network
from repro.ncc.sharded import fork_context
from repro.obs import (
    Histogram,
    LatencyRecorder,
    MetricsRegistry,
    RoundPhaseAggregate,
    Span,
    Tracer,
    decode_span_columns,
    encode_span_columns,
)
from repro.service import faults
from repro.service.api import (
    RealizationRequest,
    RealizationResponse,
    ServiceError,
    error_response,
)
from repro.service.journal import RequestJournal
from repro.service.pool import NetworkPool
from repro.service.registry import (
    DEFAULT_REGISTRY,
    ScenarioRegistry,
    default_registry,
)
from repro.service.robustness import CircuitBreaker, RetryPolicy

EXECUTOR_MODES = ("sequential", "threads", "processes")


class _ExecutorClosed(RuntimeError):
    """Raised by ``_ensure_process_pool`` when ``close()`` won a race
    against a pool (re)build — the caller envelopes instead of leaking a
    pool behind a closed executor."""


def resolve_workload(
    request: RealizationRequest,
    registry: ScenarioRegistry = DEFAULT_REGISTRY,
    use_cache: bool = True,
) -> Tuple[int, ...]:
    """The request's workload vector (inline, or materialized scenario)."""
    if request.degrees is not None:
        return request.degrees
    assert request.scenario is not None and request.n is not None
    return registry.materialize(
        request.scenario,
        request.n,
        seed=request.seed,
        params=dict(request.params),
        use_cache=use_cache,
    )


def run_request(
    request: RealizationRequest,
    net: Network,
    workload: Optional[Sequence[int]] = None,
    registry: ScenarioRegistry = DEFAULT_REGISTRY,
    deadline: Optional[float] = None,
    span: Optional[Span] = None,
    phase_histogram: Optional[Histogram] = None,
) -> RealizationResponse:
    """Execute one validated request on ``net`` and envelope the outcome.

    ``net`` must be pristine and match ``request.size`` /
    ``request.config()`` (the executor guarantees this; direct callers
    are trusted).  Realizer errors become ``verdict="ERROR"`` responses,
    not exceptions — the batch keeps draining.  A request carrying
    ``max_rounds`` installs a round budget on ``net``; crossing it
    yields a typed ``BUDGET_EXCEEDED`` error response (multi-tenant
    isolation: a pathological request cannot monopolize a worker).
    ``deadline`` (absolute ``net.clock()`` seconds; defaults to now +
    ``request.deadline_ms``) likewise installs a wall-clock deadline,
    checked cooperatively at round boundaries — crossing it yields a
    typed ``DEADLINE_EXCEEDED`` response and runs that finish in time
    stay bit-identical.

    ``span``/``phase_histogram`` opt into the observability layer: a
    :class:`~repro.obs.trace.RoundPhaseAggregate` round observer is
    installed on ``net`` for the duration of the run (and always
    removed — pooled leases must come back observer-free), emitting one
    aggregate ``rounds`` child span and/or per-phase histogram samples.
    With both left ``None`` — the default — the run is untouched.
    """
    if span is None and phase_histogram is None:
        return _run_request(request, net, workload, registry, deadline)
    aggregate = RoundPhaseAggregate()
    net.set_round_observer(aggregate)
    try:
        response = _run_request(request, net, workload, registry, deadline)
    finally:
        net.set_round_observer(None)
    if span is not None:
        aggregate.attach(span)
        span.tag("verdict", response.verdict)
        if response.error_code is not None:
            span.tag("error_code", response.error_code)
        span.finish()
    if phase_histogram is not None:
        aggregate.observe(
            lambda phase, seconds: phase_histogram.labels(phase=phase).observe(
                seconds
            )
        )
    return response


def _run_request(
    request: RealizationRequest,
    net: Network,
    workload: Optional[Sequence[int]] = None,
    registry: ScenarioRegistry = DEFAULT_REGISTRY,
    deadline: Optional[float] = None,
) -> RealizationResponse:
    """The untraced core of :func:`run_request` (same contract)."""
    started = time.perf_counter()
    try:
        vector = tuple(workload) if workload is not None else resolve_workload(
            request, registry
        )
        demands = dict(zip(net.node_ids, vector))
        if request.max_rounds is not None:
            net.set_round_budget(request.max_rounds)
        if deadline is None and request.deadline_ms is not None:
            deadline = net.clock() + request.deadline_ms / 1000.0
        if deadline is not None:
            net.set_wall_deadline(deadline)
        detail: Dict[str, Any] = {}
        kind = request.kind

        if kind in ("degree_implicit", "degree_explicit", "degree_envelope"):
            from repro.core.degree_realization import realize_degree_sequence
            from repro.core.envelope import realize_envelope
            from repro.core.explicit import realize_degree_sequence_explicit

            if kind == "degree_implicit":
                result = realize_degree_sequence(
                    net, demands, sort_fidelity=request.sort_fidelity
                )
            elif kind == "degree_explicit":
                result = realize_degree_sequence_explicit(
                    net, demands, sort_fidelity=request.sort_fidelity
                )
            else:
                result = realize_envelope(
                    net,
                    demands,
                    explicit=request.explicit_envelope,
                    sort_fidelity=request.sort_fidelity,
                )
            verdict = "REALIZED" if result.realized else "UNREALIZABLE"
            detail["phases"] = result.phases
            detail["explicit"] = result.explicit
            detail["announced_by"] = len(result.announced_unrealizable_by)
        elif kind == "tree":
            from repro.core.tree_realization import realize_tree

            result = realize_tree(
                net,
                demands,
                variant=request.tree_variant,
                sort_fidelity=request.sort_fidelity,
            )
            verdict = "REALIZED" if result.realized else "UNREALIZABLE"
            detail["diameter"] = result.diameter
            detail["variant"] = request.tree_variant
        elif kind == "connectivity":
            from repro.core.connectivity import (
                realize_connectivity_ncc0,
                realize_connectivity_ncc1,
            )

            if request.model == "ncc1":
                result = realize_connectivity_ncc1(net, demands)
            else:
                result = realize_connectivity_ncc0(
                    net, demands, sort_fidelity=request.sort_fidelity
                )
            verdict = "REALIZED"
            detail["lower_bound_edges"] = result.lower_bound_edges
            detail["approximation_ratio"] = round(result.approximation_ratio, 4)
            detail["explicit"] = result.explicit
        elif kind == "approximate":
            from repro.core.approximate import approximate_degree_realization

            result = approximate_degree_realization(
                net,
                demands,
                sort_fidelity=request.sort_fidelity,
                repair_rounds=request.repairs,
            )
            verdict = "APPROXIMATED"
            detail["l1_error"] = result.l1_error
            detail["relative_error"] = round(result.relative_error, 6)
            detail["self_pairs"] = result.self_pairs
            detail["duplicate_pairs"] = result.duplicate_pairs
        else:  # pragma: no cover - request.validate() forbids this
            raise ServiceError(f"unknown kind {kind!r}")
    except RoundBudgetExceeded as exc:
        return error_response(
            request.request_id, request.kind, str(exc), code="BUDGET_EXCEEDED"
        )
    except DeadlineExceeded as exc:
        return error_response(
            request.request_id, request.kind, str(exc), code="DEADLINE_EXCEEDED"
        )
    except Exception as exc:
        response = error_response(request.request_id, request.kind, str(exc))
        return response

    stats = result.stats
    return RealizationResponse(
        request_id=request.request_id,
        kind=request.kind,
        ok=verdict != "UNREALIZABLE",
        verdict=verdict,
        num_edges=result.num_edges,
        rounds=stats.rounds,
        simulated_rounds=stats.simulated_rounds,
        charged_rounds=stats.charged_rounds,
        messages=stats.messages,
        words=stats.words,
        detail=tuple(sorted(detail.items())),
        elapsed_sec=time.perf_counter() - started,
    )


# ---------------------------------------------------------------------- #
# Process-drain worker side                                              #
# ---------------------------------------------------------------------- #

#: Per-worker-process state, built once by the pool initializer: a warm
#: NetworkPool and a private scenario registry (workers never share
#: in-memory state with the parent — only pickled requests/responses
#: cross the boundary; the parent's response cache stays authoritative).
_WORKER_POOL: Optional[NetworkPool] = None
_WORKER_REGISTRY: Optional[ScenarioRegistry] = None
_WORKER_CACHE_SCENARIOS = True


def _process_worker_init(use_pool: bool, cache_scenarios: bool) -> None:
    """Pool initializer: give this worker its own warm state.

    Also (re)loads any :mod:`repro.service.faults` plan from the
    environment — the channel that works under both fork and spawn start
    methods, with per-worker fire counters.
    """
    global _WORKER_POOL, _WORKER_REGISTRY, _WORKER_CACHE_SCENARIOS
    _WORKER_POOL = NetworkPool() if use_pool else None
    _WORKER_REGISTRY = default_registry()
    _WORKER_CACHE_SCENARIOS = cache_scenarios
    faults.ensure_worker_plan()


def _process_worker_run_wire(wire: tuple, deadline: Optional[float] = None) -> tuple:
    """Wire-form shim around :func:`_process_worker_run`.

    The process boundary ships compact positional envelopes
    (``RealizationRequest.to_wire`` / ``RealizationResponse.to_wire``)
    instead of pickled dataclasses: the inline workload vector crosses
    as one ``array('q')`` memcpy and neither side pays the dataclass
    pickle protocol.  ``deadline`` is the parent's absolute
    ``time.monotonic()`` deadline — comparable across processes because
    ``CLOCK_MONOTONIC`` is system-wide on the platforms the process
    drain supports.

    A traced request carries its ``(trace_id, parent_span_id)`` context
    as a wire trailer; the worker then records its own span subtree
    (pool lease, engine rounds) and ships it back as a trailer on the
    response envelope, for the parent to reassemble into one tree.
    Works identically under fork and spawn start methods: the context
    travels in the job payload, not in inherited process state.
    """
    trace = RealizationRequest.wire_trace(wire)
    request = RealizationRequest.from_wire(wire)
    plan = faults.active()
    if plan is not None and plan.match("wire_error", request.request_id):
        # Injected transport fault: a tuple from_wire() cannot zip — the
        # parent's decode raises and envelopes a transport failure.
        return ("\x00bad-wire",)
    if trace is None:
        return _process_worker_run(request, deadline).to_wire()
    span = Span.from_context("worker", trace, pid=os.getpid())
    response = _process_worker_run(request, deadline, span=span)
    if response.error_code is not None:
        span.tag("error_code", response.error_code)
    span.finish()
    return response.to_wire(spans=encode_span_columns(span))


def _process_worker_run(
    request: RealizationRequest,
    deadline: Optional[float] = None,
    span: Optional[Span] = None,
) -> RealizationResponse:
    """One request on this worker's warm state (the in-worker ``handle``)."""
    plan = faults.active()
    if plan is not None:
        if plan.match("crash", request.request_id):
            os._exit(70)
        rule = plan.match("hang", request.request_id) or plan.match(
            "slow", request.request_id
        )
        if rule is not None:
            time.sleep(rule.sleep_sec())
    if deadline is not None and time.monotonic() >= deadline:
        # Expired while queued behind other pool jobs (or slowed by an
        # injected fault): answer without touching a network.
        if span is not None:
            span.tag("queued_expired", True)
        return error_response(
            request.request_id,
            request.kind,
            "wall-clock deadline expired before the worker started this request",
            code="DEADLINE_EXCEEDED",
        )
    registry = _WORKER_REGISTRY if _WORKER_REGISTRY is not None else DEFAULT_REGISTRY
    try:
        workload = resolve_workload(
            request, registry, use_cache=_WORKER_CACHE_SCENARIOS
        )
        n, config = request.size, request.config()
        if _WORKER_POOL is not None:
            if span is None:
                with _WORKER_POOL.network(n, config) as net:
                    return run_request(request, net, workload, registry, deadline)
            lease_span = span.child("pool.lease", n=n)
            net = _WORKER_POOL.lease(n, config)
            lease_span.finish()
            try:
                return run_request(
                    request, net, workload, registry, deadline,
                    span=span.child("run"),
                )
            finally:
                _WORKER_POOL.release(net)
        net = Network(n, config)
        try:
            run_span = span.child("run") if span is not None else None
            return run_request(
                request, net, workload, registry, deadline, span=run_span
            )
        finally:
            net.close()  # sharded engines hold worker processes
    except ServiceError as exc:
        return error_response(request.request_id, request.kind, str(exc))
    except Exception as exc:  # pragma: no cover - defensive envelope
        return error_response(
            request.request_id,
            request.kind,
            f"internal error: {type(exc).__name__}: {exc}",
        )


def _resolve_future(out: "Future", response: RealizationResponse) -> None:
    """Resolve a response future, tolerating a racing cancellation.

    A serve loop whose writer died cancels the futures it will never
    emit (:func:`_drain_pending`); the executor's completion callbacks
    race that cancellation and must not crash the pool's callback
    thread on an ``InvalidStateError``.
    """
    if not out.cancelled():
        try:
            out.set_result(response)
        except InvalidStateError:  # cancelled between the check and the set
            pass


def _engine_columnar_metrics():
    """Registry collector: columnar-engine counters at scrape time.

    Process-wide monotone counters (see :func:`repro.ncc.wire.
    materialization_counts` and :func:`repro.ncc.message.
    word_cache_evictions`) covering every engine that ran in this
    process — in-process requests and the sharded engine's parent side.
    Pool worker processes keep their own counters; those surface through
    the workers' own registries, not this scrape.
    """
    from repro.ncc.message import word_cache_evictions
    from repro.ncc.wire import materialization_counts

    counts = materialization_counts()
    return [
        (
            "repro_engine_messages_materialized_total",
            "counter",
            "Message objects constructed from columnar round batches",
            [
                (
                    "repro_engine_messages_materialized_total",
                    (),
                    float(counts["messages_materialized"]),
                )
            ],
        ),
        (
            "repro_engine_messages_stayed_columnar_total",
            "counter",
            "Messages delivered columnar whose inboxes were never forced",
            [
                (
                    "repro_engine_messages_stayed_columnar_total",
                    (),
                    float(counts["messages_stayed_columnar"]),
                )
            ],
        ),
        (
            "repro_engine_word_cache_evictions_total",
            "counter",
            "Entries evicted from the shared word-accounting caches",
            [
                (
                    "repro_engine_word_cache_evictions_total",
                    (),
                    float(word_cache_evictions()),
                )
            ],
        ),
    ]


class _WatchEntry:
    """One in-flight pool future under hung-worker watchdog observation.

    ``kill_at`` is the absolute monotonic time past which the worker is
    presumed hung (request deadline + grace, or the executor's liveness
    bound); ``None`` means this future is tracked but never killed.  The
    watchdog marks ``timed_out`` *before* killing the pool so the
    completion paths can tell the culprit (typed ``WORKER_TIMEOUT``, no
    retry) from its innocent co-victims (retried as crash victims).
    """

    __slots__ = ("kill_at", "pool", "timed_out")

    def __init__(self, kill_at: Optional[float], pool: ProcessPoolExecutor) -> None:
        self.kill_at = kill_at
        self.pool = pool
        self.timed_out = False


class BatchExecutor:
    """Drains request batches/queues over a shared pool and caches.

    Parameters
    ----------
    pool:
        The warm-network pool; ``None`` disables pooling (a fresh
        ``Network`` per request — the cold path the service benchmark
        compares against).  In ``processes`` mode this toggles the
        *per-worker* pools (the parent pool is never shared across the
        process boundary).
    registry:
        Scenario registry for named workloads.
    cache_responses:
        Memoize responses by ``request.cache_key()``.  Sound because the
        whole simulation is deterministic in that key; disable for
        workloads with non-request randomness (there are none today).
        Only successful computations are cached — an ``ERROR`` response
        may reflect a transient environment failure, not a property of
        the request.  The cache is LRU-bounded by
        ``max_cached_responses`` so long-lived services stay bounded
        under diverse traffic while popular requests stay resident.
        Disabling the cache also disables in-flight coalescing (there is
        no key to coalesce on — and benchmark cold modes rely on every
        occurrence actually executing).
    cache_scenarios:
        Use the registry's memoized materialization; disable to force
        regeneration per request (the benchmark's cold mode).
    mode / workers:
        ``"sequential"``, ``"threads"`` or ``"processes"`` (+ worker
        count) for :meth:`run`.  The process pool spins up lazily on the
        first multi-request :meth:`run` and persists, warm, until
        :meth:`close`.
    retry_policy:
        How pool-break victims are retried (defaults to
        :class:`~repro.service.robustness.RetryPolicy`'s two total
        attempts with deterministic jittered backoff — the historical
        single blind retry, now with a pause).
    breaker:
        The :class:`~repro.service.robustness.CircuitBreaker` guarding
        the process pool.  While open, process-mode work degrades to
        in-parent sequential execution (identical deterministic
        responses, no parallelism) instead of feeding a pool that keeps
        breaking; after the cooldown one probe decides whether to close.
    hang_timeout:
        Liveness bound (seconds) for process-mode jobs *without* a
        request deadline: a worker future older than this is presumed
        hung and killed by the watchdog.  ``None`` (default) disables
        the bound — deadline-less requests may run forever, as before.
    hang_grace / watchdog_interval:
        Watchdog tuning: how far past a request's deadline a worker may
        run before being killed (the cooperative in-run check should
        fire first), and how often the watchdog scans.  Process-mode
        only — threads cannot be killed.
    """

    def __init__(
        self,
        pool: Optional[NetworkPool] = None,
        registry: ScenarioRegistry = DEFAULT_REGISTRY,
        cache_responses: bool = True,
        cache_scenarios: bool = True,
        mode: str = "sequential",
        workers: int = 4,
        max_cached_responses: int = 4096,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        hang_timeout: Optional[float] = None,
        hang_grace: float = 0.1,
        watchdog_interval: float = 0.05,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        journal: Optional[RequestJournal] = None,
    ) -> None:
        if mode not in EXECUTOR_MODES:
            raise ValueError(f"mode must be one of {EXECUTOR_MODES}, got {mode!r}")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        def _number(name, value, allow_zero=False):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(f"{name} must be a number, got {value!r}")
            if value < 0 or (value == 0 and not allow_zero):
                bound = ">= 0" if allow_zero else "> 0"
                raise ValueError(f"{name} must be {bound}, got {value!r}")

        if hang_timeout is not None:
            _number("hang_timeout", hang_timeout)
        _number("hang_grace", hang_grace, allow_zero=True)
        _number("watchdog_interval", watchdog_interval)
        self.pool = pool
        self.registry = registry
        self.mode = mode
        self.workers = workers
        self.cache_responses = cache_responses
        self.cache_scenarios = cache_scenarios
        self.max_cached_responses = max_cached_responses
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.hang_timeout = hang_timeout
        self.hang_grace = float(hang_grace)
        self.watchdog_interval = float(watchdog_interval)
        self._response_cache: "OrderedDict[RealizationRequest, RealizationResponse]" = (
            OrderedDict()
        )
        # One lock guards the cache, the in-flight tables and the counters
        # (threads mode + the async submit path).
        self._cache_lock = threading.Lock()
        self._in_flight: Dict[RealizationRequest, threading.Event] = {}
        # submit(): key -> followers awaiting the in-flight execution.
        self._in_flight_async: Dict[
            RealizationRequest, List[Tuple[RealizationRequest, Future]]
        ] = {}
        # Guards process-pool creation/replacement and the closed flag:
        # the async submit path reaches _ensure_process_pool from the
        # streaming reader thread and from pool callback threads
        # concurrently.  ``_closed`` distinguishes "close() was called"
        # from "pool not built yet" so in-flight crash retries cannot
        # resurrect a pool behind a closed executor; the public entry
        # points (run/submit) re-open.
        self._pool_lock = threading.Lock()
        self._closed = False
        # Frozen close-time stats (see close()/stats()); None while live.
        self._stats_snapshot: Optional[Dict[str, Any]] = None
        self._process_pool: Optional[ProcessPoolExecutor] = None
        self._process_pool_broken = False
        # Degraded-mode runner (breaker open): a single thread executing
        # requests in-parent so the async paths never block their
        # callers.  Built lazily, torn down by close().
        self._degraded_pool: Optional[ThreadPoolExecutor] = None
        # Hung-worker watchdog: in-flight pool futures -> _WatchEntry,
        # scanned by a daemon thread that SIGKILLs pools whose workers
        # outlive their bound (the resulting BrokenProcessPool drives
        # the ordinary crash-recovery machinery).
        self._watch_lock = threading.Lock()
        self._dispatch: Dict[Future, _WatchEntry] = {}
        self._watchdog_stop: Optional[threading.Event] = None
        self.latency = LatencyRecorder()
        # The unified metrics registry is the single source of truth for
        # the executor's counters: the attributes below ARE registry
        # instruments (int-like Counters, so call sites that compare or
        # serialize them see plain numbers), stats() is a view over
        # them, and the same registry renders the Prometheus exposition
        # for the serve `metrics` kind / --metrics-port listener.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Tracing: None (default) disables span collection entirely —
        # the request paths guard on it, so the disabled overhead is a
        # handful of attribute checks (gated ≤5% by bench_serve's
        # trace-overhead row).
        self.tracer = tracer
        _c = self.metrics.counter
        self.requests_handled = _c(
            "repro_requests_total", "Requests answered (all outcomes)"
        )
        self.requests_by_kind = _c(
            "repro_requests_by_kind_total",
            "Requests answered, by request kind",
            ("kind",),
        )
        self.response_cache_hits = _c(
            "repro_response_cache_hits_total", "Responses served from the LRU cache"
        )
        self.response_cache_evictions = _c(
            "repro_response_cache_evictions_total", "LRU response-cache evictions"
        )
        self.coalesced_hits = _c(
            "repro_coalesced_hits_total",
            "Requests coalesced onto a concurrent identical execution",
        )
        self.worker_crashes = _c(
            "repro_worker_crashes_total", "Pool workers that died mid-request"
        )
        self.worker_timeouts = _c(
            "repro_worker_timeouts_total", "Workers killed by the hung-worker watchdog"
        )
        self.retries = _c(
            "repro_retries_total", "Pool-break co-victim retries"
        )
        self.deadline_exceeded = _c(
            "repro_deadline_exceeded_total", "Requests that crossed their deadline"
        )
        self.degraded_handled = _c(
            "repro_degraded_handled_total",
            "Requests executed in-parent while the circuit breaker was open",
        )
        # Satellite split of the single latency number: time spent
        # *executing* (the realizer run, worker-side for processes) vs
        # everything before it (queue wait, admission, dispatch).
        self.queue_wait_hist = self.metrics.histogram(
            "repro_request_queue_wait_seconds",
            "Per-request time before execution started (queueing + dispatch)",
        )
        self.execution_hist = self.metrics.histogram(
            "repro_request_execution_seconds",
            "Per-request realizer execution time",
        )
        # Engine phase hooks feed this when tracing is on (parent-side
        # execution; worker-side phases ship back inside spans).
        self.engine_phase_hist = self.metrics.histogram(
            "repro_engine_phase_seconds",
            "Per-request engine time by round phase (traced requests only)",
            ("phase",),
        )
        self.metrics.gauge(
            "repro_response_cache_size",
            "Entries in the LRU response cache",
            fn=lambda: len(self._response_cache),
        )
        if pool is not None:
            self.metrics.register_collector("network_pool", pool.collect_metrics)
        self.metrics.register_collector("circuit_breaker", self._breaker_metrics)
        self.metrics.register_collector("engine_columnar", _engine_columnar_metrics)
        # Durability: with a journal attached, every request is written
        # at admission and completion (handle, submit, and the batch
        # processes drain all funnel through it); duplicate submissions
        # carrying an idempotency_key are answered from the journal's
        # completed record without re-executing.  None (default) keeps
        # the hot path journal-free — a single attribute check.
        self.journal = journal
        if journal is not None:
            if journal.fsync_observer is None:
                journal.fsync_observer = self.metrics.histogram(
                    "repro_journal_fsync_seconds",
                    "Journal fsync barrier latency",
                ).observe
            self.metrics.register_collector("journal", journal.collect_metrics)
        # The registry may be shared (DEFAULT_REGISTRY); snapshot its
        # counters so stats() excludes traffic from before this executor
        # existed.  (Concurrent traffic from *other* executors sharing
        # the registry is still counted — give each executor its own
        # registry when per-executor numbers must be exact.)
        self._registry_hits_base = registry.cache_hits
        self._registry_misses_base = registry.cache_misses
        self._registry_evictions_base = registry.cache_evictions

    # ---------------------------------------------------------------- #
    # Lifecycle                                                        #
    # ---------------------------------------------------------------- #

    def close(self) -> None:
        """Shut down the persistent process pool (idempotent).

        In-flight async submissions resolve with an "executor closed"
        error envelope; a later ``run``/``submit``/``handle`` re-opens
        on a fresh pool.  The counters are *frozen* at close time:
        :meth:`stats` on a closed executor reports this snapshot, so a
        front end that reads stats after teardown sees the close-time
        truth instead of counters still drifting from in-flight
        completions (or live state of a torn-down pool).
        """
        snapshot = self._live_stats()
        with self._pool_lock:
            self._closed = True
            if self._stats_snapshot is None:
                self._stats_snapshot = snapshot
            pool, self._process_pool = self._process_pool, None
            self._process_pool_broken = False
            degraded, self._degraded_pool = self._degraded_pool, None
        with self._watch_lock:
            stop, self._watchdog_stop = self._watchdog_stop, None
            self._dispatch.clear()
        if stop is not None:
            stop.set()
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        if degraded is not None:
            # wait (no cancel): queued degraded jobs hold futures that
            # clients are blocked on; they must resolve, not vanish.
            degraded.shutdown(wait=True)
        if self.journal is not None:
            # Durability barrier at teardown: whatever the fsync policy,
            # a closed executor leaves nothing OS-buffered.
            self.journal.flush()

    def _reopen(self) -> None:
        """Public entry points re-open after close(); stats go live again."""
        with self._pool_lock:
            self._closed = False
            self._stats_snapshot = None

    def __enter__(self) -> "BatchExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_process_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._closed:
                # Checked under the same lock acquisition that would
                # build the pool: a close() that lands between a
                # caller's earlier closed-check and this build must not
                # end with a live pool behind a closed executor.
                raise _ExecutorClosed("executor is closed")
            if self._process_pool is not None and not self._process_pool_broken:
                return self._process_pool
            if self._process_pool is not None:  # broken: replace it
                self._process_pool.shutdown(wait=False, cancel_futures=True)
            self._process_pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=fork_context(),
                initializer=_process_worker_init,
                initargs=(self.pool is not None, self.cache_scenarios),
            )
            self._process_pool_broken = False
            return self._process_pool

    # ---------------------------------------------------------------- #
    # Hung-worker watchdog                                             #
    # ---------------------------------------------------------------- #

    def _deadline_for(self, request: RealizationRequest) -> Optional[float]:
        """Absolute monotonic deadline for a request arriving now."""
        if request.deadline_ms is None:
            return None
        return time.monotonic() + request.deadline_ms / 1000.0

    def _watch(
        self,
        future: "Future",
        pool: ProcessPoolExecutor,
        deadline: Optional[float],
    ) -> None:
        """Register an in-flight pool future with the watchdog."""
        kill_at = None if deadline is None else deadline + self.hang_grace
        if self.hang_timeout is not None:
            bound = time.monotonic() + self.hang_timeout
            kill_at = bound if kill_at is None else min(kill_at, bound)
        with self._watch_lock:
            self._dispatch[future] = _WatchEntry(kill_at, pool)
        if kill_at is not None:
            self._ensure_watchdog()

    def _watch_pop(self, future: "Future") -> bool:
        """Deregister a completed future; True if the watchdog killed it."""
        with self._watch_lock:
            entry = self._dispatch.pop(future, None)
        return entry is not None and entry.timed_out

    def _ensure_watchdog(self) -> None:
        """Start the scan thread if none is running (restarts after
        close() → reopen; executors that never see a bounded job never
        pay for a watchdog thread)."""
        with self._watch_lock:
            if self._watchdog_stop is not None and not self._watchdog_stop.is_set():
                return
            stop = threading.Event()
            self._watchdog_stop = stop
            threading.Thread(
                target=self._watchdog_loop,
                args=(stop,),
                name="executor-watchdog",
                daemon=True,
            ).start()

    def _watchdog_loop(self, stop: threading.Event) -> None:
        """Scan in-flight futures; SIGKILL pools whose workers overstayed.

        Marking ``timed_out`` happens under the watch lock *before* the
        kill, so the BrokenProcessPool completions that follow can
        attribute the break: the culprit gets ``WORKER_TIMEOUT``, its
        co-victims go through ordinary crash retry.
        """
        while not stop.wait(self.watchdog_interval):
            now = time.monotonic()
            culprits: List[ProcessPoolExecutor] = []
            with self._watch_lock:
                for future, entry in self._dispatch.items():
                    if (
                        entry.kill_at is not None
                        and not entry.timed_out
                        and now >= entry.kill_at
                        and not future.done()
                    ):
                        entry.timed_out = True
                        culprits.append(entry.pool)
            if not culprits:
                continue
            with self._cache_lock:
                self.worker_timeouts.inc(len(culprits))
            for pool in {id(p): p for p in culprits}.values():
                self._kill_pool(pool)

    def _kill_pool(self, pool: ProcessPoolExecutor) -> None:
        """Hard-kill a hung pool's workers; recovery rides the ordinary
        BrokenProcessPool path (retry co-victims, respawn on demand)."""
        with self._pool_lock:
            if self._closed:
                return
        self._note_pool_break(pool)
        procs = getattr(pool, "_processes", None)
        if procs:
            for proc in list(procs.values()):
                try:
                    proc.kill()
                except Exception:  # already gone
                    pass
        else:  # pragma: no cover - no visible worker table: retire it
            pool.shutdown(wait=False, cancel_futures=True)

    def _note_pool_break(self, pool: Optional[ProcessPoolExecutor]) -> None:
        """Flag ``pool`` broken (identity-guarded) and feed the breaker.

        The breaker records one failure per *pool break*, not one per
        victim: the first caller to flip the broken flag wins, so a
        crash that fails five in-flight futures costs one breaker count.
        """
        fresh_break = False
        with self._pool_lock:
            if (
                not self._closed
                and pool is not None
                and self._process_pool is pool
                and not self._process_pool_broken
            ):
                self._process_pool_broken = True
                fresh_break = True
        if fresh_break and self.breaker is not None:
            self.breaker.record_failure()

    # ---------------------------------------------------------------- #
    # Degraded execution (breaker open)                                #
    # ---------------------------------------------------------------- #

    def _dispatch_degraded(
        self,
        request: RealizationRequest,
        key: Optional[RealizationRequest],
        out: "Future",
        deadline: Optional[float],
        span: Optional["Span"] = None,
    ) -> None:
        """Breaker open: run in-parent on the single degraded thread.

        Responses are deterministic, so a degraded answer is
        field-identical to a pooled one — the cost is lost parallelism,
        which beats feeding a pool that keeps breaking.
        """
        with self._pool_lock:
            closed = self._closed
            if not closed:
                if self._degraded_pool is None:
                    self._degraded_pool = ThreadPoolExecutor(
                        max_workers=1, thread_name_prefix="executor-degraded"
                    )
                runner = self._degraded_pool
        if closed:
            self._finish_async(
                request,
                key,
                out,
                error_response(
                    request.request_id,
                    request.kind,
                    "executor closed while this request was in flight",
                ),
                resubmit_followers=False,
                span=span,
            )
            return
        with self._cache_lock:
            self.degraded_handled.inc()
        if span is not None:
            span.tag("degraded", True)
        runner.submit(self._run_degraded, request, key, out, deadline, span)

    def _run_degraded(
        self,
        request: RealizationRequest,
        key: Optional[RealizationRequest],
        out: "Future",
        deadline: Optional[float],
        span: Optional["Span"] = None,
    ) -> None:
        self._finish_async(
            request,
            key,
            out,
            self._execute(request, deadline, span=span),
            span=span,
        )

    # ---------------------------------------------------------------- #
    # Observability plumbing                                           #
    # ---------------------------------------------------------------- #

    def _start_span(self, request: RealizationRequest) -> Optional[Span]:
        """Open the admission root span, or ``None`` with tracing off."""
        tracer = self.tracer
        if tracer is None:
            return None
        return tracer.start(
            "request",
            request_id=request.request_id,
            kind=request.kind,
            mode=self.mode,
            pid=os.getpid(),
        )

    def _finish_span(
        self, span: Span, response: Optional[RealizationResponse]
    ) -> None:
        """Tag the outcome on the root span and hand it to the tracer."""
        if response is not None:
            span.tag("verdict", response.verdict)
            if response.cached:
                span.tag("cached", True)
            if response.error_code is not None:
                span.tag("error_code", response.error_code)
        self.tracer.collect(span)

    def _observe_stages(
        self, total: float, response: Optional[RealizationResponse]
    ) -> None:
        """Split one request's wall time into queue-wait vs execution.

        ``elapsed_sec`` is measured inside the run (worker-side for the
        process drain — the monotonic clock is system-wide), so
        ``total - elapsed`` is the honest everything-before-execution
        remainder: admission, coalescing waits, pool queueing, IPC.
        """
        execution = 0.0
        if response is not None and response.elapsed_sec:
            execution = min(max(float(response.elapsed_sec), 0.0), total)
        self.execution_hist.observe(execution)
        self.queue_wait_hist.observe(max(0.0, total - execution))

    def _breaker_metrics(self):
        """Registry collector: the circuit breaker's counters at scrape."""
        snap = self.breaker.snapshot()
        state = {"closed": 0, "half_open": 1, "open": 2}.get(str(snap["state"]), -1)
        return [
            (
                "repro_breaker_state",
                "gauge",
                "Circuit breaker state (0=closed, 1=half-open, 2=open)",
                [("repro_breaker_state", (), float(state))],
            ),
            (
                "repro_breaker_opens_total",
                "counter",
                "Times the circuit breaker opened",
                [("repro_breaker_opens_total", (), float(snap["opens"]))],
            ),
            (
                "repro_breaker_failures_total",
                "counter",
                "Pool failures recorded by the circuit breaker",
                [
                    (
                        "repro_breaker_failures_total",
                        (),
                        float(snap["failures_total"]),
                    )
                ],
            ),
        ]

    # ---------------------------------------------------------------- #
    # Response cache (LRU) and coalescing                              #
    # ---------------------------------------------------------------- #

    def _cache_lookup(
        self,
        key: RealizationRequest,
        request: RealizationRequest,
        coalesced: bool = False,
    ) -> Optional[RealizationResponse]:
        """LRU lookup; on a hit, counts the request as handled and
        returns the response re-enveloped for ``request``.

        ``coalesced`` hits (the request waited on an identical in-flight
        execution) are counted separately from direct cache hits — the
        two counters are disjoint, matching the process drain's
        accounting.
        """
        with self._cache_lock:
            hit = self._response_cache.get(key)
            if hit is None:
                return None
            self._response_cache.move_to_end(key)
            self.requests_handled.inc()
            self.requests_by_kind.labels(kind=request.kind).inc()
            if coalesced:
                self.coalesced_hits.inc()
            else:
                self.response_cache_hits.inc()
        return dataclasses.replace(
            hit,
            request_id=request.request_id,
            cached=True,
            elapsed_sec=0.0,
        )

    def _cache_store_locked(
        self, key: RealizationRequest, response: RealizationResponse
    ) -> None:
        """Insert under the already-held cache lock (first writer wins —
        responses for one key are deterministic anyway)."""
        if key not in self._response_cache:
            self._response_cache[key] = response
            while len(self._response_cache) > self.max_cached_responses:
                self._response_cache.popitem(last=False)
                self.response_cache_evictions.inc()

    def _note_code_locked(self, response: RealizationResponse) -> None:
        """Counter bookkeeping for typed failures (cache lock held)."""
        if response.error_code == "DEADLINE_EXCEEDED":
            self.deadline_exceeded.inc()

    # ---------------------------------------------------------------- #
    # Single requests                                                  #
    # ---------------------------------------------------------------- #

    def _execute(
        self,
        request: RealizationRequest,
        deadline: Optional[float] = None,
        span: Optional[Span] = None,
    ) -> RealizationResponse:
        """The stateless run: resolve the workload, lease a network, run.

        Never raises — every failure envelopes (the serve loops depend
        on that).  ``deadline`` is absolute ``time.monotonic()``
        seconds; an already-expired one short-circuits to a typed
        ``DEADLINE_EXCEEDED`` without touching a network (the
        expired-before-dispatch path every drain mode shares).

        ``span`` (tracing enabled) gains ``pool.lease`` and ``run``
        children — the in-parent mirror of the worker-side subtree —
        and engine phase timings feed the registry histogram.
        """
        try:
            if deadline is not None and time.monotonic() >= deadline:
                return error_response(
                    request.request_id,
                    request.kind,
                    "wall-clock deadline expired before dispatch",
                    code="DEADLINE_EXCEEDED",
                )
            workload = resolve_workload(
                request, self.registry, use_cache=self.cache_scenarios
            )
            n, config = request.size, request.config()
            if self.pool is not None:
                if span is None:
                    with self.pool.network(n, config) as net:
                        return run_request(
                            request, net, workload, self.registry, deadline
                        )
                lease_span = span.child("pool.lease", n=n)
                net = self.pool.lease(n, config)
                lease_span.finish()
                try:
                    return run_request(
                        request, net, workload, self.registry, deadline,
                        span=span.child("run"),
                        phase_histogram=self.engine_phase_hist,
                    )
                finally:
                    self.pool.release(net)
            net = Network(n, config)
            try:
                run_span = span.child("run") if span is not None else None
                return run_request(
                    request, net, workload, self.registry, deadline,
                    span=run_span,
                    phase_histogram=(
                        self.engine_phase_hist if span is not None else None
                    ),
                )
            finally:
                net.close()  # sharded engines hold worker processes
        except ServiceError as exc:
            return error_response(request.request_id, request.kind, str(exc))
        except Exception as exc:  # last resort: a long-lived serve loop
            # must envelope even unforeseen failures, not die mid-stream.
            return error_response(
                request.request_id,
                request.kind,
                f"internal error: {type(exc).__name__}: {exc}",
            )

    def _journal_replay(
        self, request: RealizationRequest
    ) -> Optional[RealizationResponse]:
        """Answer a duplicate submission from the journal, or None.

        The replayed envelope is the journaled completion verbatim
        (field-identical; only ``request_id`` follows the resubmission,
        like a cache hit) — the request is never re-executed."""
        assert self.journal is not None
        replayed = self.journal.replay_idempotent(request)
        if replayed is None:
            return None
        with self._cache_lock:
            self.requests_handled.inc()
            self.requests_by_kind.labels(kind=request.kind).inc()
        return replayed

    def _journal_admit(
        self,
        request: RealizationRequest,
        session: Optional[Tuple[str, int]] = None,
    ) -> int:
        """Write the admitted record, then honor any ``server_kill``
        fault: the injected SIGKILL lands *after* the record reaches the
        OS (``_append`` flushes), which is exactly the crash the
        supervisor's recovery contract is written against."""
        assert self.journal is not None
        seq = self.journal.append_admitted(request, session)
        plan = faults.active()
        if plan is not None and plan.match("server_kill", request.request_id):
            os.kill(os.getpid(), signal.SIGKILL)
        return seq

    def handle(
        self,
        request: RealizationRequest,
        session: Optional[Tuple[str, int]] = None,
    ) -> RealizationResponse:
        """One request through the full warm path: validate, consult the
        cache, coalesce onto an identical in-flight execution, or run.

        A request carrying ``deadline_ms`` starts its wall clock here
        (arrival), so time spent waiting on a coalesced leader counts
        against the deadline too.

        With a journal attached the request is journaled at admission
        (before any work, tagged with its ``session`` slot when the
        socket server supplies one) and again at completion; duplicate
        submissions with a known ``idempotency_key`` short-circuit to
        the journaled response.
        """
        if self.journal is not None:
            replayed = self._journal_replay(request)
            if replayed is not None:
                return replayed
            jseq = self._journal_admit(request, session)
            # ERROR envelopes complete too: the journal records what was
            # *answered*, not just what succeeded — a replayed session
            # must see the same stream.  If the core raises (it returns
            # error envelopes instead, so this means a genuine crash)
            # the record stays incomplete and recovery re-executes it.
            response = self._handle_core(request)
            self.journal.append_completed(jseq, response)
            return response
        return self._handle_core(request)

    def _handle_core(self, request: RealizationRequest) -> RealizationResponse:
        if self._closed:  # cheap unlocked read; re-opening is rare
            self._reopen()
        started = time.perf_counter()
        key: Optional[RealizationRequest] = None
        leader = False
        span = self._start_span(request)
        response: Optional[RealizationResponse] = None
        try:
            try:
                request.validate()
            except ServiceError as exc:
                with self._cache_lock:
                    self.requests_handled.inc()
                    self.requests_by_kind.labels(kind=request.kind).inc()
                response = error_response(
                    request.request_id, request.kind, str(exc)
                )
                return response
            deadline = self._deadline_for(request)
            if self.cache_responses:
                key = request.cache_key()
                hit = self._cache_lookup(key, request)
                if hit is not None:
                    response = hit
                    return hit
                # Single-flight: exactly one thread computes a key;
                # identical concurrent requests wait and then read
                # the cache.  A leader that failed (ERROR responses
                # are not cached) leaves followers to retry the
                # election so the request still gets a real attempt.
                while True:
                    with self._cache_lock:
                        flight = self._in_flight.get(key)
                        if flight is None:
                            self._in_flight[key] = threading.Event()
                            leader = True
                            break
                    flight.wait()
                    hit = self._cache_lookup(key, request, coalesced=True)
                    if hit is not None:
                        response = hit
                        return hit
            response = self._execute(request, deadline, span=span)
            with self._cache_lock:
                self.requests_handled.inc()
                self.requests_by_kind.labels(kind=request.kind).inc()
                self._note_code_locked(response)
                # Cache successful computations only: an ERROR may reflect
                # a transient environment failure (e.g. memory pressure),
                # which must not be replayed forever for a deterministic
                # key.
                if key is not None and response.verdict != "ERROR":
                    self._cache_store_locked(key, response)
            return response
        finally:
            if leader:
                with self._cache_lock:
                    event = self._in_flight.pop(key, None)
                if event is not None:
                    event.set()
            total = time.perf_counter() - started
            self.latency.record(total)
            self._observe_stages(total, response)
            if span is not None:
                self._finish_span(span, response)

    def handle_dict(self, payload: Mapping[str, Any]) -> RealizationResponse:
        """Parse + handle one JSON-style request dict."""
        parsed = parse_request_payload(payload)
        if isinstance(parsed, RealizationResponse):
            return parsed
        return self.handle(parsed)

    # ---------------------------------------------------------------- #
    # Asynchronous single requests (the streaming serve front end)     #
    # ---------------------------------------------------------------- #

    def submit(self, request: RealizationRequest) -> "Future":
        """One request, asynchronously: a ``Future[RealizationResponse]``.

        The streaming ``serve --mode processes`` front end submits each
        request as its line arrives and emits responses as the futures
        complete.  Semantics mirror :meth:`handle` /
        :meth:`_run_processes`: validation failures and cache hits
        resolve immediately; identical concurrent requests coalesce onto
        one in-flight execution (followers resolve to ``cached=True``
        copies; failures are never shared — each follower then gets its
        own attempt); a crashed worker earns its request a typed
        ``WORKER_CRASHED`` error after one retry on a fresh pool.  In
        ``sequential``/``threads`` mode the request executes in the
        calling thread and an already-completed future comes back.
        """
        out: Future = Future()
        if self.mode != "processes":
            out.set_result(self.handle(request))
            return out
        self._reopen()  # public entry re-opens after close()
        return self._submit(request, out)

    def _submit(
        self,
        request: RealizationRequest,
        out: "Future",
        deadline: Optional[float] = None,
        session: Optional[Tuple[str, int]] = None,
    ) -> "Future":
        """The :meth:`submit` body without the re-open: internal callers
        (the streaming serve pump) must not resurrect a closed executor
        — a racing ``close()`` resolves their futures with the closed
        envelope instead.  ``deadline`` lets front ends stamp arrival
        time themselves (the socket server stamps at admission); by
        default the request's ``deadline_ms`` clock starts here."""
        if self.journal is not None:
            replayed = self._journal_replay(request)
            if replayed is not None:
                out.set_result(replayed)
                return out
            jseq = self._journal_admit(request, session)
            journal = self.journal

            def _journal_done(f: "Future") -> None:
                try:  # CancelledError is a BaseException since 3.8
                    response = f.result(timeout=0)
                except BaseException:
                    return  # no response answered -> stays incomplete
                journal.append_completed(jseq, response)

            out.add_done_callback(_journal_done)
        started = time.perf_counter()
        span = self._start_span(request)

        def _record(f: "Future") -> None:
            total = time.perf_counter() - started
            self.latency.record(total)
            try:  # CancelledError is a BaseException since 3.8
                response = f.result(timeout=0)
            except BaseException:
                response = None
            self._observe_stages(total, response)

        out.add_done_callback(_record)
        try:
            request.validate()
        except ServiceError as exc:
            with self._cache_lock:
                self.requests_handled.inc()
                self.requests_by_kind.labels(kind=request.kind).inc()
            response = error_response(request.request_id, request.kind, str(exc))
            if span is not None:
                self._finish_span(span, response)
            out.set_result(response)
            return out
        if deadline is None:
            deadline = self._deadline_for(request)
        key = request.cache_key() if self.cache_responses else None
        if key is not None:
            hit = self._cache_lookup(key, request)
            if hit is not None:
                if span is not None:
                    self._finish_span(span, hit)
                out.set_result(hit)
                return out
            with self._cache_lock:
                followers = self._in_flight_async.get(key)
                if followers is not None:
                    followers.append((request, out))
                    if span is not None:
                        # Followers ride their leader's execution; their
                        # own span covers admission only.
                        span.tag("coalesced", True)
                        self._finish_span(span, None)
                    return out
                self._in_flight_async[key] = []
        self._submit_async(
            request, key, out, attempt=1, deadline=deadline, span=span
        )
        return out

    def _submit_async(
        self,
        request: RealizationRequest,
        key: Optional[RealizationRequest],
        out: "Future",
        attempt: int = 1,
        deadline: Optional[float] = None,
        span: Optional[Span] = None,
    ) -> None:
        """Ship one leader job to the worker pool (wire-encoded).

        ``attempt`` is 1-based; pool breaks resubmit with ``attempt+1``
        until ``retry_policy.max_attempts``, pausing the policy's
        backoff between attempts.  With tracing on, ``span`` rides
        along: its context ships in the wire envelope so the worker's
        subtree comes back attached to the response.
        """
        if deadline is None and request.deadline_ms is not None:
            # Follower resubmissions arrive without their leader's
            # stamp; their wall clock restarts at detachment.
            deadline = self._deadline_for(request)
        if deadline is not None and time.monotonic() >= deadline:
            self._finish_async(
                request,
                key,
                out,
                error_response(
                    request.request_id,
                    request.kind,
                    "wall-clock deadline expired before dispatch",
                    code="DEADLINE_EXCEEDED",
                ),
                span=span,
            )
            return
        if self.breaker is not None and not self.breaker.allow():
            self._dispatch_degraded(request, key, out, deadline, span)
            return
        pool = None
        try:
            # _ensure_process_pool re-checks the closed flag under the
            # pool lock, so a crash retry (or follower resubmission)
            # racing close() lands in the _ExecutorClosed envelope
            # below instead of rebuilding a pool nothing would ever
            # shut down.
            pool = self._ensure_process_pool()
            future = pool.submit(
                _process_worker_run_wire,
                request.to_wire(
                    trace=span.context() if span is not None else None
                ),
                deadline,
            )
        except _ExecutorClosed:
            self._finish_async(
                request,
                key,
                out,
                error_response(
                    request.request_id,
                    request.kind,
                    "executor closed while this request was in flight",
                ),
                resubmit_followers=False,
                span=span,
            )
            return
        except BrokenExecutor:
            # The pool broke under a concurrent submission before its
            # crasher's callback flagged it; retry on a fresh pool like
            # the batch drain instead of failing an innocent request.
            # Same pool-identity guard as _async_done: only flag the
            # pool this submission actually used, never a healthy
            # replacement another thread already built.
            self._note_pool_break(pool)
            with self._cache_lock:  # same accounting as the other paths
                self.worker_crashes.inc()
            if span is not None:
                span.child(
                    "crash_recovery", attempt=attempt, timed_out=False
                ).finish()
            if attempt < self.retry_policy.max_attempts:
                self._retry_async(request, key, out, attempt + 1, deadline, span)
            else:
                self._finish_async(
                    request,
                    key,
                    out,
                    error_response(
                        request.request_id,
                        request.kind,
                        "worker process died while executing this request",
                        code="WORKER_CRASHED",
                    ),
                    span=span,
                )
            return
        except Exception as exc:
            self._finish_async(
                request,
                key,
                out,
                error_response(
                    request.request_id,
                    request.kind,
                    f"process drain failure: {type(exc).__name__}: {exc}",
                ),
                span=span,
            )
            return
        # Watch before wiring the completion callback: the callback's
        # _watch_pop must always find (and clear) the entry, even when
        # the future completed before we got here.
        self._watch(future, pool, deadline)
        future.add_done_callback(
            lambda done: self._async_done(
                done, request, key, out, attempt, pool, deadline, span
            )
        )

    def _retry_async(
        self,
        request: RealizationRequest,
        key: Optional[RealizationRequest],
        out: "Future",
        attempt: int,
        deadline: Optional[float],
        span: Optional[Span] = None,
    ) -> None:
        """Resubmit after the policy's backoff (timer thread, so pool
        callback threads never sleep)."""
        with self._cache_lock:
            self.retries.inc()
        delay = self.retry_policy.delay_sec(attempt)
        if delay <= 0:
            self._submit_async(request, key, out, attempt, deadline, span)
            return
        timer = threading.Timer(
            delay,
            self._submit_async,
            args=(request, key, out, attempt, deadline, span),
        )
        timer.daemon = True
        timer.start()

    def _async_done(
        self, future, request, key, out, attempt, pool, deadline, span=None
    ) -> None:
        """Completion hook (runs on the pool's callback thread)."""
        timed_out = self._watch_pop(future)
        try:
            wire = future.result()
            response = RealizationResponse.from_wire(wire)
            if span is not None:
                columns = RealizationResponse.wire_spans(wire)
                if columns is not None:
                    span.adopt(decode_span_columns(columns))
            if self.breaker is not None:
                self.breaker.record_success()
        except (BrokenExecutor, CancelledError):
            # The dead worker broke the whole pool; mirror the batch
            # drain's recovery — retries on a fresh pool under the
            # policy, then a typed failure for the (deterministic)
            # crasher.  CancelledError (a concurrent pool replacement
            # cancels its pending futures) is a BaseException: without
            # catching it here the response future would never resolve
            # and a streaming client would hang forever.
            with self._pool_lock:
                closed = self._closed
            if closed:
                # close() cancelled the in-flight work; don't resurrect
                # a fresh pool for it — and don't resubmit coalesced
                # followers either (they would rebuild a pool that
                # nothing ever shuts down again).
                self._finish_async(
                    request,
                    key,
                    out,
                    error_response(
                        request.request_id,
                        request.kind,
                        "executor closed while this request was in flight",
                    ),
                    resubmit_followers=False,
                    span=span,
                )
                return
            # Only flag the pool this future actually ran on (see
            # _note_pool_break): several victims of one crash race
            # through here, and a stale flag would tear down the healthy
            # replacement pool (cancelling innocent retries into
            # spurious WORKER_CRASHED responses).
            self._note_pool_break(pool)
            if span is not None:
                span.child(
                    "crash_recovery", attempt=attempt, timed_out=timed_out
                ).finish()
            if timed_out:
                # The watchdog killed this job's worker: the culprit is
                # *this* request — no retry (it would hang again), a
                # typed timeout instead.  Co-victims arrive here with
                # timed_out=False and retry normally.
                response = error_response(
                    request.request_id,
                    request.kind,
                    "worker exceeded its wall-clock bound and was killed "
                    "by the watchdog",
                    code="WORKER_TIMEOUT",
                )
            else:
                with self._cache_lock:
                    self.worker_crashes.inc()
                if attempt < self.retry_policy.max_attempts:
                    self._retry_async(
                        request, key, out, attempt + 1, deadline, span
                    )
                    return
                response = error_response(
                    request.request_id,
                    request.kind,
                    "worker process died while executing this request",
                    code="WORKER_CRASHED",
                )
        except Exception as exc:  # transport/pickling failure
            response = error_response(
                request.request_id,
                request.kind,
                f"process drain failure: {type(exc).__name__}: {exc}",
            )
        self._finish_async(request, key, out, response, span=span)

    def _finish_async(
        self,
        request,
        key,
        out,
        response,
        resubmit_followers: bool = True,
        span: Optional[Span] = None,
    ) -> None:
        """Resolve the leader, fan out to followers, maintain caches.

        The follower pop, the counters and the cache store share one
        critical section: a window between pop and store would let an
        identical request slip past both the cache and the in-flight
        table and re-execute from scratch.  Future resolution happens
        outside the lock.
        """
        followers: List[Tuple[RealizationRequest, Future]] = []
        if span is not None:
            self._finish_span(span, response)
        if response.verdict != "ERROR":
            with self._cache_lock:
                if key is not None:
                    followers = self._in_flight_async.pop(key, [])
                self.requests_handled.inc(1 + len(followers))
                self.requests_by_kind.labels(kind=request.kind).inc(
                    1 + len(followers)
                )
                self.coalesced_hits.inc(len(followers))
                if key is not None:
                    self._cache_store_locked(key, response)
            _resolve_future(
                out, dataclasses.replace(response, request_id=request.request_id)
            )
            for follower_request, follower_out in followers:
                _resolve_future(
                    follower_out,
                    dataclasses.replace(
                        response,
                        request_id=follower_request.request_id,
                        cached=True,
                        elapsed_sec=0.0,
                    ),
                )
        else:
            with self._cache_lock:
                if key is not None:
                    followers = self._in_flight_async.pop(key, [])
                # Followers resolved here (executor closed) still count
                # as handled — stats must agree with the number of
                # responses actually emitted; resubmitted followers are
                # counted by their own completions instead.
                emitted = 1 + (len(followers) if not resubmit_followers else 0)
                self.requests_handled.inc(emitted)
                self.requests_by_kind.labels(kind=request.kind).inc(emitted)
                self._note_code_locked(response)
            _resolve_future(
                out, dataclasses.replace(response, request_id=request.request_id)
            )
            if not resubmit_followers:
                # Executor closed: followers get the leader's envelope
                # instead of an attempt that would rebuild the pool.
                for follower_request, follower_out in followers:
                    _resolve_future(
                        follower_out,
                        dataclasses.replace(
                            response, request_id=follower_request.request_id
                        ),
                    )
                return
            # Failures are never shared (matching the batch drain): each
            # coalesced follower gets its own independent attempt.  The
            # retry runs with key=None — fully detached from the
            # in-flight table, so an orphan completion can never pop
            # (and steal) the follower list of a *newer* leader that
            # registered the same key in the meantime.  The detached run
            # skips the response cache; by determinism a follower of a
            # failed leader almost always fails too, and errors are
            # never cached anyway.
            for follower_request, follower_out in followers:
                self._submit_async(follower_request, None, follower_out)

    # ---------------------------------------------------------------- #
    # Batches                                                          #
    # ---------------------------------------------------------------- #

    def run(self, requests: Iterable[RealizationRequest]) -> List[RealizationResponse]:
        """Drain a batch, preserving request order in the responses."""
        batch = list(requests)
        if len(batch) > 1:
            if self.mode == "threads":
                with ThreadPoolExecutor(max_workers=self.workers) as tpe:
                    return list(tpe.map(self.handle, batch))
            if self.mode == "processes":
                return self._run_processes(batch)
        return [self.handle(request) for request in batch]

    def _run_processes(
        self, batch: List[RealizationRequest]
    ) -> List[RealizationResponse]:
        """Journal-aware batch drain: admitted records land before the
        batch crosses the process boundary, completions after, and
        duplicate idempotent submissions never reach the pool at all."""
        if self.journal is None:
            return self._run_processes_core(batch)
        responses: List[Optional[RealizationResponse]] = [None] * len(batch)
        fresh: List[RealizationRequest] = []
        fresh_idx: List[int] = []
        seqs: List[int] = []
        for i, request in enumerate(batch):
            replayed = self._journal_replay(request)
            if replayed is not None:
                responses[i] = replayed
                continue
            seqs.append(self._journal_admit(request))
            fresh.append(request)
            fresh_idx.append(i)
        if fresh:
            for i, seq, response in zip(
                fresh_idx, seqs, self._run_processes_core(fresh)
            ):
                self.journal.append_completed(seq, response)
                responses[i] = response
        return responses  # type: ignore[return-value]

    def _run_processes_core(
        self, batch: List[RealizationRequest]
    ) -> List[RealizationResponse]:
        """Drain across the persistent worker processes.

        The parent validates, serves cache hits, and coalesces identical
        requests (one submission per distinct cache key); only misses
        cross the process boundary.  Results re-enter the shared
        response cache, so a process drain is field-identical to a
        sequential one.
        """
        self._reopen()  # public entry re-opens after close()
        responses: List[Optional[RealizationResponse]] = [None] * len(batch)
        jobs: List[Tuple[List[int], RealizationRequest]] = []
        job_keys: List[Optional[RealizationRequest]] = []
        by_key: Dict[RealizationRequest, int] = {}
        for i, request in enumerate(batch):
            try:
                request.validate()
            except ServiceError as exc:
                responses[i] = error_response(
                    request.request_id, request.kind, str(exc)
                )
                with self._cache_lock:
                    self.requests_handled.inc()
                    self.requests_by_kind.labels(kind=request.kind).inc()
                continue
            key = request.cache_key() if self.cache_responses else None
            if key is not None:
                hit = self._cache_lookup(key, request)
                if hit is not None:
                    responses[i] = hit
                    continue
                j = by_key.get(key)
                if j is not None:  # coalesce onto the in-flight submission
                    jobs[j][0].append(i)
                    continue
                by_key[key] = len(jobs)
            jobs.append(([i], request))
            job_keys.append(key)

        outcomes = self._submit_process_jobs(jobs)

        retries: List[Tuple[List[int], RealizationRequest]] = []
        for (indices, request), key, response in zip(jobs, job_keys, outcomes):
            lead = indices[0]
            responses[lead] = dataclasses.replace(
                response, request_id=batch[lead].request_id
            )
            if response.verdict == "ERROR":
                # Mirror the threaded single-flight semantics: an ERROR
                # is never cached, so coalesced duplicates get their own
                # real attempt instead of a copy of the failure.
                with self._cache_lock:
                    self.requests_handled.inc()
                    self.requests_by_kind.labels(kind=request.kind).inc()
                    self._note_code_locked(response)
                for i in indices[1:]:
                    retries.append(([i], batch[i]))
                continue
            with self._cache_lock:
                self.requests_handled.inc(len(indices))
                self.requests_by_kind.labels(kind=request.kind).inc(
                    len(indices)
                )
                self.coalesced_hits.inc(len(indices) - 1)
                if key is not None:
                    self._cache_store_locked(key, response)
            for i in indices[1:]:
                responses[i] = dataclasses.replace(
                    response,
                    request_id=batch[i].request_id,
                    cached=True,
                    elapsed_sec=0.0,
                )
        if retries:
            for (indices, request), response in zip(
                retries, self._submit_process_jobs(retries)
            ):
                with self._cache_lock:
                    self.requests_handled.inc()
                    self.requests_by_kind.labels(kind=request.kind).inc()
                    if self.cache_responses and response.verdict != "ERROR":
                        self._cache_store_locked(request.cache_key(), response)
                    self._note_code_locked(response)
                responses[indices[0]] = dataclasses.replace(
                    response, request_id=request.request_id
                )
        return responses  # type: ignore[return-value]

    def _submit_process_jobs(
        self, jobs: List[Tuple[List[int], RealizationRequest]]
    ) -> List[RealizationResponse]:
        """Submit jobs to the worker pool; recover from worker crashes.

        A dead worker breaks the whole ``ProcessPoolExecutor``, failing
        every in-flight future — so crash recovery retries the failed
        jobs *serially* on a fresh pool: a deterministic crasher then
        breaks only its own submission (and earns a typed
        ``WORKER_CRASHED`` error), while its innocent co-victims
        complete normally.
        """
        if not jobs:
            return []
        deadlines = [self._deadline_for(request) for _, request in jobs]
        spans = [self._start_span(request) for _, request in jobs]
        outcomes = self._run_process_jobs(jobs, deadlines, spans)
        for span, outcome in zip(spans, outcomes):
            if span is not None:
                self._finish_span(span, outcome)
        return outcomes

    def _run_process_jobs(
        self,
        jobs: List[Tuple[List[int], RealizationRequest]],
        deadlines: List[Optional[float]],
        spans: List[Optional[Span]],
    ) -> List[RealizationResponse]:
        """The drain behind :meth:`_submit_process_jobs` (spans already
        opened by the caller, which finishes them with the outcomes)."""
        if self.breaker is not None and not self.breaker.allow():
            # Breaker open: run the whole batch in-parent.  _execute is
            # the same deterministic path the workers run, so responses
            # stay field-identical — just slower (sequential).
            with self._cache_lock:
                self.degraded_handled.inc(len(jobs))
            return [
                self._execute(request, deadline, span=span)
                for (_, request), deadline, span in zip(
                    jobs, deadlines, spans
                )
            ]
        try:
            pool = self._ensure_process_pool()
        except _ExecutorClosed:
            return [
                error_response(
                    request.request_id,
                    request.kind,
                    "executor closed while this request was in flight",
                )
                for _, request in jobs
            ]
        futures: List[Optional[Future]] = []
        for (_, request), deadline, span in zip(jobs, deadlines, spans):
            if deadline is not None and time.monotonic() >= deadline:
                futures.append(None)  # expired before dispatch
                continue
            future = pool.submit(
                _process_worker_run_wire,
                request.to_wire(
                    trace=span.context() if span is not None else None
                ),
                deadline,
            )
            self._watch(future, pool, deadline)
            futures.append(future)
        outcomes: List[Optional[RealizationResponse]] = [None] * len(jobs)
        retry: List[int] = []
        for j, future in enumerate(futures):
            request = jobs[j][1]
            if future is None:
                outcomes[j] = error_response(
                    request.request_id,
                    request.kind,
                    "wall-clock deadline expired before dispatch",
                    code="DEADLINE_EXCEEDED",
                )
                continue
            try:
                wire = future.result()
                outcomes[j] = RealizationResponse.from_wire(wire)
                if spans[j] is not None:
                    columns = RealizationResponse.wire_spans(wire)
                    if columns is not None:
                        spans[j].adopt(decode_span_columns(columns))
                self._watch_pop(future)
                if self.breaker is not None:
                    self.breaker.record_success()
            except BrokenExecutor:
                timed_out = self._watch_pop(future)
                # Pool-identity guard (see _note_pool_break): never flag
                # a replacement pool another thread already built.
                self._note_pool_break(pool)
                if spans[j] is not None:
                    spans[j].child(
                        "crash_recovery", attempt=1, timed_out=timed_out
                    ).finish()
                if timed_out:
                    # Watchdog kill: this job is the culprit — typed
                    # timeout, no retry (it would hang again).
                    outcomes[j] = error_response(
                        request.request_id,
                        request.kind,
                        "worker exceeded its wall-clock bound and was "
                        "killed by the watchdog",
                        code="WORKER_TIMEOUT",
                    )
                else:
                    retry.append(j)
            except Exception as exc:  # transport/pickling failure
                self._watch_pop(future)
                outcomes[j] = error_response(
                    request.request_id,
                    request.kind,
                    f"process drain failure: {type(exc).__name__}: {exc}",
                )
        if retry:
            with self._cache_lock:
                self.worker_crashes.inc()
        for j in retry:
            outcomes[j] = self._retry_process_job(
                jobs[j][1], deadlines[j], spans[j]
            )
        return outcomes  # type: ignore[return-value]

    def _retry_process_job(
        self,
        request: RealizationRequest,
        deadline: Optional[float],
        span: Optional[Span] = None,
    ) -> RealizationResponse:
        """Serial crash recovery for one batch job, under the policy.

        Attempts 2..max_attempts on fresh pools with the policy's
        backoff between them; a deterministic crasher exhausts the
        attempts and earns the typed ``WORKER_CRASHED``, a watchdog
        victim stops early with ``WORKER_TIMEOUT``.  With tracing on,
        each attempt is a ``crash_recovery`` child of ``span`` and the
        retried worker's subtree lands under that attempt's span.
        """
        for attempt in range(2, self.retry_policy.max_attempts + 1):
            with self._cache_lock:
                self.retries.inc()
            delay = self.retry_policy.delay_sec(attempt)
            if delay > 0:
                time.sleep(delay)
            if deadline is not None and time.monotonic() >= deadline:
                return error_response(
                    request.request_id,
                    request.kind,
                    "wall-clock deadline expired during crash recovery",
                    code="DEADLINE_EXCEEDED",
                )
            try:
                pool = self._ensure_process_pool()
            except _ExecutorClosed:
                return error_response(
                    request.request_id,
                    request.kind,
                    "executor closed while this request was in flight",
                )
            attempt_span = (
                span.child("crash_recovery", attempt=attempt)
                if span is not None
                else None
            )
            future = pool.submit(
                _process_worker_run_wire,
                request.to_wire(
                    trace=attempt_span.context()
                    if attempt_span is not None
                    else None
                ),
                deadline,
            )
            self._watch(future, pool, deadline)
            try:
                wire = future.result()
                response = RealizationResponse.from_wire(wire)
                if attempt_span is not None:
                    columns = RealizationResponse.wire_spans(wire)
                    if columns is not None:
                        attempt_span.adopt(decode_span_columns(columns))
                    attempt_span.finish(timed_out=False)
                self._watch_pop(future)
                if self.breaker is not None:
                    self.breaker.record_success()
                return response
            except BrokenExecutor:
                timed_out = self._watch_pop(future)
                self._note_pool_break(pool)
                if attempt_span is not None:
                    attempt_span.finish(timed_out=timed_out)
                if timed_out:
                    return error_response(
                        request.request_id,
                        request.kind,
                        "worker exceeded its wall-clock bound and was "
                        "killed by the watchdog",
                        code="WORKER_TIMEOUT",
                    )
                with self._cache_lock:
                    self.worker_crashes.inc()
            except Exception as exc:
                self._watch_pop(future)
                if attempt_span is not None:
                    attempt_span.finish()
                return error_response(
                    request.request_id,
                    request.kind,
                    f"process drain failure: {type(exc).__name__}: {exc}",
                )
        return error_response(
            request.request_id,
            request.kind,
            "worker process died while executing this request",
            code="WORKER_CRASHED",
        )

    def stats(self) -> Dict[str, Any]:
        """The counters — live, or the frozen close-time snapshot.

        After :meth:`close` the snapshot taken at close time is
        returned (``closed: True``) until a public entry point re-opens
        the executor; counters must not drift under a caller that
        already tore the executor down.
        """
        with self._pool_lock:
            if self._closed and self._stats_snapshot is not None:
                return {**self._stats_snapshot, "closed": True}
        return self._live_stats()

    def _live_stats(self) -> Dict[str, Any]:
        # The counters live in the metrics registry now; ``.value``
        # yields the plain ints this dict has always carried (the serve
        # front ends json.dumps it verbatim).
        out: Dict[str, Any] = {
            "mode": self.mode,
            "workers": self.workers,
            "closed": False,
            "requests_handled": self.requests_handled.value,
            "requests_by_kind": self.requests_by_kind.as_dict(),
            "response_cache_hits": self.response_cache_hits.value,
            "response_cache_evictions": self.response_cache_evictions.value,
            "response_cache_size": len(self._response_cache),
            "coalesced_hits": self.coalesced_hits.value,
            "worker_crashes": self.worker_crashes.value,
            "worker_timeouts": self.worker_timeouts.value,
            "retries": self.retries.value,
            "deadline_exceeded": self.deadline_exceeded.value,
            "degraded_handled": self.degraded_handled.value,
            "breaker": self.breaker.snapshot()
            if self.breaker is not None
            else None,
            "scenario_cache_hits": self.registry.cache_hits - self._registry_hits_base,
            "scenario_cache_misses": (
                self.registry.cache_misses - self._registry_misses_base
            ),
            "scenario_cache_evictions": (
                self.registry.cache_evictions - self._registry_evictions_base
            ),
            "latency": self.latency.snapshot(),
            "latency_stages": {
                "queue_wait": self.queue_wait_hist.snapshot(),
                "execution": self.execution_hist.snapshot(),
            },
        }
        if self.pool is not None:
            out["pool"] = self.pool.stats()
        if self.journal is not None:
            out["journal"] = self.journal.stats()
        return out

    # ---------------------------------------------------------------- #
    # Journal recovery (supervised restart)                            #
    # ---------------------------------------------------------------- #

    def recover_journal(
        self,
    ) -> Dict[str, List[Tuple[int, RealizationResponse]]]:
        """Replay the journal's startup scan into serving state.

        ``admitted``-but-not-``completed`` requests are the work a crash
        interrupted: each is answered from the journal when a duplicate
        with the same ``idempotency_key`` already completed, otherwise
        re-executed (deterministically — same envelope, same response)
        — exactly once, and its completion is journaled against the
        *original* admission seq.  Returns the recovered per-session
        response tails (including the just-re-executed ones) in emit
        order, ready to seed the socket server's resume buffers.
        """
        journal = self.journal
        if journal is None:
            return {}
        rec = journal.recover()
        sessions: Dict[str, List[Tuple[int, RealizationResponse]]] = {
            token: list(tail) for token, tail in rec.sessions.items()
        }
        for seq, token, sidx, request in rec.incomplete:
            response = journal.replay_idempotent(request)
            if response is None:
                # Re-execute without re-journaling a second admission:
                # recovery runs single-threaded before serving starts,
                # so detaching the journal around the core is safe.
                self.journal = None
                try:
                    response = self.handle(request)
                finally:
                    self.journal = journal
            journal.append_completed(seq, response)
            if token:
                sessions.setdefault(token, []).append((sidx, response))
        for tail in sessions.values():
            tail.sort(key=lambda pair: pair[0])
        return sessions


# ---------------------------------------------------------------------- #
# JSONL front ends (python -m repro serve / batch)                       #
# ---------------------------------------------------------------------- #


def parse_request_payload(payload: Any):
    """One JSON-style value -> :class:`RealizationRequest`, or an ERROR
    :class:`RealizationResponse` enveloping the parse failure.

    The single parse-error path every front end (``handle_dict``,
    :func:`serve`, :func:`run_batch_lines`) shares.
    """
    try:
        return RealizationRequest.from_dict(payload)
    except ServiceError as exc:
        rid = payload.get("request_id", "") if isinstance(payload, Mapping) else ""
        kind = payload.get("kind", "?") if isinstance(payload, Mapping) else "?"
        return error_response(str(rid), str(kind), str(exc))


def parse_request_line(line: str):
    """One JSONL line -> request or ERROR response (never raises)."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        return error_response("", "?", f"bad JSON: {exc}")
    return parse_request_payload(payload)


#: Default in-flight window of the serve front ends: how many submitted-
#: but-unemitted requests a stream may run ahead by before backpressure
#: applies.  The streaming stdio loop *blocks* its reader at the window;
#: the socket server *rejects* (typed ``ADMISSION_REJECTED``) instead.
#: Both take the validated knob through ``serve()`` / ``SocketServer`` /
#: the CLI's ``--window``.
SERVE_STREAM_WINDOW = 256


def validate_window(window: Optional[int]) -> int:
    """The shared backpressure knob: ``None`` -> default, else int >= 1."""
    if window is None:
        return SERVE_STREAM_WINDOW
    if not isinstance(window, int) or isinstance(window, bool) or window < 1:
        raise ValueError(f"window must be an integer >= 1, got {window!r}")
    return window


def _drain_pending(queue: "Queue") -> int:
    """Discard a serve queue's unemitted items after a writer failure.

    Every pending response ``Future`` is cancelled — so the executor's
    completion callbacks stop resolving work nobody will read and a
    reader blocked on ``put()`` can proceed — and already-completed ones
    have their exception retrieved, so teardown never leaves a stored
    exception unobserved.  Returns the number of discarded items.
    """
    discarded = 0
    while True:
        try:
            item = queue.get_nowait()
        except Empty:
            return discarded
        discarded += 1
        if isinstance(item, Future) and not item.cancel():
            try:
                item.exception(timeout=0)
            except Exception:  # cancelled concurrently: nothing stored
                pass


def serve(
    in_stream: io.TextIOBase,
    out_stream: io.TextIOBase,
    executor: Optional[BatchExecutor] = None,
    window: Optional[int] = None,
) -> Tuple[int, int]:
    """Long-lived JSONL loop: one request per line in, one response out.

    Malformed lines produce ``verdict="ERROR"`` responses (the stream
    keeps serving).  Returns ``(handled, errors)`` — the number of
    responses emitted (including parse-error envelopes;
    ``executor.requests_handled`` counts only the requests that reached
    the executor) and how many of them carried ``verdict="ERROR"``, so
    front ends can propagate a nonzero exit code like ``batch`` does.
    The loop ends at EOF.

    With a ``mode="processes"`` executor the loop *streams*: a reader
    thread parses lines and submits each request to the worker pool as
    it arrives (:meth:`BatchExecutor.submit`), while the calling thread
    emits responses in input order as their futures complete.  A client
    that writes one line and waits sees its response without closing
    stdin; a client that pipelines N lines gets the pool's parallelism.
    ``window`` bounds how far the reader may run ahead of the writer
    (default :data:`SERVE_STREAM_WINDOW`, validated >= 1 — the same
    knob the socket front end rejects on).  Other modes handle each
    line synchronously, as before.
    """
    window = validate_window(window)
    if executor is None:
        executor = BatchExecutor(pool=NetworkPool())
    if executor.mode == "processes":
        return _serve_streaming(in_stream, out_stream, executor, window)
    handled = errors = 0
    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        parsed = parse_request_line(line)
        if isinstance(parsed, RealizationResponse):
            response = parsed
        else:
            response = executor.handle(parsed)
        out_stream.write(json.dumps(response.to_dict()) + "\n")
        out_stream.flush()
        handled += 1
        if response.verdict == "ERROR":
            errors += 1
    return handled, errors


def _serve_streaming(
    in_stream: io.TextIOBase,
    out_stream: io.TextIOBase,
    executor: BatchExecutor,
    window: int,
) -> Tuple[int, int]:
    """The incremental drain behind ``serve --mode processes``.

    Emission order is input order (deterministic per request id): a
    response is written as soon as its future completes *and* every
    earlier response has been written.  The bounded queue gives
    backpressure — the reader stops ``window`` requests ahead of the
    writer.
    """
    queue: "Queue" = Queue(maxsize=window)
    reader_failure: List[BaseException] = []
    stop = threading.Event()

    def pump() -> None:
        try:
            for line in in_stream:
                if stop.is_set():  # writer died: stop submitting
                    break
                line = line.strip()
                if not line:
                    continue
                parsed = parse_request_line(line)
                if isinstance(parsed, RealizationResponse):
                    queue.put(parsed)  # parse error: already a response
                else:
                    # the non-reopening entry: a racing close() must
                    # resolve this future, not resurrect the pool
                    queue.put(executor._submit(parsed, Future()))
        except BaseException as exc:  # re-raised on the caller's thread
            reader_failure.append(exc)
        finally:
            queue.put(None)  # EOF sentinel (also on reader failure)

    reader = threading.Thread(target=pump, name="serve-stream-reader", daemon=True)
    reader.start()
    handled = errors = 0
    try:
        while True:
            item = queue.get()
            if item is None:
                break
            response = item.result() if isinstance(item, Future) else item
            out_stream.write(json.dumps(response.to_dict()) + "\n")
            out_stream.flush()
            handled += 1
            if response.verdict == "ERROR":
                errors += 1
    except BaseException:
        # Writer failed (e.g. BrokenPipeError: the client closed its
        # read end).  Signal the reader to stop submitting, then cancel
        # and discard the unemitted responses — cancelling releases the
        # bounded queue (a pump blocked in put() can proceed) and marks
        # the in-flight futures dead so completion callbacks and worker
        # results are observed, not leaked ("exception was never
        # retrieved" noise) — and propagate immediately, without joining
        # or block-draining: a reader blocked on input that never
        # arrives would stall forever (it is a daemon thread and retires
        # at its next line or at EOF).
        stop.set()
        _drain_pending(queue)
        raise
    reader.join()
    if reader_failure:
        # A dying reader must not masquerade as clean EOF — the
        # synchronous modes propagate stream failures to the caller, so
        # the streaming mode does too (after emitting what completed).
        raise reader_failure[0]
    return handled, errors


def run_batch_lines(
    lines: Iterable[str],
    executor: Optional[BatchExecutor] = None,
) -> List[RealizationResponse]:
    """Parse a JSONL batch and drain it through ``executor``."""
    if executor is None:
        executor = BatchExecutor(pool=NetworkPool())
    # Parse every line first (parse errors become in-place ERROR
    # responses), then drain the well-formed requests as one batch so
    # the executor's threaded/process modes can overlap them.
    responses: List[Optional[RealizationResponse]] = []
    requests: List[RealizationRequest] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        parsed = parse_request_line(line)
        if isinstance(parsed, RealizationResponse):
            responses.append(parsed)
        else:
            requests.append(parsed)
            responses.append(None)  # placeholder, filled after the drain

    outcomes = iter(executor.run(requests))
    return [
        response if response is not None else next(outcomes)
        for response in responses
    ]
