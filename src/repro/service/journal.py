"""Write-ahead request journal: the durability rung of the serve stack.

PR 7 made the server survive faults *inside* the process and PR 8 made
it observable; this module makes the process itself expendable.  Every
request is journaled to an append-only file at admission and again at
completion, so a SIGKILL mid-load loses nothing: on restart the journal
is scanned, ``admitted``-but-not-``completed`` requests are re-executed
(deterministically — same envelope, same answer), completed ones are
answered straight from their journaled response, and a reconnecting
client's session replays its unacked responses in order.

Design notes
------------

**Records are wire envelopes.**  A journaled request/response is the
same positional tuple that crosses the process-drain boundary
(``RealizationRequest.to_wire()`` / ``RealizationResponse.to_wire()``
from :mod:`repro.service.api`, built on :mod:`repro.ncc.wire`), pickled
inside a small framed record::

    [u32 length][u32 crc32c(payload)][payload = pickle(record tuple)]

Record tuples (``seq`` is a journal-global monotone counter):

* ``("admitted", seq, session_token, session_index, idempotency_key,
  request_wire)`` — written *before* execution starts, in every drain
  mode.
* ``("completed", seq, admitted_seq, response_wire)`` — written when the
  response exists; links back to its admission by seq, so ambiguous or
  reused ``request_id`` values cannot cross wires.
* ``("rejected", seq, session_token, session_index, response_wire)`` —
  immediate server-side envelopes (admission rejections, parse errors)
  that never reached the executor but still occupy a session slot.
* ``("compact", seq, session_token, session_index, idempotency_key,
  response_wire)`` — a completed record condensed by :meth:`compact`.

**Torn tails are expected.**  A crash can land mid-``write``; recovery
scans until the first record whose frame is short or whose CRC-32C
(:func:`repro.ncc.wire.crc32c`) disagrees, truncates the file there,
warns on stderr, and counts what it dropped in :meth:`stats`.  A bad
CRC *mid*-file (bit rot, not a torn tail) is handled the same way —
everything from the first unverifiable record is dropped, because
record framing carries no resynchronisation marker.

**fsync policy is a dial, not a boolean.**  ``always`` fsyncs every
append (power-loss durable, slow), ``batch`` fsyncs every
``batch_every`` appends plus at every explicit :meth:`flush` barrier
(drain, compaction, close), ``never`` leaves it to the OS.  The Python
buffer is flushed to the OS on *every* append regardless, so a SIGKILL
— which cannot lose OS-buffered writes — loses nothing even at
``fsync=never``; the policy only widens the power-loss window.
"""

from __future__ import annotations

import os
import pickle
import struct
import sys
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..ncc.wire import crc32c
from . import faults
from .api import RealizationRequest, RealizationResponse

FSYNC_POLICIES = ("never", "batch", "always")
_HEADER = struct.Struct("<II")
_MAX_RECORD = 64 * 1024 * 1024  # sanity bound: a frame length past this is garbage
_PICKLE_PROTOCOL = 4

# Bounded replay state: the journal is a log, not a database — the
# in-memory maps that answer duplicate submissions and rebuild sessions
# keep a recent tail, evicting oldest-first with counters.
REPLAY_LIMIT = 4096  # distinct idempotency keys retained
SESSION_TAIL = 1024  # responses retained per session token


class JournalError(Exception):
    """Misuse of the journal API (bad policy, closed journal)."""


@dataclass
class JournalRecovery:
    """What a startup scan found (a snapshot, not a live view).

    ``incomplete`` holds ``(seq, session_token, session_index, request)``
    for every admission with no completion — the re-execution worklist.
    ``sessions`` maps a session token to its recovered response tail in
    emit order: ``[(session_index, response), ...]``.
    """

    records: int = 0
    admitted: int = 0
    completed: int = 0
    rejected: int = 0
    compacted: int = 0
    duplicate_completions: int = 0
    orphan_completions: int = 0
    truncated_bytes: int = 0
    torn_tail: bool = False
    incomplete: List[Tuple[int, str, int, RealizationRequest]] = field(
        default_factory=list
    )
    sessions: Dict[str, List[Tuple[int, RealizationResponse]]] = field(
        default_factory=dict
    )


class RequestJournal:
    """Append-only, CRC-framed, fsync-policy-configurable request log.

    Thread-safe: appends arrive from the serve event loop, the threaded
    drain's workers and the process pool's callback threads at once.
    """

    def __init__(
        self,
        path: str,
        fsync: str = "batch",
        batch_every: int = 32,
        replay_limit: int = REPLAY_LIMIT,
        session_tail: int = SESSION_TAIL,
        fsync_observer: Optional[Callable[[float], None]] = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise JournalError(
                f"unknown fsync policy {fsync!r}; expected one of {FSYNC_POLICIES}"
            )
        if batch_every < 1:
            raise JournalError("batch_every must be >= 1")
        self.path = path
        self.fsync = fsync
        self.batch_every = batch_every
        self.replay_limit = replay_limit
        self.session_tail = session_tail
        self.fsync_observer = fsync_observer
        self._lock = threading.RLock()
        self._seq = 0
        self._pending_syncs = 0
        self._closed = False
        # Live replay state (mirrors the durable file).
        self._completed_by_key: "OrderedDict[str, tuple]" = OrderedDict()
        self._incomplete: "OrderedDict[int, Tuple[str, int, Optional[str], tuple]]" = (
            OrderedDict()
        )
        self._sessions: Dict[str, "OrderedDict[int, tuple]"] = {}
        # Counters (cumulative across compactions).
        self._counts = {
            "admitted": 0,
            "completed": 0,
            "rejected": 0,
            "replays": 0,
            "fsyncs": 0,
            "fsync_errors": 0,
            "duplicate_completions": 0,
            "replay_evictions": 0,
            "session_evictions": 0,
            "compactions": 0,
        }
        self._recovery = self._load()
        self._file = open(self.path, "ab")

    # ----------------------------------------------------------------- #
    # Framing                                                           #
    # ----------------------------------------------------------------- #

    @staticmethod
    def _frame(record: tuple) -> bytes:
        payload = pickle.dumps(record, protocol=_PICKLE_PROTOCOL)
        return _HEADER.pack(len(payload), crc32c(payload)) + payload

    def _append(self, record: tuple, tag: str = "") -> None:
        """Frame, write, flush; fsync per policy.  Caller holds the lock."""
        if self._closed:
            raise JournalError("journal is closed")
        self._file.write(self._frame(record))
        # Python buffer -> OS on every append: SIGKILL-safe at any policy.
        self._file.flush()
        self._pending_syncs += 1
        if self.fsync == "always" or (
            self.fsync == "batch" and self._pending_syncs >= self.batch_every
        ):
            self._fsync(tag)

    def _fsync(self, tag: str = "") -> None:
        plan = faults.active()
        if plan is not None and plan.match("fsync_error", tag) is not None:
            # Deterministic injected EIO: durability degrades (the write
            # stays OS-buffered) but the service keeps answering.
            self._counts["fsync_errors"] += 1
            self._pending_syncs = 0
            return
        start = time.perf_counter()
        os.fsync(self._file.fileno())
        if self.fsync_observer is not None:
            self.fsync_observer(time.perf_counter() - start)
        self._counts["fsyncs"] += 1
        self._pending_syncs = 0

    # ----------------------------------------------------------------- #
    # Append API (the write-ahead contract)                             #
    # ----------------------------------------------------------------- #

    def append_admitted(
        self,
        request: RealizationRequest,
        session: Optional[Tuple[str, int]] = None,
    ) -> int:
        """Journal an admission *before* execution starts; returns its seq."""
        token, sidx = session if session is not None else ("", -1)
        with self._lock:
            self._seq += 1
            seq = self._seq
            key = request.idempotency_key
            wire_req = request.to_wire()
            self._append(
                ("admitted", seq, token, sidx, key, wire_req), request.request_id
            )
            self._counts["admitted"] += 1
            self._incomplete[seq] = (token, sidx, key, wire_req)
        return seq

    def append_completed(
        self, admitted_seq: int, response: RealizationResponse
    ) -> int:
        """Journal the response for a previously admitted request."""
        with self._lock:
            self._seq += 1
            seq = self._seq
            wire_resp = response.to_wire()
            self._append(
                ("completed", seq, admitted_seq, wire_resp), response.request_id
            )
            self._counts["completed"] += 1
            admitted = self._incomplete.pop(admitted_seq, None)
            if admitted is not None:
                token, sidx, key, _ = admitted
                if key:
                    self._remember_key(key, wire_resp)
                if token:
                    self._remember_session(token, sidx, wire_resp)
        return seq

    def append_rejected(
        self,
        response: RealizationResponse,
        session: Optional[Tuple[str, int]] = None,
    ) -> int:
        """Journal an immediate server-side envelope (never executed)."""
        token, sidx = session if session is not None else ("", -1)
        with self._lock:
            self._seq += 1
            seq = self._seq
            wire_resp = response.to_wire()
            self._append(
                ("rejected", seq, token, sidx, wire_resp), response.request_id
            )
            self._counts["rejected"] += 1
            if token:
                self._remember_session(token, sidx, wire_resp)
        return seq

    def _remember_key(self, key: str, wire_resp: tuple) -> None:
        self._completed_by_key[key] = wire_resp
        self._completed_by_key.move_to_end(key)
        while len(self._completed_by_key) > self.replay_limit:
            self._completed_by_key.popitem(last=False)
            self._counts["replay_evictions"] += 1

    def _remember_session(self, token: str, sidx: int, wire_resp: tuple) -> None:
        tail = self._sessions.setdefault(token, OrderedDict())
        tail[sidx] = wire_resp
        while len(tail) > self.session_tail:
            tail.popitem(last=False)
            self._counts["session_evictions"] += 1

    # ----------------------------------------------------------------- #
    # Replay API (exactly-once)                                         #
    # ----------------------------------------------------------------- #

    def replay_idempotent(
        self, request: RealizationRequest
    ) -> Optional[RealizationResponse]:
        """The journaled response for this submission, or ``None``.

        A duplicate submission (same ``idempotency_key``) is answered
        field-identical from the completed record — never re-executed.
        Only ``request_id`` follows the incoming envelope, mirroring the
        response cache: a client that retransmits the same request gets
        back the exact response it missed.
        """
        key = request.idempotency_key
        if key is None:
            return None
        with self._lock:
            wire_resp = self._completed_by_key.get(key)
            if wire_resp is None:
                return None
            self._completed_by_key.move_to_end(key)
            self._counts["replays"] += 1
        response = RealizationResponse.from_wire(wire_resp)
        if response.request_id != request.request_id:
            response = replace(response, request_id=request.request_id)
        return response

    def recover(self) -> JournalRecovery:
        """The startup scan's snapshot (worklist + session tails)."""
        return self._recovery

    # ----------------------------------------------------------------- #
    # Startup scan                                                      #
    # ----------------------------------------------------------------- #

    def _load(self) -> JournalRecovery:
        rec = JournalRecovery()
        if not os.path.exists(self.path):
            return rec
        with open(self.path, "rb") as fh:
            blob = fh.read()
        offset = 0
        admissions: Dict[int, Tuple[str, int, Optional[str], tuple]] = {}
        completions: Dict[int, tuple] = {}
        order: List[tuple] = []
        while True:
            record, end = self._read_record(blob, offset)
            if record is None:
                if end != len(blob):
                    rec.torn_tail = True
                    rec.truncated_bytes = len(blob) - offset
                    print(
                        f"journal: dropping {rec.truncated_bytes} unverifiable "
                        f"byte(s) at offset {offset} of {self.path} "
                        "(torn tail or corrupt record)",
                        file=sys.stderr,
                    )
                    with open(self.path, "r+b") as fh:
                        fh.truncate(offset)
                break
            offset = end
            rec.records += 1
            order.append(record)
        for record in order:
            kind = record[0]
            if kind == "admitted":
                _, seq, token, sidx, key, wire_req = record
                self._seq = max(self._seq, seq)
                admissions[seq] = (token, sidx, key, wire_req)
                rec.admitted += 1
            elif kind == "completed":
                _, seq, admitted_seq, wire_resp = record
                self._seq = max(self._seq, seq)
                rec.completed += 1
                if admitted_seq in completions:
                    # Duplicate completion (e.g. a crash between the
                    # append and the in-memory pop, then a re-execution
                    # that completed again): first record wins — it is
                    # what the client may already have acked.
                    rec.duplicate_completions += 1
                    continue
                if admitted_seq not in admissions:
                    rec.orphan_completions += 1
                    continue
                completions[admitted_seq] = wire_resp
                token, sidx, key, _ = admissions[admitted_seq]
                if key:
                    self._remember_key(key, wire_resp)
                if token:
                    self._remember_session(token, sidx, wire_resp)
            elif kind == "rejected":
                _, seq, token, sidx, wire_resp = record
                self._seq = max(self._seq, seq)
                rec.rejected += 1
                if token:
                    self._remember_session(token, sidx, wire_resp)
            elif kind == "compact":
                _, seq, token, sidx, key, wire_resp = record
                self._seq = max(self._seq, seq)
                rec.compacted += 1
                if key:
                    self._remember_key(key, wire_resp)
                if token:
                    self._remember_session(token, sidx, wire_resp)
            # Unknown record kinds from a future version are skipped.
        for seq in sorted(set(admissions) - set(completions)):
            token, sidx, key, wire_req = admissions[seq]
            self._incomplete[seq] = (token, sidx, key, wire_req)
            rec.incomplete.append(
                (seq, token, sidx, RealizationRequest.from_wire(wire_req))
            )
        rec.sessions = {
            token: [
                (sidx, RealizationResponse.from_wire(wire_resp))
                for sidx, wire_resp in sorted(tail.items())
            ]
            for token, tail in self._sessions.items()
        }
        # Carry the scan's duplicate count into the live counters so
        # stats() reflects the whole file, not just this process's life.
        self._counts["duplicate_completions"] += rec.duplicate_completions
        return rec

    @staticmethod
    def _read_record(blob: bytes, offset: int) -> Tuple[Optional[tuple], int]:
        """One framed record at ``offset``: ``(record, end)`` or
        ``(None, offset)`` when the frame is short, oversized, fails its
        CRC, or fails to unpickle."""
        if offset + _HEADER.size > len(blob):
            return None, offset
        length, crc = _HEADER.unpack_from(blob, offset)
        start = offset + _HEADER.size
        end = start + length
        if length > _MAX_RECORD or end > len(blob):
            return None, offset
        payload = blob[start:end]
        if crc32c(payload) != crc:
            return None, offset
        try:
            record = pickle.loads(payload)
        except Exception:
            return None, offset
        if not isinstance(record, tuple) or not record:
            return None, offset
        return record, end

    # ----------------------------------------------------------------- #
    # Maintenance                                                       #
    # ----------------------------------------------------------------- #

    def flush(self) -> None:
        """Durability barrier: flush + fsync regardless of policy."""
        with self._lock:
            if self._closed:
                return
            self._file.flush()
            self._fsync()

    def compact(self) -> None:
        """Condense the log to its live replay state (clean-drain hook).

        Admitted/completed pairs collapse into ``compact`` records; the
        rewrite is atomic (temp file + ``os.replace``), fsynced before
        the swap so a crash mid-compaction leaves either the old log or
        the new one, never a mixture.
        """
        with self._lock:
            if self._closed:
                raise JournalError("journal is closed")
            tmp_path = self.path + ".compact"
            seq = self._seq
            with open(tmp_path, "wb") as tmp:
                for token, tail in self._sessions.items():
                    for sidx, wire_resp in sorted(tail.items()):
                        seq += 1
                        tmp.write(
                            self._frame(("compact", seq, token, sidx, None, wire_resp))
                        )
                for key, wire_resp in self._completed_by_key.items():
                    seq += 1
                    tmp.write(self._frame(("compact", seq, "", -1, key, wire_resp)))
                for admitted_seq, (token, sidx, key, wire_req) in (
                    self._incomplete.items()
                ):
                    tmp.write(
                        self._frame(
                            ("admitted", admitted_seq, token, sidx, key, wire_req)
                        )
                    )
                tmp.flush()
                os.fsync(tmp.fileno())
            self._file.close()
            os.replace(tmp_path, self.path)
            self._file = open(self.path, "ab")
            self._fsync()
            self._seq = max(self._seq, seq)
            self._pending_syncs = 0
            self._counts["compactions"] += 1

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._file.flush()
            try:
                self._fsync()
            except (OSError, ValueError):  # pragma: no cover - best effort
                pass
            self._file.close()
            self._closed = True

    # ----------------------------------------------------------------- #
    # Introspection                                                     #
    # ----------------------------------------------------------------- #

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            rec = self._recovery
            return {
                "path": self.path,
                "fsync": self.fsync,
                **dict(self._counts),
                "incomplete": len(self._incomplete),
                "replay_keys": len(self._completed_by_key),
                "sessions": len(self._sessions),
                "recovered_records": rec.records,
                "recovered_incomplete": len(rec.incomplete),
                "torn_tail": rec.torn_tail,
                "truncated_bytes": rec.truncated_bytes,
            }

    def collect_metrics(self):
        """Registry collector (``MetricsRegistry.register_collector``)."""
        s = self.stats()
        counters = (
            ("repro_journal_admitted_total", "Admissions journaled", "admitted"),
            ("repro_journal_completed_total", "Completions journaled", "completed"),
            ("repro_journal_rejected_total", "Immediate envelopes journaled", "rejected"),
            ("repro_journal_replays_total", "Duplicate submissions answered from the journal", "replays"),
            ("repro_journal_fsyncs_total", "fsync barriers issued", "fsyncs"),
            ("repro_journal_fsync_errors_total", "Injected/observed fsync failures", "fsync_errors"),
            ("repro_journal_compactions_total", "Log compactions", "compactions"),
        )
        out = [
            (name, "counter", help, [(name, (), float(s[key]))])
            for name, help, key in counters
        ]
        out.append(
            (
                "repro_journal_incomplete",
                "gauge",
                "Admitted-but-not-completed records",
                [("repro_journal_incomplete", (), float(s["incomplete"]))],
            )
        )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RequestJournal(path={self.path!r}, fsync={self.fsync!r})"
