"""The warm-network pool: lease/release of reusable :class:`Network`\\ s.

Constructing a :class:`~repro.ncc.network.Network` re-derives the ID
space, the initial knowledge graph ``Gk`` and (for NCC1) the complete
knowledge sets on every request.  The pool amortizes that by leasing
*warm* instances: a released network is :meth:`~Network.reset` back to
its pristine post-construction state (a verified bit-identical contract,
see ``tests/test_service_pool.py``) and parked for the next request with
the same ``(n, config)``.

The pool key is ``(n, NCCConfig)`` — the config is a frozen dataclass,
so the fingerprint covers the variant, the caps, the enforcement mode,
the engine *and* the seed: a leased network is indistinguishable from a
fresh ``Network(n, config)``.  Networks built with a custom ``knowledge``
graph are not poolable (the key cannot see it) — construct those
directly.

All operations are thread-safe; the batch executor's thread-pooled mode
shares one pool across workers, and the future multiprocess sharded
engine is expected to sit behind the same lease API.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Tuple

from repro.ncc.config import DEFAULT_CONFIG, NCCConfig
from repro.ncc.network import Network

PoolKey = Tuple[int, NCCConfig]


class NetworkPool:
    """A keyed free-list of warm, pristine networks.

    Parameters
    ----------
    max_idle_per_key:
        How many released networks to retain per ``(n, config)`` key;
        beyond that, released instances are discarded.
    max_total_idle:
        Cap on idle networks across *all* keys, so memory stays bounded
        for long-lived services even under key-diverse traffic (NCC1
        networks hold O(n²) knowledge).  When exceeded, the pool evicts
        from the longest-idle key first.
    """

    def __init__(self, max_idle_per_key: int = 4, max_total_idle: int = 64) -> None:
        if max_idle_per_key < 0:
            raise ValueError("max_idle_per_key must be >= 0")
        if max_total_idle < 0:
            raise ValueError("max_total_idle must be >= 0")
        self.max_idle_per_key = max_idle_per_key
        self.max_total_idle = max_total_idle
        self._idle: Dict[PoolKey, List[Network]] = {}
        self._lock = threading.Lock()
        self.leases = 0
        self.pool_hits = 0
        self.constructions = 0
        self.releases = 0
        self.discards = 0

    def lease(self, n: int, config: NCCConfig = DEFAULT_CONFIG) -> Network:
        """A pristine network for ``(n, config)`` — warm if available."""
        key = (n, config)
        with self._lock:
            self.leases += 1
            stack = self._idle.get(key)
            if stack:
                self.pool_hits += 1
                return stack.pop()
            self.constructions += 1
        # Construction happens outside the lock: it is the expensive part
        # and touches no shared state.
        return Network(n, config)

    def release(self, net: Network) -> None:
        """Reset ``net`` and park it for the next lease of its key.

        A network that will not be parked (its key's idle stack is full)
        is discarded without paying the O(n) reset.  The room check is
        repeated after the reset, so the idle bound holds even when two
        releases of the same key race; the rare loser wastes one reset.
        """
        key = (net.n, net.config)
        discard = False
        with self._lock:
            self.releases += 1
            if (
                net.custom_knowledge
                or self.max_idle_per_key == 0
                or self.max_total_idle == 0
            ):
                # A custom-knowledge network is invisible to the key: a
                # later lease would get the wrong initial state.  Discard.
                self.discards += 1
                discard = True
            else:
                stack = self._idle.get(key)
                if stack is not None and len(stack) >= self.max_idle_per_key:
                    self.discards += 1
                    discard = True
        if discard:
            # Closing may join worker processes — never under the lock.
            net.close()
            return
        net.reset()
        evicted: List[Network] = []
        with self._lock:
            # Re-resolve the stack: a concurrent eviction may have
            # removed the key's (empty) slot while the lock was dropped
            # for the reset — appending to the old reference would lose
            # the network.
            stack = self._idle.setdefault(key, [])
            if len(stack) >= self.max_idle_per_key:
                self.discards += 1
                discard = True
            else:
                stack.append(net)
                # Global bound: evict from the longest-idle key (dict
                # order = key first-use order; empty stacks are removed
                # on eviction).
                total = sum(len(s) for s in self._idle.values())
                while total > self.max_total_idle:
                    oldest = next(iter(self._idle))
                    victims = self._idle[oldest]
                    if not victims:  # drained by leases; drop empty slot
                        del self._idle[oldest]
                        continue
                    evicted.append(victims.pop(0))
                    if not victims:
                        del self._idle[oldest]
                    self.discards += 1
                    total -= 1
        if discard:
            net.close()
        # A discarded network may hold external resources (the sharded
        # engine's worker processes) — release them outside the lock.
        for victim in evicted:
            victim.close()

    @contextmanager
    def network(self, n: int, config: NCCConfig = DEFAULT_CONFIG) -> Iterator[Network]:
        """``with pool.network(n, config) as net:`` lease/release guard.

        The network is released (and reset) even if the workload raises —
        a failed run leaves no residue for the next lease.
        """
        net = self.lease(n, config)
        try:
            yield net
        finally:
            self.release(net)

    def idle_count(self) -> int:
        with self._lock:
            return sum(len(stack) for stack in self._idle.values())

    def clear(self) -> None:
        """Drop every idle network (keeps counters), closing each one."""
        with self._lock:
            victims = [net for stack in self._idle.values() for net in stack]
            self._idle.clear()
        for net in victims:
            net.close()

    def stats(self) -> Dict[str, int]:
        """Counter snapshot for service introspection and benchmarks."""
        with self._lock:
            return {
                "leases": self.leases,
                "pool_hits": self.pool_hits,
                "constructions": self.constructions,
                "releases": self.releases,
                "discards": self.discards,
                "idle": sum(len(stack) for stack in self._idle.values()),
                "keys": len(self._idle),
            }

    def collect_metrics(self):
        """Registry collector: the pool's counters as Prometheus
        families (``MetricsRegistry.register_collector`` callback —
        the pool keeps its own lock, so samples are read at scrape
        time instead of mirrored into registry instruments)."""
        s = self.stats()
        counters = (
            ("repro_pool_leases_total", "Network leases requested"),
            ("repro_pool_hits_total", "Leases served from the warm pool"),
            ("repro_pool_constructions_total", "Cold network constructions"),
            ("repro_pool_releases_total", "Networks released back"),
            ("repro_pool_discards_total", "Released networks discarded"),
        )
        keys = ("leases", "pool_hits", "constructions", "releases", "discards")
        out = [
            (name, "counter", help, [(name, (), float(s[key]))])
            for (name, help), key in zip(counters, keys)
        ]
        out.append(
            (
                "repro_pool_idle",
                "gauge",
                "Idle warm networks parked in the pool",
                [("repro_pool_idle", (), float(s["idle"]))],
            )
        )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"NetworkPool(hits={s['pool_hits']}/{s['leases']}, "
            f"idle={s['idle']} across {s['keys']} key(s))"
        )
