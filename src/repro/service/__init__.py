"""repro.service — the batch realization service.

The long-lived front end over the paper's realizers: typed
request/response envelopes (:mod:`~repro.service.api`), a registry of
named workload scenarios (:mod:`~repro.service.registry`), a warm
:class:`NetworkPool` built on the verified ``Network.reset()`` lease
contract (:mod:`~repro.service.pool`), and a batch/queue executor with
JSONL front ends (:mod:`~repro.service.executor`), exposed on the CLI as
``python -m repro serve`` and ``python -m repro batch``.

Quickstart::

    from repro.service import BatchExecutor, NetworkPool, RealizationRequest

    executor = BatchExecutor(pool=NetworkPool())
    response = executor.handle(RealizationRequest(
        kind="degree_implicit", scenario="power_law", n=64, seed=7,
    ))
    assert response.verdict == "REALIZED"
"""

from repro.service.api import (
    KINDS,
    RealizationRequest,
    RealizationResponse,
    ServiceError,
    error_response,
)
from repro.service.executor import (
    BatchExecutor,
    parse_request_line,
    parse_request_payload,
    resolve_workload,
    run_batch_lines,
    run_request,
    serve,
)
from repro.service.pool import NetworkPool
from repro.service.registry import (
    DEFAULT_REGISTRY,
    Scenario,
    ScenarioRegistry,
    default_registry,
)

__all__ = [
    "BatchExecutor",
    "DEFAULT_REGISTRY",
    "KINDS",
    "NetworkPool",
    "RealizationRequest",
    "RealizationResponse",
    "Scenario",
    "ScenarioRegistry",
    "ServiceError",
    "default_registry",
    "error_response",
    "parse_request_line",
    "parse_request_payload",
    "resolve_workload",
    "run_batch_lines",
    "run_request",
    "serve",
]
