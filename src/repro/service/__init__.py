"""repro.service — the batch realization service.

The long-lived front end over the paper's realizers: typed
request/response envelopes (:mod:`~repro.service.api`), a registry of
named workload scenarios (:mod:`~repro.service.registry`), a warm
:class:`NetworkPool` built on the verified ``Network.reset()`` lease
contract (:mod:`~repro.service.pool`), and a batch/queue executor with
JSONL front ends (:mod:`~repro.service.executor`), plus an asyncio TCP
front end multiplexing many concurrent JSONL connections onto one shared
executor (:mod:`~repro.service.server`), exposed on the CLI as
``python -m repro serve`` (``--port`` for the socket server) and
``python -m repro batch``.

Quickstart::

    from repro.service import BatchExecutor, NetworkPool, RealizationRequest

    executor = BatchExecutor(pool=NetworkPool())
    response = executor.handle(RealizationRequest(
        kind="degree_implicit", scenario="power_law", n=64, seed=7,
    ))
    assert response.verdict == "REALIZED"
"""

from repro.service.api import (
    KINDS,
    RealizationRequest,
    RealizationResponse,
    ServiceError,
    error_response,
)
from repro.service.faults import FaultPlan, FaultRule
from repro.service.journal import JournalRecovery, RequestJournal
from repro.service.robustness import CircuitBreaker, RetryPolicy
from repro.service.supervise import supervise_loop, supervisor_policy
from repro.service.executor import (
    SERVE_STREAM_WINDOW,
    BatchExecutor,
    LatencyRecorder,
    parse_request_line,
    parse_request_payload,
    resolve_workload,
    run_batch_lines,
    run_request,
    serve,
    validate_window,
)
from repro.service.pool import NetworkPool
from repro.obs import MetricsRegistry, Span, Tracer
from repro.service.server import (
    ADMISSION_REJECTED,
    METRICS_KIND,
    SESSION_KIND,
    SESSION_UNKNOWN,
    STATS_KIND,
    SocketServer,
    retry_after_hint,
    serve_socket,
    validate_timeout,
)
from repro.service.registry import (
    DEFAULT_REGISTRY,
    Scenario,
    ScenarioRegistry,
    default_registry,
)

__all__ = [
    "ADMISSION_REJECTED",
    "BatchExecutor",
    "CircuitBreaker",
    "DEFAULT_REGISTRY",
    "FaultPlan",
    "FaultRule",
    "JournalRecovery",
    "KINDS",
    "LatencyRecorder",
    "METRICS_KIND",
    "MetricsRegistry",
    "NetworkPool",
    "RequestJournal",
    "RetryPolicy",
    "RealizationRequest",
    "RealizationResponse",
    "SERVE_STREAM_WINDOW",
    "SESSION_KIND",
    "SESSION_UNKNOWN",
    "STATS_KIND",
    "Scenario",
    "ScenarioRegistry",
    "ServiceError",
    "SocketServer",
    "Span",
    "Tracer",
    "default_registry",
    "error_response",
    "parse_request_line",
    "parse_request_payload",
    "resolve_workload",
    "retry_after_hint",
    "run_batch_lines",
    "run_request",
    "serve",
    "serve_socket",
    "supervise_loop",
    "supervisor_policy",
    "validate_timeout",
    "validate_window",
]
