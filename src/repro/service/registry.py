"""The scenario registry: named workload generators for the service.

Before this subsystem, workload construction was glue scattered across
``__main__.py``'s ``PROFILE_WORKLOADS``, the ``benchmarks/`` modules and
ad-hoc example code.  A :class:`Scenario` makes each workload family a
first-class named generator so a service request (or a CLI call, or a
benchmark) can say ``{"scenario": "power_law", "n": 256, "seed": 3}``
instead of shipping a raw degree list.

Two flavours coexist in one registry:

* **realization scenarios** carry a ``build(n, seed, **params)`` that
  returns the workload vector (a degree sequence, or a ρ vector for
  connectivity scenarios) — these back service requests;
* **primitive scenarios** carry a ``runner(net, n, seed)`` that drives a
  Section-3 primitive end to end — these back ``python -m repro
  profile`` (the old ``PROFILE_WORKLOADS``) and are not valid request
  targets.

Materialization is deterministic in ``(name, n, seed, params)`` and the
registry memoizes it, so a warm service never regenerates the same
instance twice.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.service.api import ServiceError, _params_key
from repro.workloads import (
    balanced_tree_sequence,
    bimodal_rho,
    caterpillar_sequence,
    concentrated_sequence,
    near_graphic_perturbation,
    path_sequence,
    power_law_rho,
    power_law_sequence,
    random_graphic_sequence,
    random_tree_sequence,
    ranked_rho,
    regular_sequence,
    star_like_sequence,
    star_sequence,
    uniform_rho,
)


@dataclass(frozen=True)
class Scenario:
    """One named workload family.

    ``kind`` is the *default* request kind the scenario targets (a
    request may override it — e.g. run the ``regular`` family through the
    approximate realizer).  Exactly one of ``build``/``runner`` is set.
    """

    name: str
    description: str
    kind: str
    build: Optional[Callable[..., List[int]]] = None
    runner: Optional[Callable[..., None]] = None

    @property
    def is_primitive(self) -> bool:
        return self.runner is not None


class ScenarioRegistry:
    """Name -> :class:`Scenario`, with memoized materialization.

    The materialization cache is LRU-bounded by ``max_cached`` so a
    long-lived service stays bounded under diverse traffic while the
    popular scenarios of a skewed mix stay resident (the FIFO policy it
    replaces evicted by insertion age, dropping hot entries under churn).
    ``cache_evictions`` counts entries dropped by the bound.
    """

    def __init__(self, max_cached: int = 4096) -> None:
        self._scenarios: Dict[str, Scenario] = {}
        self._cache: "OrderedDict[Tuple, Tuple[int, ...]]" = OrderedDict()
        self._lock = threading.Lock()
        self.max_cached = max_cached
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0

    def register(self, scenario: Scenario) -> Scenario:
        if scenario.name in self._scenarios:
            raise ValueError(f"scenario {scenario.name!r} already registered")
        if (scenario.build is None) == (scenario.runner is None):
            raise ValueError("a scenario needs exactly one of build/runner")
        self._scenarios[scenario.name] = scenario
        return scenario

    def get(self, name: str) -> Scenario:
        try:
            return self._scenarios[name]
        except KeyError:
            raise ServiceError(
                f"unknown scenario {name!r}; known: {', '.join(self.names())}"
            ) from None

    def names(self, kind: Optional[str] = None) -> List[str]:
        return sorted(
            s.name for s in self._scenarios.values() if kind is None or s.kind == kind
        )

    def __contains__(self, name: str) -> bool:
        return name in self._scenarios

    def __iter__(self):
        return iter(sorted(self._scenarios.values(), key=lambda s: s.name))

    def materialize(
        self,
        name: str,
        n: int,
        seed: int = 0,
        params: Optional[Mapping[str, Any]] = None,
        use_cache: bool = True,
    ) -> Tuple[int, ...]:
        """The scenario's workload vector for ``(n, seed, params)``.

        Deterministic, hence safely memoized; ``use_cache=False`` forces
        regeneration (the benchmark's cold mode measures exactly that).
        """
        scenario = self.get(name)
        if scenario.is_primitive:
            raise ServiceError(
                f"scenario {name!r} is a primitive profile workload, not a "
                "realization workload"
            )
        key_params = _params_key(params)
        key = (name, n, seed, key_params)
        if use_cache:
            with self._lock:
                hit = self._cache.get(key)
                if hit is not None:
                    self.cache_hits += 1
                    self._cache.move_to_end(key)
                    return hit
        with self._lock:
            self.cache_misses += 1
        try:
            vector = tuple(scenario.build(n, seed, **dict(key_params)))
        except TypeError as exc:
            raise ServiceError(f"bad params for scenario {name!r}: {exc}") from None
        except ValueError as exc:
            raise ServiceError(f"infeasible scenario {name!r}: {exc}") from None
        if len(vector) != n:
            raise ServiceError(
                f"scenario {name!r} produced {len(vector)} entries for n={n}"
            )
        if use_cache:
            with self._lock:
                self._cache[key] = vector
                self._cache.move_to_end(key)
                while len(self._cache) > self.max_cached:
                    self._cache.popitem(last=False)
                    self.cache_evictions += 1
        return vector


# ---------------------------------------------------------------------- #
# Built-in realization scenarios (the workloads/ families, named)        #
# ---------------------------------------------------------------------- #


def _regular(n: int, seed: int, degree: int = 4) -> List[int]:
    return regular_sequence(n, degree)


def _random_graphic(n: int, seed: int, p: float = 0.3) -> List[int]:
    return random_graphic_sequence(n, p, seed=seed)


def _power_law(n: int, seed: int, exponent: float = 2.5) -> List[int]:
    return power_law_sequence(n, exponent=exponent, seed=seed)


def _concentrated(n: int, seed: int, k: int = 0) -> List[int]:
    return concentrated_sequence(n, k or max(2, int(n**0.5)), seed=seed)


def _star_like(n: int, seed: int, hubs: int = 2) -> List[int]:
    return star_like_sequence(n, hubs=hubs)


def _near_graphic(n: int, seed: int, p: float = 0.3, bumps: int = 3) -> List[int]:
    return near_graphic_perturbation(
        random_graphic_sequence(n, p, seed=seed), bumps, seed=seed
    )


def _capacity_classes(
    n: int,
    seed: int,
    super_fraction: float = 0.125,
    regular_fraction: float = 0.5,
    super_degree: int = 8,
    regular_degree: int = 4,
    light_degree: int = 2,
) -> List[int]:
    """The motivating P2P workload: capacity-matched degree classes.

    ``super_fraction`` of the peers are supernodes, ``regular_fraction``
    regular peers, and the rest light clients (the split the
    ``examples/p2p_overlay_degrees.py`` walkthrough uses).
    """
    n_super = max(1, int(round(super_fraction * n)))
    n_regular = max(1, int(round(regular_fraction * n)))
    if n_super + n_regular >= n:
        raise ValueError("class fractions leave no room for light clients")
    n_light = n - n_super - n_regular
    return (
        [super_degree] * n_super
        + [regular_degree] * n_regular
        + [light_degree] * n_light
    )


def _tree_random(n: int, seed: int) -> List[int]:
    return random_tree_sequence(n, seed=seed)


def _tree_star(n: int, seed: int) -> List[int]:
    return star_sequence(n)


def _tree_path(n: int, seed: int) -> List[int]:
    return path_sequence(n)


def _tree_caterpillar(n: int, seed: int, spine_degree: int = 4) -> List[int]:
    return caterpillar_sequence(n, spine_degree=spine_degree)


def _tree_balanced(n: int, seed: int, arity: int = 2) -> List[int]:
    return balanced_tree_sequence(n, arity=arity)


def _rho_uniform(n: int, seed: int, value: int = 3) -> List[int]:
    return uniform_rho(n, min(value, n - 1))


def _rho_bimodal(n: int, seed: int, high: int = 6, low: int = 2) -> List[int]:
    return bimodal_rho(n, min(high, n - 1), min(low, n - 1))


def _rho_power_law(n: int, seed: int, max_rho: int = 8) -> List[int]:
    return power_law_rho(n, max_rho, seed=seed)


def _rho_ranked(n: int, seed: int, max_rho: int = 8) -> List[int]:
    return ranked_rho(n, max_rho)


# ---------------------------------------------------------------------- #
# Built-in primitive (profile-only) scenarios — old PROFILE_WORKLOADS    #
# ---------------------------------------------------------------------- #


def _run_sorting(net, n: int, seed: int) -> None:
    import random

    from repro.primitives.protocol import run_protocol
    from repro.primitives.sorting import distributed_sort

    rng = random.Random(seed * 1000 + n)
    table = {v: rng.randrange(n) for v in net.node_ids}
    run_protocol(net, distributed_sort(net, lambda v: table[v]))


def _run_bbst(net, n: int, seed: int) -> None:
    from repro.primitives.bbst import build_bbst
    from repro.primitives.protocol import run_protocol

    run_protocol(net, build_bbst(net))


def _run_collection(net, n: int, seed: int) -> None:
    from repro.primitives.bbst import build_bbst
    from repro.primitives.collection import global_collect
    from repro.primitives.protocol import run_protocol

    k = max(1, n // 4)
    ids = list(net.node_ids)
    holders = {ids[(i * 3) % n]: ((ids[i % n],), (i,)) for i in range(k)}

    def proto():
        ns, root = yield from build_bbst(net)
        yield from global_collect(
            net, ns, list(net.node_ids), root, leader=root, holders=holders
        )

    run_protocol(net, proto())


def default_registry() -> ScenarioRegistry:
    """A fresh registry holding every built-in scenario."""
    registry = ScenarioRegistry()
    for scenario in (
        # Degree-sequence families (Δ regime, √m regime, heavy tails).
        Scenario("regular", "d-regular sequence (Δ << √m regime)",
                 "degree_implicit", build=_regular),
        Scenario("random_graphic", "degree sequence of a G(n,p) draw",
                 "degree_implicit", build=_random_graphic),
        Scenario("power_law", "heavy-tailed sequence with Erdős–Gallai repair",
                 "degree_implicit", build=_power_law),
        Scenario("concentrated", "mass on ~√n nodes (Theorem 20's D* family)",
                 "degree_implicit", build=_concentrated),
        Scenario("star_like", "few high-degree hubs, many leaves (Δ ≈ n)",
                 "degree_implicit", build=_star_like),
        Scenario("capacity_classes", "supernode/regular/light P2P capacity classes",
                 "degree_implicit", build=_capacity_classes),
        Scenario("near_graphic", "perturbed (usually non-graphic) sequence for "
                 "envelope realization", "degree_envelope", build=_near_graphic),
        # Tree-realizable families.
        Scenario("tree_random", "uniform random labeled tree (Prüfer)",
                 "tree", build=_tree_random),
        Scenario("tree_star", "one hub, n-1 leaves (min diameter)",
                 "tree", build=_tree_star),
        Scenario("tree_path", "a path (max diameter)", "tree", build=_tree_path),
        Scenario("tree_caterpillar", "caterpillar with a degree-4 spine",
                 "tree", build=_tree_caterpillar),
        Scenario("tree_balanced", "complete arity-ary tree truncated to n",
                 "tree", build=_tree_balanced),
        # Connectivity threshold vectors.
        Scenario("rho_uniform", "uniform connectivity demands",
                 "connectivity", build=_rho_uniform),
        Scenario("rho_bimodal", "high-demand core, low-demand periphery",
                 "connectivity", build=_rho_bimodal),
        Scenario("rho_power_law", "heavy-tailed connectivity demands",
                 "connectivity", build=_rho_power_law),
        Scenario("rho_ranked", "linearly decaying demands", "connectivity",
                 build=_rho_ranked),
        # Primitive profile workloads (the old PROFILE_WORKLOADS).
        Scenario("sorting", "Theorem 3 distributed mergesort", "primitive",
                 runner=_run_sorting),
        Scenario("bbst", "Theorem 1 BBST construction", "primitive",
                 runner=_run_bbst),
        Scenario("collection", "Theorem 5 global token collection", "primitive",
                 runner=_run_collection),
    ):
        registry.register(scenario)
    return registry


#: The process-wide default registry the CLI and executor use.
DEFAULT_REGISTRY = default_registry()
