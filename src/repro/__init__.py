"""repro — reproduction of *Distributed Graph Realizations* (IPDPS 2020).

A production-grade Python library implementing the paper's full stack:

* :mod:`repro.ncc` — the Node Capacitated Clique model simulator (NCC0 and
  NCC1), with enforced message caps, message sizes and knowledge-gated
  addressing, and full round/message metering;
* :mod:`repro.primitives` — Section 3's structural and computational
  primitives (balanced binary trees, the BBST of Theorem 1, distributed
  mergesort, broadcast/aggregation/collection, butterfly-based group
  primitives);
* :mod:`repro.core` — the paper's contributions: distributed degree
  realization (implicit/explicit/approximate), tree realizations, and
  connectivity-threshold realizations, plus the Section 7 lower bounds;
* :mod:`repro.sequential` — the classical baselines (Erdős–Gallai,
  Havel–Hakimi, greedy trees, Frank–Chou);
* :mod:`repro.workloads`, :mod:`repro.validation`, :mod:`repro.analysis`
  — instance generators, networkx-based independent validation, and
  scaling-fit analysis used by the benchmark harness.

Quickstart::

    from repro import Network, realize_degree_sequence

    net = Network(12)
    result = realize_degree_sequence(net, {v: 3 for v in net.node_ids})
    assert result.realized
    print(result.stats.rounds, "rounds")
"""

from repro.ncc import (
    EnforcementMode,
    Message,
    NCCConfig,
    Network,
    RoundStats,
    Variant,
)
from repro.core import (
    ConnectivityResult,
    RealizationResult,
    TreeResult,
    degree_lower_bounds,
    realize_connectivity_ncc0,
    realize_connectivity_ncc1,
    realize_degree_sequence,
    realize_envelope,
    realize_tree,
)
from repro.sequential import erdos_gallai_check, havel_hakimi, is_graphic

__version__ = "1.0.0"

__all__ = [
    "ConnectivityResult",
    "EnforcementMode",
    "Message",
    "NCCConfig",
    "Network",
    "RealizationResult",
    "RoundStats",
    "TreeResult",
    "Variant",
    "__version__",
    "degree_lower_bounds",
    "erdos_gallai_check",
    "havel_hakimi",
    "is_graphic",
    "realize_connectivity_ncc0",
    "realize_connectivity_ncc1",
    "realize_degree_sequence",
    "realize_envelope",
    "realize_tree",
]
