"""Warm-up balanced binary tree (Section 3.1.1, Figure 1).

The simple recursive construction: on every active path, the head ``r``
adopts its neighbour ``a`` as left child and ``a``'s other neighbour ``b``
as right child, removes itself, and the remaining path splits into the
odd-position path (headed by ``a``) and the even-position path (headed by
``b``).  Paths halve every level, so the recursion — run in parallel on
all active paths — terminates in ``O(log n)`` rounds and yields a binary
tree of height ``O(log n)``.  Unlike the BBST of :mod:`~repro.primitives.bbst`,
the result is *not* a search tree over path positions.

Local state in namespace ``ns``: ``pred``/``succ`` (current-path pointers,
rewired as levels progress), ``parent``, ``left``, ``right``, ``done``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.ncc.errors import ProtocolError
from repro.ncc.message import msg
from repro.ncc.network import Network
from repro.primitives.path_ops import build_undirected_path
from repro.primitives.protocol import Proto, fresh_ns, ns_state, take_one


def build_warmup_binary_tree(net: Network, ns: Optional[str] = None) -> Proto:
    """Protocol: build the Figure-1 balanced binary tree on the Gk path.

    Returns the root's node ID.  Tree pointers land in namespace ``ns``
    (freshly generated when omitted): ``parent``, ``left``, ``right``.
    """
    if ns is None:
        ns = fresh_ns("wbt")
    head = yield from build_undirected_path(net, ns)
    if head is None:
        return None

    for v in net.node_ids:
        state = ns_state(net, v, ns)
        state.setdefault("parent", None)
        state.setdefault("left", None)
        state.setdefault("right", None)
        state["done"] = False

    root = head
    ns_state(net, root, ns)["is_head"] = True
    max_levels = math.ceil(math.log2(max(2, net.n))) + 2

    for _level in range(max_levels):
        active = [v for v in net.node_ids if not ns_state(net, v, ns)["done"]]
        if not active:
            break

        # Round A: grand-neighbour learning on every active path.
        sends = []
        for v in active:
            state = ns_state(net, v, ns)
            pred, succ = state["pred"], state["succ"]
            if pred is not None and succ is not None:
                sends.append((v, succ, msg(f"{ns}:gp", ids=(pred,))))
                sends.append((v, pred, msg(f"{ns}:gs", ids=(succ,))))
            elif pred is not None:
                sends.append((v, pred, msg(f"{ns}:gs", data=(0,))))
            elif succ is not None:
                sends.append((v, succ, msg(f"{ns}:gp", data=(0,))))
        inboxes = yield sends

        for v in active:
            state = ns_state(net, v, ns)
            gp_msg = take_one(inboxes, v, f"{ns}:gp")
            gs_msg = take_one(inboxes, v, f"{ns}:gs")
            state["gpred"] = gp_msg.ids[0] if gp_msg and gp_msg.ids else None
            state["gsucc"] = gs_msg.ids[0] if gs_msg and gs_msg.ids else None

        # Round B: heads adopt and retire; everyone rewires to grand-links.
        sends = []
        for v in active:
            state = ns_state(net, v, ns)
            if not state.get("is_head"):
                continue
            a, b = state["succ"], state.get("gsucc")
            if a is None:
                state["done"] = True  # singleton path: leaf (or lone root)
                continue
            state["left"] = a
            sends.append((v, a, msg(f"{ns}:adopt", data=("L",))))
            if b is not None:
                state["right"] = b
                sends.append((v, b, msg(f"{ns}:adopt", data=("R",))))
            state["done"] = True
        inboxes = yield sends

        for v in active:
            state = ns_state(net, v, ns)
            if state["done"]:
                continue
            adopt = take_one(inboxes, v, f"{ns}:adopt")
            # Rewire to the interleaved sub-path.
            state["pred"] = state.pop("gpred", None)
            state["succ"] = state.pop("gsucc", None)
            if adopt is not None:
                if state["parent"] is not None:
                    raise ProtocolError(f"node {v} adopted twice")
                state["parent"] = adopt.src
                state["pred"] = None  # adopted nodes head their sub-paths
                state["is_head"] = True

    leftovers = [v for v in net.node_ids if not ns_state(net, v, ns)["done"]]
    if leftovers:
        raise ProtocolError(f"warm-up tree did not converge: {leftovers[:5]}")
    return root


def tree_children(net: Network, ns: str, v: int) -> List[int]:
    """Children of ``v`` in the tree namespace (validation helper)."""
    state = ns_state(net, v, ns)
    return [c for c in (state.get("left"), state.get("right")) if c is not None]


def tree_height(net: Network, ns: str, root: int) -> int:
    """Height of the tree under ``root`` (validation helper)."""
    depth = {root: 0}
    stack = [root]
    best = 0
    while stack:
        v = stack.pop()
        for c in tree_children(net, ns, v):
            depth[c] = depth[v] + 1
            best = max(best, depth[c])
            stack.append(c)
    return best


def tree_nodes(net: Network, ns: str, root: int) -> List[int]:
    """All nodes reachable from ``root`` via child pointers."""
    out = []
    stack = [root]
    seen = set()
    while stack:
        v = stack.pop()
        if v in seen:
            raise ProtocolError(f"cycle in tree namespace {ns!r} at {v}")
        seen.add(v)
        out.append(v)
        stack.extend(tree_children(net, ns, v))
    return out
