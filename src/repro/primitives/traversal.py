"""Generic tree protocols: sizes, inorder positions, median (Corollary 2).

These operate on any tree namespace with ``parent``/``left``/``right``
pointers (the BBST of Theorem 1 or the warm-up tree) and provide the
position machinery of Corollary 2:

* :func:`compute_subtree_sizes` — bottom-up convergecast; ``O(height)``
  rounds; every node learns its own and its children's subtree sizes.
* :func:`annotate_positions` — top-down pass assigning each node its
  0-based **inorder position** (== position in the original path, since
  the BBST's inorder traversal is the path) plus its subtree's position
  range ``[lo, hi]`` and the total member count.
* :func:`annotate_index` — the two passes above folded into one call
  with a single member-state resolution (the mergesort's per-merge hot
  path).
* :func:`find_median` — the median-position node reports its ID up to the
  root, which floods it back down; ``O(height)`` rounds (Corollary 2's
  "median address becomes common knowledge").
* :func:`broadcast_from_root` / :func:`report_to_root` — reusable
  downward flood / upward escalation along tree edges.

Implementation note: the round loops here are driven by the *receivers*
of each round's inboxes rather than by a full member scan — a size
convergecast over ``m`` members costs ``O(m)`` message handling total
instead of ``O(m * height)`` scanning.  Wherever handling order feeds a
later send loop, receivers are re-sorted into member order first, so the
emitted message stream is byte-identical to the member-scan formulation
(the determinism suites pin this down).
"""

from __future__ import annotations

import sys
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.ncc.errors import ProtocolError
from repro.ncc.message import Message, msg
from repro.ncc.network import Network
from repro.primitives.protocol import Proto, ns_state, ns_states, take_one


def _children(net: Network, ns: str, v: int) -> List[int]:
    state = ns_state(net, v, ns)
    return [c for c in (state.get("left"), state.get("right")) if c is not None]


def _sizes_pass(net: Network, ns: str, states, index_of) -> Proto:
    """Protocol: the bottom-up size convergecast over pre-resolved states.

    Single copy of the algorithm, shared by :func:`compute_subtree_sizes`
    and :func:`annotate_index`.  ``states`` must hold every member's
    state dict in member order with the tree pointers
    (``parent``/``left``/``right``) present; after completion every node
    knows ``size``, ``lsize`` and ``rsize``.  Only each round's actual
    receivers are handled; completions are re-sorted into member order
    so the next round's sends are emitted in the canonical order.
    """
    size_tag = sys.intern(f"{ns}:size")
    states_get = states.get
    new_message = Message.__new__
    pending: Dict[int, int] = {}
    ready: List[int] = []
    for v, state in states.items():  # member order
        state["lsize"] = 0
        state["rsize"] = 0
        kids = 0 if state["left"] is None else 1
        if state["right"] is not None:
            kids += 1
        pending[v] = kids
        if not kids:
            state["size"] = 1
            ready.append(v)

    total_members = len(states)
    reported = 0
    guard = 0
    while reported < total_members:
        sends = []
        for v in ready:
            state = states[v]
            parent = state["parent"]
            reported += 1
            if parent is not None:
                shell = new_message(Message)
                inner = shell.__dict__
                inner["kind"] = size_tag
                inner["ids"] = ()
                inner["data"] = (state["size"],)
                inner["src"] = -1
                sends.append((v, parent, shell))
        ready = []
        if reported >= total_members and not sends:
            break
        inboxes = yield sends
        for dst, box in inboxes.items():
            state = states_get(dst)
            if state is None:
                continue
            for report in box:
                if report.kind != size_tag:
                    continue
                (size,) = report.data
                # The receiving parent tells sides apart by comparing the
                # sender against its own child pointers (local knowledge).
                if state["left"] == report.src:
                    state["lsize"] = size
                else:
                    state["rsize"] = size
                left = pending[dst] - 1
                pending[dst] = left
                if left == 0:
                    state["size"] = 1 + state["lsize"] + state["rsize"]
                    ready.append(dst)
        if len(ready) > 1:
            ready.sort(key=index_of)
        guard += 1
        if guard > 4 * total_members + 8:
            raise ProtocolError("size convergecast failed to converge")
    return None


def _positions_pass(net: Network, ns: str, states, index_of, root: int) -> Proto:
    """Protocol: the top-down position flood over pre-resolved states.

    Single copy of the algorithm, shared by :func:`annotate_positions`
    and :func:`annotate_index`; requires sizes.  Returns the member
    total.  A node receiving two base messages in one round is a
    protocol-invariant violation and raises.
    """
    total = states[root].get("size")
    if total is None:
        raise ProtocolError("annotate_positions requires compute_subtree_sizes")
    base_tag = sys.intern(f"{ns}:base")
    states_get = states.get
    new_message = Message.__new__

    root_state = states[root]
    root_state["pos"] = root_state["lsize"]
    root_state["range"] = (0, total - 1)
    root_state["total"] = total
    frontier = [root]
    while frontier:
        sends = []
        for v in frontier:
            state = states[v]
            base = state["range"][0]
            left, right = state["left"], state["right"]
            if left is not None:
                shell = new_message(Message)
                inner = shell.__dict__
                inner["kind"] = base_tag
                inner["ids"] = ()
                inner["data"] = (base, total)
                inner["src"] = -1
                sends.append((v, left, shell))
            if right is not None:
                shell = new_message(Message)
                inner = shell.__dict__
                inner["kind"] = base_tag
                inner["ids"] = ()
                inner["data"] = (state["pos"] + 1, total)
                inner["src"] = -1
                sends.append((v, right, shell))
        if not sends:
            break
        inboxes = yield sends
        frontier = []
        for dst, box in inboxes.items():
            state = states_get(dst)
            if state is None:
                continue
            hit = None
            for base_msg in box:
                if base_msg.kind == base_tag:
                    if hit is not None:
                        raise ProtocolError(
                            f"node {dst} expected at most one {base_tag!r}"
                        )
                    hit = base_msg
            if hit is not None:
                base = hit.data[0]
                state["pos"] = base + state["lsize"]
                state["range"] = (base, base + state["size"] - 1)
                state["total"] = total
                frontier.append(dst)
        if len(frontier) > 1:
            frontier.sort(key=index_of)
    return total


def _member_index_of(members: Sequence[int]):
    return {v: i for i, v in enumerate(members)}.__getitem__


def compute_subtree_sizes(
    net: Network,
    ns: str,
    members: Sequence[int],
    _states: Optional[Dict[int, Dict[str, Any]]] = None,
) -> Proto:
    """Protocol: every node learns ``size`` (its subtree), ``lsize``, ``rsize``.

    The tree pointers (``parent``/``left``/``right``) must be present on
    every member (all tree builders in this repo pre-seed them).
    """
    states = _states if _states is not None else ns_states(net, members, ns)
    yield from _sizes_pass(net, ns, states, _member_index_of(members))
    return None


def annotate_positions(
    net: Network,
    ns: str,
    members: Sequence[int],
    root: int,
    _states: Optional[Dict[int, Dict[str, Any]]] = None,
) -> Proto:
    """Protocol: assign 0-based inorder positions; requires sizes first.

    After completion each node holds ``pos`` (its inorder position),
    ``range`` == ``(lo, hi)`` (its subtree's position span, inclusive)
    and ``total`` (member count).  ``O(height)`` rounds.
    """
    states = _states if _states is not None else ns_states(net, members, ns)
    total = yield from _positions_pass(
        net, ns, states, _member_index_of(members), root
    )
    return total


def annotate_index(
    net: Network,
    ns: str,
    members: Sequence[int],
    root: int,
    _states=None,
    _member_index=None,
) -> Proto:
    """Protocol: subtree sizes + inorder positions, folded into one call.

    One member-state resolution and one member-index build drive both
    the bottom-up size convergecast and the top-down position flood —
    the messages sent and rounds charged are exactly those of
    :func:`compute_subtree_sizes` followed by :func:`annotate_positions`.
    This is the per-merge-level hot path of the Theorem-3 sort.
    """
    states = _states if _states is not None else ns_states(net, members, ns)
    member_index = (
        _member_index
        if _member_index is not None
        else {v: i for i, v in enumerate(members)}
    )
    index_of = member_index.__getitem__
    yield from _sizes_pass(net, ns, states, index_of)
    total = yield from _positions_pass(net, ns, states, index_of, root)
    return total


def broadcast_from_root(
    net: Network,
    ns: str,
    members: Sequence[int],
    root: int,
    key: str,
    value: Tuple,
    value_ids: Tuple[int, ...] = (),
) -> Proto:
    """Protocol: flood ``(value_ids, value)`` from ``root`` down tree edges.

    Every member ends with ``state[key] = (value_ids, value)``.
    ``O(height)`` rounds.
    """
    states = ns_states(net, members, ns)
    member_index = {v: i for i, v in enumerate(members)}
    states[root][key] = (tuple(value_ids), tuple(value))
    frontier = [root]
    tag = sys.intern(f"{ns}:bc:{key}")
    while frontier:
        sends = []
        for v in frontier:
            state = states[v]
            ids_part, data_part = state[key]
            left, right = state.get("left"), state.get("right")
            if left is not None:
                sends.append((v, left, msg(tag, ids=ids_part, data=data_part)))
            if right is not None:
                sends.append((v, right, msg(tag, ids=ids_part, data=data_part)))
        if not sends:
            break
        inboxes = yield sends
        frontier = []
        states_get = states.get
        for dst, box in inboxes.items():
            state = states_get(dst)
            if state is None:
                continue
            hit = None
            for message in box:
                if message.kind == tag:
                    if hit is not None:
                        raise ProtocolError(
                            f"node {dst} expected at most one {tag!r}"
                        )
                    hit = message
            if hit is not None:
                state[key] = (hit.ids, hit.data)
                frontier.append(dst)
        if len(frontier) > 1:
            frontier.sort(key=member_index.__getitem__)
    return None


def report_to_root(
    net: Network,
    ns: str,
    members: Sequence[int],
    root: int,
    matches: Callable[[int], bool],
    payload: Callable[[int], Tuple[Tuple[int, ...], Tuple]],
) -> Proto:
    """Protocol: the unique node matching ``matches`` escalates a payload
    to the root along parent pointers.  Returns ``(ids, data)`` at root.

    ``O(height)`` rounds; raises if zero or multiple nodes match.
    """
    sources = [v for v in members if matches(v)]
    if len(sources) != 1:
        raise ProtocolError(f"report_to_root expects 1 match, found {len(sources)}")
    source = sources[0]
    tag = f"{ns}:up"
    ids_part, data_part = payload(source)
    if source == root:
        return ids_part, data_part
    carrier = source
    content = (ids_part, data_part)
    guard = 0
    while carrier != root:
        parent = ns_state(net, carrier, ns).get("parent")
        if parent is None:
            raise ProtocolError(f"node {carrier} has no parent on path to root")
        inboxes = yield [(carrier, parent, msg(tag, ids=content[0], data=content[1]))]
        arrived = take_one(inboxes, parent, tag)
        if arrived is None:
            raise ProtocolError("escalation message lost")
        carrier = parent
        content = (arrived.ids, arrived.data)
        guard += 1
        if guard > len(members) + 2:
            raise ProtocolError("escalation failed to reach root")
    return content


def find_median(net: Network, ns: str, members: Sequence[int], root: int) -> Proto:
    """Protocol: make the median node's ID common knowledge (Corollary 2).

    Requires sizes + positions.  Returns the median node's ID; every
    member also stores it under ``median``.
    """
    total = ns_state(net, root, ns)["total"]
    target = (total - 1) // 2

    ids_part, _ = yield from report_to_root(
        net,
        ns,
        members,
        root,
        matches=lambda v: ns_state(net, v, ns).get("pos") == target,
        payload=lambda v: ((v,), ()),
    )
    median = ids_part[0]
    yield from broadcast_from_root(
        net, ns, members, root, key="median_pack", value=(), value_ids=(median,)
    )
    for v in members:
        state = ns_state(net, v, ns)
        state["median"] = state["median_pack"][0][0]
    return median


def node_at_position(net: Network, ns: str, members: Sequence[int], position: int) -> int:
    """Orchestration helper (no rounds): member whose ``pos`` equals ``position``."""
    for v in members:
        if ns_state(net, v, ns).get("pos") == position:
            return v
    raise KeyError(f"no member at position {position}")
