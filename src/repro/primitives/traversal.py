"""Generic tree protocols: sizes, inorder positions, median (Corollary 2).

These operate on any tree namespace with ``parent``/``left``/``right``
pointers (the BBST of Theorem 1 or the warm-up tree) and provide the
position machinery of Corollary 2:

* :func:`compute_subtree_sizes` — bottom-up convergecast; ``O(height)``
  rounds; every node learns its own and its children's subtree sizes.
* :func:`annotate_positions` — top-down pass assigning each node its
  0-based **inorder position** (== position in the original path, since
  the BBST's inorder traversal is the path) plus its subtree's position
  range ``[lo, hi]`` and the total member count.
* :func:`find_median` — the median-position node reports its ID up to the
  root, which floods it back down; ``O(height)`` rounds (Corollary 2's
  "median address becomes common knowledge").
* :func:`broadcast_from_root` / :func:`report_to_root` — reusable
  downward flood / upward escalation along tree edges.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.ncc.errors import ProtocolError
from repro.ncc.message import msg
from repro.ncc.network import Network
from repro.primitives.protocol import Proto, ns_state, take, take_one


def _children(net: Network, ns: str, v: int) -> List[int]:
    state = ns_state(net, v, ns)
    return [c for c in (state.get("left"), state.get("right")) if c is not None]


def compute_subtree_sizes(net: Network, ns: str, members: Sequence[int]) -> Proto:
    """Protocol: every node learns ``size`` (its subtree), ``lsize``, ``rsize``."""
    pending = {}
    ready: List[int] = []
    for v in members:
        state = ns_state(net, v, ns)
        state["lsize"] = 0
        state["rsize"] = 0
        kids = _children(net, ns, v)
        pending[v] = len(kids)
        if not kids:
            state["size"] = 1
            ready.append(v)

    reported = 0
    guard = 0
    while reported < len(members):
        sends = []
        for v in ready:
            state = ns_state(net, v, ns)
            parent = state.get("parent")
            reported += 1
            if parent is not None:
                sends.append((v, parent, msg(f"{ns}:size", data=(state["size"],))))
        ready = []
        if reported >= len(members) and not sends:
            break
        inboxes = yield sends
        for v in members:
            for report in take(inboxes, v, f"{ns}:size"):
                state = ns_state(net, v, ns)
                (size,) = report.data
                # The receiving parent tells sides apart by comparing the
                # sender against its own child pointers (local knowledge).
                if state.get("left") == report.src:
                    state["lsize"] = size
                else:
                    state["rsize"] = size
                pending[v] -= 1
                if pending[v] == 0:
                    state["size"] = 1 + state["lsize"] + state["rsize"]
                    ready.append(v)
        guard += 1
        if guard > 4 * len(members) + 8:
            raise ProtocolError("size convergecast failed to converge")
    return None


def annotate_positions(
    net: Network, ns: str, members: Sequence[int], root: int
) -> Proto:
    """Protocol: assign 0-based inorder positions; requires sizes first.

    After completion each node holds ``pos`` (its inorder position),
    ``range`` == ``(lo, hi)`` (its subtree's position span, inclusive)
    and ``total`` (member count).  ``O(height)`` rounds.
    """
    total = ns_state(net, root, ns).get("size")
    if total is None:
        raise ProtocolError("annotate_positions requires compute_subtree_sizes")

    def settle(v: int, base: int) -> None:
        state = ns_state(net, v, ns)
        state["pos"] = base + state["lsize"]
        state["range"] = (base, base + state["size"] - 1)
        state["total"] = total

    settle(root, 0)
    frontier = [root]
    while frontier:
        sends = []
        for v in frontier:
            state = ns_state(net, v, ns)
            base, _hi = state["range"]
            left, right = state.get("left"), state.get("right")
            if left is not None:
                sends.append((v, left, msg(f"{ns}:base", data=(base, total))))
            if right is not None:
                sends.append(
                    (v, right, msg(f"{ns}:base", data=(state["pos"] + 1, total)))
                )
        if not sends:
            break
        inboxes = yield sends
        next_frontier = []
        for v in members:
            base_msg = take_one(inboxes, v, f"{ns}:base")
            if base_msg is not None:
                settle(v, base_msg.data[0])
                next_frontier.append(v)
        frontier = next_frontier
    return total


def broadcast_from_root(
    net: Network,
    ns: str,
    members: Sequence[int],
    root: int,
    key: str,
    value: Tuple,
    value_ids: Tuple[int, ...] = (),
) -> Proto:
    """Protocol: flood ``(value_ids, value)`` from ``root`` down tree edges.

    Every member ends with ``state[key] = (value_ids, value)``.
    ``O(height)`` rounds.
    """
    ns_state(net, root, ns)[key] = (tuple(value_ids), tuple(value))
    frontier = [root]
    tag = f"{ns}:bc:{key}"
    while frontier:
        sends = []
        for v in frontier:
            ids_part, data_part = ns_state(net, v, ns)[key]
            for child in _children(net, ns, v):
                sends.append((v, child, msg(tag, ids=ids_part, data=data_part)))
        if not sends:
            break
        inboxes = yield sends
        frontier = []
        for v in members:
            hit = take_one(inboxes, v, tag)
            if hit is not None:
                ns_state(net, v, ns)[key] = (hit.ids, hit.data)
                frontier.append(v)
    return None


def report_to_root(
    net: Network,
    ns: str,
    members: Sequence[int],
    root: int,
    matches: Callable[[int], bool],
    payload: Callable[[int], Tuple[Tuple[int, ...], Tuple]],
) -> Proto:
    """Protocol: the unique node matching ``matches`` escalates a payload
    to the root along parent pointers.  Returns ``(ids, data)`` at root.

    ``O(height)`` rounds; raises if zero or multiple nodes match.
    """
    sources = [v for v in members if matches(v)]
    if len(sources) != 1:
        raise ProtocolError(f"report_to_root expects 1 match, found {len(sources)}")
    source = sources[0]
    tag = f"{ns}:up"
    ids_part, data_part = payload(source)
    if source == root:
        return ids_part, data_part
    carrier = source
    content = (ids_part, data_part)
    guard = 0
    while carrier != root:
        parent = ns_state(net, carrier, ns).get("parent")
        if parent is None:
            raise ProtocolError(f"node {carrier} has no parent on path to root")
        inboxes = yield [(carrier, parent, msg(tag, ids=content[0], data=content[1]))]
        arrived = take_one(inboxes, parent, tag)
        if arrived is None:
            raise ProtocolError("escalation message lost")
        carrier = parent
        content = (arrived.ids, arrived.data)
        guard += 1
        if guard > len(members) + 2:
            raise ProtocolError("escalation failed to reach root")
    return content


def find_median(net: Network, ns: str, members: Sequence[int], root: int) -> Proto:
    """Protocol: make the median node's ID common knowledge (Corollary 2).

    Requires sizes + positions.  Returns the median node's ID; every
    member also stores it under ``median``.
    """
    total = ns_state(net, root, ns)["total"]
    target = (total - 1) // 2

    ids_part, _ = yield from report_to_root(
        net,
        ns,
        members,
        root,
        matches=lambda v: ns_state(net, v, ns).get("pos") == target,
        payload=lambda v: ((v,), ()),
    )
    median = ids_part[0]
    yield from broadcast_from_root(
        net, ns, members, root, key="median_pack", value=(), value_ids=(median,)
    )
    for v in members:
        state = ns_state(net, v, ns)
        state["median"] = state["median_pack"][0][0]
    return median


def node_at_position(net: Network, ns: str, members: Sequence[int], position: int) -> int:
    """Orchestration helper (no rounds): member whose ``pos`` equals ``position``."""
    for v in members:
        if ns_state(net, v, ns).get("pos") == position:
            return v
    raise KeyError(f"no member at position {position}")
