"""Generator-based protocol engine with structured concurrency.

Distributed protocols are written as Python generators.  Each ``yield``
marks one synchronous NCC round:

* yielding a **list of sends** ``[(src, dst, Message), ...]`` submits those
  messages for the round and resumes, after delivery, with the round's
  inbox dict ``{node_id: [Message, ...]}`` (shared by all concurrent
  tasks — tasks look up only the nodes they drive);
* yielding :class:`Fork` runs child generators **concurrently** with each
  other and with every other active task; the parent resumes with the
  list of child results once all children finish.  Forking does not by
  itself consume a round — children start emitting sends in the very round
  the parent forked;
* sequential composition is plain ``yield from``.

The :class:`Scheduler` trampolines all tasks: per iteration it advances
every runnable task until each is parked on a round barrier, merges all
their sends into one :class:`~repro.ncc.network.RoundPlan`, delivers it
(**one** simulated round), and redistributes the inboxes.  Concurrent
sub-protocols therefore *share* rounds, which is exactly what the paper's
"in parallel" steps require for round counts to be meaningful.

Message namespacing: concurrent protocol instances tag their message
``kind`` as ``"<ns>:<tag>"`` and filter inboxes with :func:`take`.  The
namespace plays the role of the constant-size protocol/group header the
paper's primitives assume.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.ncc.errors import ProtocolError
from repro.ncc.message import Message
from repro.ncc.network import Network

Send = Tuple[int, int, Message]
Inboxes = Dict[int, List[Message]]
Proto = Generator  # Generator[list[Send] | Fork, Inboxes | list, Any]


@dataclass
class Fork:
    """Run ``children`` concurrently; parent resumes with their results."""

    children: Sequence[Proto]


class _Task:
    """Scheduler-internal task record."""

    __slots__ = (
        "gen",
        "status",
        "resume_value",
        "parent",
        "pending_children",
        "child_slot",
        "result",
    )

    READY = 0
    WAITING_ROUND = 1
    BLOCKED = 2
    DONE = 3

    def __init__(self, gen: Proto, parent: Optional["_Task"], child_slot: int) -> None:
        self.gen = gen
        self.status = _Task.READY
        self.resume_value: Any = None
        self.parent = parent
        self.pending_children = 0
        self.child_slot = child_slot
        self.result: Any = None


class Scheduler:
    """Trampoline for concurrent protocol generators on one network."""

    def __init__(self, net: Network, max_rounds: int = 10_000_000) -> None:
        self.net = net
        self.max_rounds = max_rounds

    def run(self, *gens: Proto) -> List[Any]:
        """Run the given protocol generators to completion concurrently.

        Returns their results in order.  Raises
        :class:`~repro.ncc.errors.ProtocolError` on deadlock (no task can
        advance but not all are done) or round-budget exhaustion.
        """
        roots = [_Task(g, parent=None, child_slot=i) for i, g in enumerate(gens)]
        tasks: List[_Task] = list(roots)
        ready: List[_Task] = list(roots)
        waiting: List[_Task] = []
        rounds_used = 0

        def finish(task: _Task, value: Any) -> None:
            task.status = _Task.DONE
            task.result = value
            parent = task.parent
            if parent is not None:
                parent.pending_children -= 1
                if parent.pending_children == 0:
                    results = parent.resume_value  # list being filled
                    parent.resume_value = results
                    parent.status = _Task.READY
                    ready.append(parent)

        while True:
            # Advance every ready task to its next barrier.
            pending_sends: List[Send] = []
            while ready:
                task = ready.pop()
                if task.status != _Task.READY:
                    continue
                try:
                    yielded = task.gen.send(task.resume_value)
                except StopIteration as stop:
                    value = stop.value
                    if task.parent is not None:
                        task.parent.resume_value[task.child_slot] = value
                    finish(task, value)
                    continue
                task.resume_value = None
                if isinstance(yielded, Fork):
                    children = list(yielded.children)
                    if not children:
                        task.resume_value = []
                        ready.append(task)
                        continue
                    task.status = _Task.BLOCKED
                    task.pending_children = len(children)
                    task.resume_value = [None] * len(children)
                    for slot, child_gen in enumerate(children):
                        child = _Task(child_gen, parent=task, child_slot=slot)
                        tasks.append(child)
                        ready.append(child)
                elif isinstance(yielded, (list, tuple)):
                    pending_sends.extend(yielded)
                    task.status = _Task.WAITING_ROUND
                    waiting.append(task)
                else:
                    raise ProtocolError(
                        f"protocol yielded {type(yielded).__name__}; expected "
                        "a list of sends or a Fork"
                    )

            if all(t.status == _Task.DONE for t in tasks):
                break
            if not waiting:
                raise ProtocolError("protocol deadlock: no task can advance")

            plan = self.net.plan()
            for src, dst, message in pending_sends:
                plan.send(src, dst, message)
            inboxes = self.net.deliver(plan)
            rounds_used += 1
            if rounds_used > self.max_rounds:
                raise ProtocolError(
                    f"protocol exceeded round budget of {self.max_rounds}"
                )
            for task in waiting:
                task.status = _Task.READY
                task.resume_value = inboxes
                ready.append(task)
            waiting = []

        return [t.result for t in roots]


def run_protocol(net: Network, gen: Proto, max_rounds: int = 10_000_000) -> Any:
    """Run a single protocol generator to completion and return its result."""
    return Scheduler(net, max_rounds=max_rounds).run(gen)[0]


# ---------------------------------------------------------------------- #
# Helpers shared by protocol implementations                             #
# ---------------------------------------------------------------------- #

_ns_counter = itertools.count()


def fresh_ns(prefix: str) -> str:
    """A short unique namespace for one protocol instance's messages."""
    return f"{prefix}{next(_ns_counter)}"


def take(inboxes: Inboxes, node: int, kind: str) -> List[Message]:
    """Messages of exactly ``kind`` delivered to ``node`` this round."""
    return [m for m in inboxes.get(node, ()) if m.kind == kind]


def take_one(inboxes: Inboxes, node: int, kind: str) -> Optional[Message]:
    """The unique ``kind`` message at ``node`` this round, or ``None``.

    Raises :class:`~repro.ncc.errors.ProtocolError` if more than one
    arrives — useful to assert protocol invariants.
    """
    found = take(inboxes, node, kind)
    if not found:
        return None
    if len(found) > 1:
        raise ProtocolError(
            f"node {node} expected at most one {kind!r}, got {len(found)}"
        )
    return found[0]


def ns_state(net: Network, node: int, ns: str) -> Dict[str, Any]:
    """The node-local state dict for protocol namespace ``ns``."""
    return net.mem[node].setdefault(ns, {})


def idle(rounds: int) -> Proto:
    """A protocol that does nothing for ``rounds`` rounds (barrier filler)."""
    for _ in range(rounds):
        yield []
    return None
