"""Generator-based protocol engine with structured concurrency.

Distributed protocols are written as Python generators.  Each ``yield``
marks one synchronous NCC round:

* yielding a **list of sends** ``[(src, dst, Message), ...]`` submits those
  messages for the round and resumes, after delivery, with the round's
  inbox view ``{node_id: [Message, ...]}`` (shared by all concurrent
  tasks — tasks look up only the nodes they drive);
* yielding :class:`Fork` runs child generators **concurrently** with each
  other and with every other active task; the parent resumes with the
  list of child results once all children finish.  Forking does not by
  itself consume a round — children start emitting sends in the very round
  the parent forked;
* sequential composition is plain ``yield from``.

The :class:`Scheduler` trampolines all tasks: per iteration it advances
every runnable task until each is parked on a round barrier, merges all
their sends into one :class:`~repro.ncc.network.RoundPlan`, delivers it
(**one** simulated round), and redistributes the inboxes.  Concurrent
sub-protocols therefore *share* rounds, which is exactly what the paper's
"in parallel" steps require for round counts to be meaningful.

The trampoline is the hottest loop in a full-fidelity run, so it is
written for throughput: live tasks are counted instead of scanned, the
ready/waiting queues are reused across rounds, completed tasks are
dropped immediately (a long-lived scheduler holds only live tasks), and
each round's inboxes are handed to tasks as an :class:`InboxView` — a
dict with a lazy per-node, per-``kind`` index that :func:`take` /
:func:`take_one` use instead of re-scanning inbox lists at every call
site.  None of this changes observable behaviour: the task advancement
order, the per-round send order, and every metric are identical to a
naive trampoline (the determinism suite enforces this).

Message namespacing: concurrent protocol instances tag their message
``kind`` as ``"<ns>:<tag>"`` and filter inboxes with :func:`take`.  The
namespace plays the role of the constant-size protocol/group header the
paper's primitives assume.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Generator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.ncc.errors import ProtocolError
from repro.ncc.message import Message
from repro.ncc.network import Network
from repro.ncc.wire import ColumnarInbox

Send = Tuple[int, int, Message]
Inboxes = Dict[int, List[Message]]
Proto = Generator  # Generator[list[Send] | Fork, Inboxes | list, Any]


@dataclass
class Fork:
    """Run ``children`` concurrently; parent resumes with their results."""

    children: Sequence[Proto]


class InboxView(dict):
    """One round's inboxes, with a lazy per-node ``kind`` index.

    Behaves exactly like the plain ``{node_id: [Message, ...]}`` dict the
    engines produce (protocols index and ``.get`` it directly), but the
    first :func:`take`/:func:`take_one` at a node builds that node's
    ``{kind: [messages]}`` index once, so every subsequent filter at the
    node is two dict lookups instead of a list scan.  The view is shared
    by all tasks parked on the same round barrier, so the index is built
    at most once per (node, round) no matter how many protocols poll it.
    """

    __slots__ = ("_by_kind",)

    def __init__(self, inboxes=()) -> None:
        dict.__init__(self, inboxes)
        self._by_kind: Dict[int, Dict[str, List[Message]]] = {}

    def kind_index(self, node: int) -> Dict[str, List[Message]]:
        """The node's ``{kind: [messages]}`` map (built on first use).

        A columnar box (:class:`~repro.ncc.wire.ColumnarInbox` in field
        mode) splits by kind on its *columns* instead — pure int work,
        yielding lazy per-kind sub-views — so taking one kind at a node
        materialises only that kind's messages and everything untaken
        stays columnar.
        """
        index = self._by_kind.get(node)
        if index is None:
            box = dict.get(self, node)
            if (
                box is not None
                and box.__class__ is ColumnarInbox
                and box._forced is None
                and box._batch.kinds is not None
            ):
                index = box.kind_views()
            else:
                index = {}
                if box:
                    index_get = index.get
                    for message in box:
                        kind = message.kind
                        bucket = index_get(kind)
                        if bucket is None:
                            index[kind] = [message]
                        else:
                            bucket.append(message)
            self._by_kind[node] = index
        return index


class _Task:
    """Scheduler-internal task record."""

    __slots__ = (
        "gen",
        "status",
        "resume_value",
        "parent",
        "pending_children",
        "child_slot",
        "result",
    )

    READY = 0
    WAITING_ROUND = 1
    BLOCKED = 2
    DONE = 3

    def __init__(self, gen: Proto, parent: Optional["_Task"], child_slot: int) -> None:
        self.gen = gen
        self.status = _Task.READY
        self.resume_value: Any = None
        self.parent = parent
        self.pending_children = 0
        self.child_slot = child_slot
        self.result: Any = None


class Scheduler:
    """Trampoline for concurrent protocol generators on one network."""

    def __init__(self, net: Network, max_rounds: int = 10_000_000) -> None:
        self.net = net
        self.max_rounds = max_rounds

    def run(self, *gens: Proto) -> List[Any]:
        """Run the given protocol generators to completion concurrently.

        Returns their results in order.  Raises
        :class:`~repro.ncc.errors.ProtocolError` on deadlock (no task can
        advance but not all are done) or round-budget exhaustion.

        Only live tasks are retained: a completed task is unlinked as
        soon as it finishes, so arbitrarily long-running schedulers do
        not accumulate task records.  ``live`` counts non-DONE tasks so
        termination is an O(1) check per iteration instead of a scan.
        """
        roots = [_Task(g, parent=None, child_slot=i) for i, g in enumerate(gens)]
        # The ready stack is LIFO (pop from the tail): children pushed by
        # a fork advance before their siblings' elders, which defines the
        # canonical send order every determinism check pins down.
        ready: List[_Task] = list(roots)
        waiting: List[_Task] = []
        live = len(roots)
        rounds_used = 0
        net = self.net
        max_rounds = self.max_rounds

        READY = _Task.READY
        WAITING_ROUND = _Task.WAITING_ROUND
        BLOCKED = _Task.BLOCKED
        DONE = _Task.DONE
        ready_pop = ready.pop
        ready_append = ready.append
        waiting_append = waiting.append

        while True:
            # Advance every ready task to its next barrier.
            pending_sends: List[Send] = []
            extend_sends = pending_sends.extend
            while ready:
                task = ready_pop()
                if task.status != READY:
                    continue
                try:
                    yielded = task.gen.send(task.resume_value)
                except StopIteration as stop:
                    value = stop.value
                    task.status = DONE
                    task.result = value
                    live -= 1
                    parent = task.parent
                    if parent is not None:
                        parent.resume_value[task.child_slot] = value
                        parent.pending_children -= 1
                        if parent.pending_children == 0:
                            parent.status = READY
                            ready_append(parent)
                        task.parent = None  # unlink: nothing retains the task
                    continue
                task.resume_value = None
                # Dispatch on the yield: one identity check settles the
                # overwhelmingly common case (a plain list of sends);
                # forks and exotic list/tuple subclasses fall through to
                # isinstance exactly once each.
                if yielded.__class__ is list:
                    if yielded:
                        extend_sends(yielded)
                    task.status = WAITING_ROUND
                    waiting_append(task)
                elif isinstance(yielded, Fork):
                    children = list(yielded.children)
                    if not children:
                        task.resume_value = []
                        ready_append(task)
                        continue
                    task.status = BLOCKED
                    task.pending_children = len(children)
                    task.resume_value = [None] * len(children)
                    live += len(children)
                    for slot, child_gen in enumerate(children):
                        ready_append(_Task(child_gen, parent=task, child_slot=slot))
                    # Drop the loop locals' references: otherwise the
                    # last fork's child generators stay pinned in this
                    # frame for the scheduler's whole remaining lifetime.
                    children = child_gen = yielded = None
                elif isinstance(yielded, (list, tuple)):
                    if yielded:
                        extend_sends(yielded)
                    task.status = WAITING_ROUND
                    waiting_append(task)
                else:
                    raise ProtocolError(
                        f"protocol yielded {type(yielded).__name__}; expected "
                        "a list of sends or a Fork"
                    )

            if live == 0:
                break
            if not waiting:
                raise ProtocolError("protocol deadlock: no task can advance")

            plan = net.plan()
            plan._sends = pending_sends
            inboxes = net.deliver(plan)
            rounds_used += 1
            if rounds_used > max_rounds:
                raise ProtocolError(
                    f"protocol exceeded round budget of {max_rounds}"
                )
            view = InboxView(inboxes)
            for task in waiting:
                task.status = READY
                task.resume_value = view
                ready_append(task)
            waiting.clear()

        return [t.result for t in roots]


def run_protocol(net: Network, gen: Proto, max_rounds: int = 10_000_000) -> Any:
    """Run a single protocol generator to completion and return its result."""
    return Scheduler(net, max_rounds=max_rounds).run(gen)[0]


# ---------------------------------------------------------------------- #
# Helpers shared by protocol implementations                             #
# ---------------------------------------------------------------------- #

_ns_counter = itertools.count()

#: Shared empty result for kind-filters that match nothing.  Callers
#: treat `take` results as read-only (iterate/index/concatenate); never
#: mutate this list.
_NO_MESSAGES: List[Message] = []


def fresh_ns(prefix: str) -> str:
    """A short unique namespace for one protocol instance's messages."""
    return f"{prefix}{next(_ns_counter)}"


def take(inboxes: Inboxes, node: int, kind: str) -> List[Message]:
    """Messages of exactly ``kind`` delivered to ``node`` this round.

    The returned list is read-only (it may be shared by the round's
    :class:`InboxView` index or by other callers).
    """
    if inboxes.__class__ is InboxView:
        index = inboxes._by_kind.get(node)
        if index is None:
            index = inboxes.kind_index(node)
        hit = index.get(kind)
        return hit if hit is not None else _NO_MESSAGES
    return [m for m in inboxes.get(node, ()) if m.kind == kind]


def take_one(inboxes: Inboxes, node: int, kind: str) -> Optional[Message]:
    """The unique ``kind`` message at ``node`` this round, or ``None``.

    Raises :class:`~repro.ncc.errors.ProtocolError` if more than one
    arrives — useful to assert protocol invariants.
    """
    found = take(inboxes, node, kind)
    if not found:
        return None
    if len(found) > 1:
        raise ProtocolError(
            f"node {node} expected at most one {kind!r}, got {len(found)}"
        )
    return found[0]


def ns_state(net: Network, node: int, ns: str) -> Dict[str, Any]:
    """The node-local state dict for protocol namespace ``ns``."""
    return net.mem[node].setdefault(ns, {})


def ns_states(
    net: Network, members: Sequence[int], ns: str
) -> Dict[int, Dict[str, Any]]:
    """All members' state dicts for ``ns`` in one pass.

    Hot primitives resolve every member's state dict once up front and
    index the returned map inside their round loops, instead of paying a
    ``net.mem`` double lookup per member per round.
    """
    mem = net.mem
    return {v: mem[v].setdefault(ns, {}) for v in members}


def idle(rounds: int) -> Proto:
    """A protocol that does nothing for ``rounds`` rounds (barrier filler)."""
    for _ in range(rounds):
        yield []
    return None
