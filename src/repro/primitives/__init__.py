"""Distributed primitives of Section 3 (structural and computational).

Everything here runs on :class:`repro.ncc.Network` through the generator
scheduler in :mod:`repro.primitives.protocol`:

* structural — path undirectification, the warm-up balanced binary tree
  (Figure 1), the balanced binary *search* tree via structure 𝓛 and
  controlled BFS (Theorem 1, Algorithm 1, Figure 2), inorder numbering /
  positions / median (Corollary 2), and distributed mergesort
  (Algorithm 2, Theorem 3);
* computational — global broadcast/aggregation (Theorem 4), global
  collection (Theorem 5), butterfly emulation, and the local group
  primitives: aggregation, multicast, token collection (Theorems 6–8),
  plus the position-range multicast used heavily by Sections 4–6.
"""

from repro.primitives.protocol import Fork, Scheduler, run_protocol
from repro.primitives.path_ops import build_undirected_path
from repro.primitives.binary_tree import build_warmup_binary_tree
from repro.primitives.bbst import build_bbst
from repro.primitives.traversal import (
    annotate_positions,
    broadcast_from_root,
    compute_subtree_sizes,
    find_median,
)
from repro.primitives.sorting import distributed_sort
from repro.primitives.broadcast import global_aggregate, global_broadcast
from repro.primitives.collection import global_collect
from repro.primitives.range_multicast import range_multicast
from repro.primitives.prefix import prefix_sums
from repro.primitives.groups import (
    local_aggregate,
    local_multicast,
    token_collect,
)
from repro.primitives.butterfly import ButterflyEmulation

__all__ = [
    "ButterflyEmulation",
    "Fork",
    "Scheduler",
    "annotate_positions",
    "broadcast_from_root",
    "build_bbst",
    "build_undirected_path",
    "build_warmup_binary_tree",
    "compute_subtree_sizes",
    "distributed_sort",
    "find_median",
    "global_aggregate",
    "global_broadcast",
    "global_collect",
    "local_aggregate",
    "local_multicast",
    "prefix_sums",
    "range_multicast",
    "run_protocol",
    "token_collect",
]
