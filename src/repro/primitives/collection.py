"""Global collection (Theorem 5): gather k tokens at a leader.

Token holders inject their tokens into the communication tree; every node
pipelines queued tokens toward the root; the root streams them on to the
leader.  With per-edge pipelining the cost is ``O(k + log n)`` rounds
(Theorem 5); we batch several tokens per edge per round within the caps,
which only improves the constant.

Two message tags keep the streams apart: ``col`` (child -> parent,
ascending) and ``fin`` (root -> leader, final).  Budget split: a node may
receive from two children plus, if it is the leader, from the root — each
stream gets a third of the receive cap.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence, Tuple

from repro.ncc.errors import ProtocolError
from repro.ncc.message import msg
from repro.ncc.network import Network
from repro.primitives.protocol import Proto, ns_state, take

Token = Tuple[Tuple[int, ...], Tuple]


def global_collect(
    net: Network,
    ns: str,
    members: Sequence[int],
    root: int,
    leader: int,
    holders: Dict[int, Token],
) -> Proto:
    """Protocol: every token in ``holders`` reaches the leader.

    Parameters
    ----------
    holders:
        ``{node_id: (ids, data)}`` — the k tokens to collect (one per
        holder; callers with several tokens per node submit per-token
        entries through repeated runs or pack them into ``data``).

    Returns the list of ``(ids, data)`` tokens at the leader (also stored
    under ``collected``); order is arrival order.
    """
    queues: Dict[int, deque] = {v: deque() for v in members}
    for v, (token_ids, token_data) in holders.items():
        queues[v].append((tuple(token_ids), tuple(token_data)))

    k = len(holders)
    collected: List[Token] = []
    up_tag, fin_tag = f"{ns}:col", f"{ns}:fin"
    share = max(1, net.recv_cap // 3)
    root_out: deque = deque()

    guard = 0
    limit = 6 * (k + len(members) + 8)
    while len(collected) < k:
        # Root-local moves cost no communication.
        while queues[root]:
            root_out.append(queues[root].popleft())
        if leader == root:
            while root_out:
                collected.append(root_out.popleft())
            if len(collected) >= k:
                break

        sends = []
        for v in members:
            if v == root:
                continue
            queue = queues[v]
            parent = ns_state(net, v, ns).get("parent")
            if queue and parent is None:
                raise ProtocolError(f"token stranded at parentless node {v}")
            for _ in range(min(len(queue), share)):
                token_ids, token_data = queue.popleft()
                sends.append((v, parent, msg(up_tag, ids=token_ids, data=token_data)))
        if leader != root:
            for _ in range(min(len(root_out), share)):
                token_ids, token_data = root_out.popleft()
                sends.append((root, leader, msg(fin_tag, ids=token_ids, data=token_data)))

        if not sends:
            raise ProtocolError("collection stalled with tokens missing")
        inboxes = yield sends
        for v in members:
            for message in take(inboxes, v, up_tag):
                queues[v].append((message.ids, message.data))
        for message in take(inboxes, leader, fin_tag):
            collected.append((message.ids, message.data))
        guard += 1
        if guard > limit:
            raise ProtocolError("collection exceeded its round guard")

    ns_state(net, leader, ns)["collected"] = collected
    return collected
