"""Distributed mergesort (Section 3.1.2, Algorithm 2, Theorem 3).

Builds a **sorted path** over all nodes from locally-held integer keys in
``O(log^3 n)`` rounds:

1. build the Theorem-1 BBST on the (unsorted) Gk path;
2. bottom-up over that tree, each node ``v`` merges the sorted runs of
   its two subtrees (Recursive-Merge, Algorithm 2) and then inserts
   itself, handing the merged run's head up to its parent.

Recursive-Merge at coordinator ``c`` (the head of the larger run):

* base: an empty side returns the other; a singleton side is inserted
  into the larger run via a BST search (``O(log)`` rounds);
* otherwise: build a fresh BBST on each run (the run's *head* is always
  its BST root), find the larger run's **median** (Corollary 2 machinery;
  the median reports its neighbours so the split is pointer surgery),
  binary-search the smaller run for the median's key, split both, fork
  the two sub-merges **in parallel**, then concatenate around the median.

Every recursion level costs ``O(log n)`` rounds and shrinks pair sizes by
a 3/4 factor (median of the larger), giving ``O(log^2 n)`` per merge and
``O(log^3 n)`` for the whole sort — the Theorem 3 bound, which the
benches verify empirically.

Keys are compared as ``(value, node_id)`` so the order is total and the
sort deterministic.  All comparisons happen at the node holding the key;
all handles travel in messages (delegation/report rounds are charged).

``fidelity="charged"`` skips the message-level simulation: it computes
the same sorted path directly and charges ``ceil(c * log^3 n)`` rounds
(cross-validated against full runs by tests and the fidelity ablation
bench).
"""

from __future__ import annotations

import math
import weakref
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.ncc.errors import ProtocolError
from repro.ncc.message import msg
from repro.ncc.network import Network
from repro.primitives.bbst import build_bbst, build_levels, controlled_bfs
from repro.primitives.path_ops import build_undirected_path
from repro.primitives.protocol import (
    Fork,
    Proto,
    fresh_ns,
    ns_state,
    take,
    take_one,
)
from repro.primitives.traversal import annotate_index, report_to_root

#: Charged-mode round constant: rounds = ceil(CHARGED_SORT_CONSTANT * log2(n)^3).
#: Calibrated so charged costs upper-bound full-fidelity measurements on the
#: overlap range (full runs measure ~4-8 * log^3 n; see the fidelity ablation
#: bench, which asserts dominance).
CHARGED_SORT_CONSTANT = 12.0


@dataclass(frozen=True)
class Run:
    """Handle to a sorted run: head/tail IDs and length."""

    head: Optional[int]
    tail: Optional[int]
    length: int

    @staticmethod
    def empty() -> "Run":
        return Run(None, None, 0)

    @staticmethod
    def singleton(v: int) -> "Run":
        return Run(v, v, 1)


def _key(net: Network, ns: str, v: int) -> Tuple[int, int]:
    state = ns_state(net, v, ns)
    return (state["val"], v)


#: Per-network run-membership cache: ``{(ns, head): (tail, length, members)}``.
#: Run handles are used linearly by Recursive-Merge — every split/insert/
#: concatenate *consumes* its input runs and *produces* new ones — so the
#: cache mirrors that discipline: entries are popped when a run is
#: consumed and stored when one is produced, which keeps exactly the live
#: runs cached and makes stale hits impossible.  Lookups additionally
#: validate ``(tail, length)`` and fall back to a pointer walk.  This is
#: scheduler bookkeeping only: no message or round depends on it.
_run_cache: "weakref.WeakKeyDictionary[Network, Dict]" = weakref.WeakKeyDictionary()


def _members_cache(net: Network) -> Dict:
    cache = _run_cache.get(net)
    if cache is None:
        cache = {}
        _run_cache[net] = cache
    return cache


def _cache_store(cache: Dict, ns: str, run: Run, members: List[int]) -> None:
    if run.length > 0:
        cache[(ns, run.head)] = (run.tail, run.length, members)


def _cache_drop(cache: Dict, ns: str, run: Run) -> None:
    if run.length > 0:
        cache.pop((ns, run.head), None)


def _run_members(net: Network, ns: str, run: Run) -> List[int]:
    """Scheduler bookkeeping: a run's members in path order.

    Served from the per-network cache when the handle is known (the same
    run's members are asked for at every Recursive-Merge level);
    otherwise the succ pointers are walked once and the result cached.
    The returned list is shared with the cache — callers treat it as
    read-only and slice/copy when they need ownership.
    """
    cache = _members_cache(net)
    entry = cache.get((ns, run.head))
    if entry is not None and entry[0] == run.tail and entry[1] == run.length:
        return entry[2]
    out: List[int] = []
    append = out.append
    mem = net.mem
    cursor = run.head
    while cursor is not None:
        append(cursor)
        state = mem[cursor].get(ns)
        cursor = state.get("succ") if state is not None else None
    if len(out) != run.length:
        raise ProtocolError(
            f"run handle claims length {run.length}, path walk found {len(out)}"
        )
    cache[(ns, run.head)] = (run.tail, run.length, out)
    return out


def _drop_bst_ns(net: Network, members: List[int], bst_ns: str) -> None:
    """Free a run BST's per-node scratch state (bookkeeping only).

    Every merge level builds fresh BSTs under throwaway namespaces; a
    long sort would otherwise pile thousands of dead namespace dicts
    into ``net.mem``.
    """
    mem = net.mem
    for v in members:
        mem[v].pop(bst_ns, None)


def _build_run_bst(net: Network, ns: str, run: Run) -> Proto:
    """Protocol: fresh BBST (+sizes/positions) on a run.  Root == head.

    The per-member scratch dicts are created in one batch and shared
    with every stage (levels, BFS, sizes+positions) so each merge level
    resolves member state exactly once.
    """
    members = _run_members(net, ns, run)
    bst_ns = fresh_ns("rb")
    mem = net.mem
    states = {}
    for v in members:
        node_mem = mem[v]
        src = node_mem.get(ns)
        if src is None:
            src = node_mem[ns] = {}
        pred, succ = src.get("pred"), src.get("succ")
        # Pre-seed the keys the level builder and the controlled BFS
        # would otherwise initialise with their own member passes.
        node_mem[bst_ns] = states[v] = {
            "pred": pred,
            "succ": succ,
            "lp0": pred,
            "ls0": succ,
            "parent": None,
            "left": None,
            "right": None,
            "in_tree": False,
            "sp": False,
            "ss": False,
        }
    member_index = {v: i for i, v in enumerate(members)}
    levels = yield from build_levels(
        net, bst_ns, members, _states=states, _preinit=True
    )
    root = yield from controlled_bfs(
        net, bst_ns, members, run.head, levels,
        _states=states, _member_index=member_index, _preinit=True,
    )
    yield from annotate_index(
        net, bst_ns, members, root, _states=states, _member_index=member_index
    )
    return bst_ns, members, root


def _descend_search(
    net: Network,
    ns: str,
    bst_ns: str,
    root: int,
    asker: int,
    key: Tuple[int, int],
) -> Proto:
    """Protocol: BST predecessor search.

    Finds the last run node with key strictly smaller than ``key`` and
    reports ``(best, best_succ, best_pos)`` to ``asker`` (``best`` may be
    absent).  Returns ``(best_id | None, succ_id | None, best_pos | -1)``.
    """
    qtag, atag = f"{bst_ns}:q", f"{bst_ns}:a"
    val, tid = key

    # The asker launches the descent (asker may be outside the run).
    if asker != root:
        inboxes = yield [(asker, root, msg(qtag, ids=(asker,), data=(val, tid, 0)))]
        current = root
    else:
        current = root
        inboxes = None

    best: Optional[int] = None
    guard = 0
    while True:
        state = ns_state(net, current, bst_ns)
        own = _key(net, ns, current)
        if own < (val, tid):
            best = current
            nxt = state.get("right")
        else:
            nxt = state.get("left")
        if nxt is None:
            break
        has_best = 1 if best is not None else 0
        ids = (asker, best) if best is not None else (asker,)
        inboxes = yield [(current, nxt, msg(qtag, ids=ids, data=(val, tid, has_best)))]
        arrived = take_one(inboxes, nxt, qtag)
        if arrived is None:
            raise ProtocolError("search descent lost its query")
        current = nxt
        guard += 1
        if guard > 4 * max(2, net.n).bit_length() + 8:
            raise ProtocolError("search descent exceeded depth guard")

    if best is None:
        if current != asker:
            inboxes = yield [(current, asker, msg(atag, data=(0, -1)))]
        return None, None, -1

    # Probe the best node for its successor and run position.
    if current != best:
        yield [(current, best, msg(f"{bst_ns}:probe", ids=(asker,)))]
    best_state = ns_state(net, best, ns)
    best_pos = ns_state(net, best, bst_ns)["pos"]
    succ = best_state.get("succ")
    if best != asker:
        ids = (best, succ) if succ is not None else (best,)
        inboxes = yield [(best, asker, msg(atag, ids=ids, data=(1, best_pos)))]
    return best, succ, best_pos


def _insert_singleton(net: Network, ns: str, y: int, run: Run) -> Proto:
    """Protocol: node ``y`` inserts itself into ``run`` (y coordinates).

    ``y`` must already know ``run.head``.  Returns the enlarged Run.
    """
    if run.length == 0:
        state = ns_state(net, y, ns)
        state["pred"] = None
        state["succ"] = None
        singleton = Run.singleton(y)
        _cache_store(_members_cache(net), ns, singleton, [y])
        return singleton

    bst_ns, members, root = yield from _build_run_bst(net, ns, run)
    best, succ, best_pos = yield from _descend_search(
        net, ns, bst_ns, root, asker=y, key=_key(net, ns, y)
    )

    ltag = f"{ns}:lnk"
    y_state = ns_state(net, y, ns)
    sends = []
    if best is None:
        # y becomes the new head, before the old head.
        y_state["pred"] = None
        y_state["succ"] = run.head
        sends.append((y, run.head, msg(ltag, ids=(y,), data=("P",))))
        new_run = Run(y, run.tail, run.length + 1)
    else:
        y_state["pred"] = best
        y_state["succ"] = succ
        sends.append((y, best, msg(ltag, ids=(y,), data=("S",))))
        if succ is not None:
            sends.append((y, succ, msg(ltag, ids=(y,), data=("P",))))
            new_run = Run(run.head, run.tail, run.length + 1)
        else:
            new_run = Run(run.head, y, run.length + 1)
    inboxes = yield sends
    for v in (best, succ, run.head):
        if v is None:
            continue
        for message in take(inboxes, v, ltag):
            slot = "pred" if message.data[0] == "P" else "succ"
            ns_state(net, v, ns)[slot] = message.ids[0]

    cache = _members_cache(net)
    _cache_drop(cache, ns, run)
    if best is None:
        new_members = [y, *members]
    else:
        if members[best_pos] != best:
            raise ProtocolError("insert bookkeeping diverged from run membership")
        at = best_pos + 1
        new_members = [*members[:at], y, *members[at:]]
    _cache_store(cache, ns, new_run, new_members)
    _drop_bst_ns(net, members, bst_ns)
    return new_run


def _split_run_at_median(net: Network, ns: str, run: Run, coordinator: int) -> Proto:
    """Protocol: find ``run``'s median and split around it.

    Returns ``(median_id, median_key, left_run, right_run)``.  The
    coordinator must be a member of ``run`` (it is its head).
    """
    bst_ns, members, root = yield from _build_run_bst(net, ns, run)
    if root != coordinator:
        raise ProtocolError("run BST root must be the coordinating head")
    target = (run.length - 1) // 2

    # The median self-identifies by position and escalates its identity,
    # run-neighbours and key along BST parent pointers to the root — the
    # run's head, which is the coordinator (Corollary 2 machinery).
    def _is_median(v: int) -> bool:
        return ns_state(net, v, bst_ns).get("pos") == target

    def _payload(v: int):
        state = ns_state(net, v, ns)
        pred_v, succ_v = state.get("pred"), state.get("succ")
        ids = tuple(x for x in (v, pred_v, succ_v) if x is not None)
        flags = (1 if pred_v is not None else 0, 1 if succ_v is not None else 0)
        return ids, (state["val"],) + flags

    ids_pack, data_pack = yield from report_to_root(
        net, bst_ns, members, root, matches=_is_median, payload=_payload
    )
    cursor = list(ids_pack)
    median = cursor.pop(0)
    val, has_pred, has_succ = data_pack
    pred = cursor.pop(0) if has_pred else None
    succ = cursor.pop(0) if has_succ else None

    # Pointer surgery: median detaches itself.
    med_state = ns_state(net, median, ns)
    sends = []
    if pred is not None:
        sends.append((median, pred, msg(f"{ns}:cutS")))
    if succ is not None:
        sends.append((median, succ, msg(f"{ns}:cutP")))
    med_state["pred"] = None
    med_state["succ"] = None
    inboxes = yield sends
    if pred is not None and take(inboxes, pred, f"{ns}:cutS"):
        ns_state(net, pred, ns)["succ"] = None
    if succ is not None and take(inboxes, succ, f"{ns}:cutP"):
        ns_state(net, succ, ns)["pred"] = None

    left = Run(run.head, pred, target) if pred is not None else Run.empty()
    right = (
        Run(succ, run.tail, run.length - target - 1) if succ is not None else Run.empty()
    )
    if members[target] != median:
        raise ProtocolError("median bookkeeping diverged from run membership")
    cache = _members_cache(net)
    _cache_drop(cache, ns, run)
    _cache_store(cache, ns, left, members[:target])
    _cache_store(cache, ns, right, members[target + 1 :])
    _drop_bst_ns(net, members, bst_ns)
    return median, (val, median), left, right


def _split_run_by_key(
    net: Network, ns: str, run: Run, coordinator: int, key: Tuple[int, int]
) -> Proto:
    """Protocol: split ``run`` into (< key, >= key) halves by BST search.

    The coordinator need not belong to the run, but must know its head.
    Returns ``(left_run, right_run)``.
    """
    if run.length == 0:
        return Run.empty(), Run.empty()
    bst_ns, members, root = yield from _build_run_bst(net, ns, run)
    best, succ, best_pos = yield from _descend_search(
        net, ns, bst_ns, root, asker=coordinator, key=key
    )
    if best is None:
        _drop_bst_ns(net, members, bst_ns)
        return Run.empty(), run

    # Cut after `best`: coordinator instructs it (it may be far away).
    sends = [(coordinator, best, msg(f"{ns}:cutafter"))]
    inboxes = yield sends
    sends = []
    if take(inboxes, best, f"{ns}:cutafter"):
        old_succ = ns_state(net, best, ns).get("succ")
        ns_state(net, best, ns)["succ"] = None
        if old_succ is not None:
            sends.append((best, old_succ, msg(f"{ns}:cutP")))
    if sends:
        inboxes = yield sends
        for message in take(inboxes, succ, f"{ns}:cutP"):
            ns_state(net, succ, ns)["pred"] = None

    left = Run(run.head, best, best_pos + 1)
    right = (
        Run(succ, run.tail, run.length - best_pos - 1)
        if succ is not None
        else Run.empty()
    )
    if members[best_pos] != best:
        raise ProtocolError("split bookkeeping diverged from run membership")
    cache = _members_cache(net)
    _cache_drop(cache, ns, run)
    _cache_store(cache, ns, left, members[: best_pos + 1])
    _cache_store(cache, ns, right, members[best_pos + 1 :])
    _drop_bst_ns(net, members, bst_ns)
    return left, right


def _concatenate(
    net: Network, ns: str, coordinator: int, left: Run, pivot: int, right: Run
) -> Proto:
    """Protocol: link ``left + [pivot] + right`` (coordinator drives)."""
    ltag = f"{ns}:cat"
    sends = []
    # The coordinator may itself be one of the boundary nodes (it sits
    # somewhere inside the merged runs); those updates are local.
    if left.length > 0:
        if left.tail == coordinator:
            ns_state(net, coordinator, ns)["succ"] = pivot
        else:
            sends.append((coordinator, left.tail, msg(ltag, ids=(pivot,), data=("S",))))
    if right.length > 0:
        if right.head == coordinator:
            ns_state(net, coordinator, ns)["pred"] = pivot
        else:
            sends.append((coordinator, right.head, msg(ltag, ids=(pivot,), data=("P",))))
    pivot_pred = left.tail if left.length > 0 else None
    pivot_succ = right.head if right.length > 0 else None
    if pivot == coordinator:
        state = ns_state(net, pivot, ns)
        state["pred"] = pivot_pred
        state["succ"] = pivot_succ
    else:
        ids = tuple(x for x in (pivot_pred, pivot_succ) if x is not None)
        flags = (1 if pivot_pred is not None else 0, 1 if pivot_succ is not None else 0)
        sends.append((coordinator, pivot, msg(f"{ns}:catp", ids=ids, data=flags)))
    inboxes = yield sends
    if left.length > 0 and left.tail != coordinator:
        for message in take(inboxes, left.tail, ltag):
            ns_state(net, left.tail, ns)["succ"] = message.ids[0]
    if right.length > 0 and right.head != coordinator:
        for message in take(inboxes, right.head, ltag):
            ns_state(net, right.head, ns)["pred"] = message.ids[0]
    if pivot != coordinator:
        arrived = take_one(inboxes, pivot, f"{ns}:catp")
        if arrived is not None:
            has_pred, has_succ = arrived.data
            cursor = list(arrived.ids)
            state = ns_state(net, pivot, ns)
            state["pred"] = cursor.pop(0) if has_pred else None
            state["succ"] = cursor.pop(0) if has_succ else None

    head = left.head if left.length > 0 else pivot
    tail = right.tail if right.length > 0 else pivot
    merged = Run(head, tail, left.length + right.length + 1)

    # Membership bookkeeping: the halves (and any stale pivot singleton)
    # are consumed; the merged run is their concatenation.  If either
    # half's membership is unknown the merged run is simply left uncached
    # (the next walk repopulates it).
    cache = _members_cache(net)
    left_entry = cache.pop((ns, left.head), None) if left.length > 0 else None
    right_entry = cache.pop((ns, right.head), None) if right.length > 0 else None
    cache.pop((ns, pivot), None)
    left_known = left.length == 0 or (
        left_entry is not None
        and left_entry[0] == left.tail
        and left_entry[1] == left.length
    )
    right_known = right.length == 0 or (
        right_entry is not None
        and right_entry[0] == right.tail
        and right_entry[1] == right.length
    )
    if left_known and right_known:
        merged_members = [
            *(left_entry[2] if left.length > 0 else ()),
            pivot,
            *(right_entry[2] if right.length > 0 else ()),
        ]
        _cache_store(cache, ns, merged, merged_members)
    return merged


def _delegate(net: Network, src: int, dst: int, r1: Run, r2: Run) -> Proto:
    """Protocol: hand merge handles from ``src`` to coordinator ``dst``."""
    if src == dst:
        return None
    ids = tuple(x for x in (r1.head, r1.tail, r2.head, r2.tail) if x is not None)
    yield [(src, dst, msg(f"dlg:{dst}", ids=ids, data=(r1.length, r2.length)))]
    return None


def _report(net: Network, src: int, dst: int, run: Run) -> Proto:
    """Protocol: report a merged run's handles back up to ``dst``."""
    if src == dst:
        return None
    ids = tuple(x for x in (run.head, run.tail) if x is not None)
    yield [(src, dst, msg(f"rpt:{dst}", ids=ids, data=(run.length,)))]
    return None


def merge_runs(net: Network, ns: str, parent: int, r1: Run, r2: Run) -> Proto:
    """Protocol: Recursive-Merge (Algorithm 2).  Returns the merged Run.

    ``parent`` is the node currently holding the handles; it delegates to
    the head of the larger run, which coordinates this level and reports
    the merged handles back to ``parent`` when done.
    """
    if r1.length == 0:
        return r2
    if r2.length == 0:
        return r1
    if r1.length < r2.length:
        r1, r2 = r2, r1

    coordinator = r1.head
    yield from _delegate(net, parent, coordinator, r1, r2)

    if r2.length == 1:
        # Insert the singleton into the larger run (it coordinates).
        y = r2.head
        yield from _delegate(net, coordinator, y, r1, Run.empty())
        merged = yield from _insert_singleton(net, ns, y, r1)
        yield from _report(net, y, coordinator, merged)
    else:
        median, med_key, left1, right1 = yield from _split_run_at_median(
            net, ns, r1, coordinator
        )
        left2, right2 = yield from _split_run_by_key(net, ns, r2, coordinator, med_key)

        results = yield Fork(
            [
                merge_runs(net, ns, coordinator, left1, left2),
                merge_runs(net, ns, coordinator, right1, right2),
            ]
        )
        merged_left, merged_right = results
        merged = yield from _concatenate(
            net, ns, coordinator, merged_left, median, merged_right
        )
    yield from _report(net, coordinator, parent, merged)
    return merged


def _sort_subtree(net: Network, ns: str, tree_ns: str, v: int) -> Proto:
    """Protocol: produce the sorted run of ``v``'s BBST subtree."""
    tree_state = ns_state(net, v, tree_ns)
    left, right = tree_state.get("left"), tree_state.get("right")
    children = [c for c in (left, right) if c is not None]
    if not children:
        ns_state(net, v, ns).setdefault("pred", None)
        ns_state(net, v, ns).setdefault("succ", None)
        return Run.singleton(v)

    child_runs = yield Fork(
        [_sort_subtree(net, ns, tree_ns, c) for c in children]
    )
    # Children report their run handles to v (grounding the handoff).
    sends = []
    for c, run in zip(children, child_runs):
        ids = tuple(x for x in (run.head, run.tail) if x is not None)
        sends.append((c, v, msg(f"{ns}:done", ids=ids, data=(run.length,))))
    yield sends

    if len(child_runs) == 1:
        merged = child_runs[0]
    else:
        merged = yield from merge_runs(net, ns, v, child_runs[0], child_runs[1])
    final = yield from _insert_singleton(net, ns, v, merged)
    return final


def distributed_sort(
    net: Network,
    value_of: Callable[[int], int],
    ns: Optional[str] = None,
    fidelity: str = "full",
    members: Optional[Sequence[int]] = None,
    path_ns: Optional[str] = None,
    head: Optional[int] = None,
) -> Proto:
    """Protocol: sort nodes into a path by ``value_of`` (Theorem 3).

    By default sorts the whole network, bootstrapping from the Gk path.
    For sub-network sorts (Algorithm 6's phase 1), pass ``members`` in
    their current path order along with ``path_ns`` (a namespace already
    holding that sub-path's pred/succ pointers) and its ``head``.

    Returns ``(ns, order)`` where ``order`` is the sorted member list and
    ``ns`` holds the sorted path's ``pred``/``succ`` pointers (ties break
    by node ID).

    ``fidelity="full"`` simulates every message; ``"charged"`` produces
    the identical path and charges the Theorem-3 round cost.
    """
    if ns is None:
        ns = fresh_ns("srt")
    scope = list(members) if members is not None else list(net.node_ids)
    for v in scope:
        ns_state(net, v, ns)["val"] = value_of(v)

    if fidelity == "charged":
        order = sorted(scope, key=lambda v: (ns_state(net, v, ns)["val"], v))
        for i, v in enumerate(order):
            state = ns_state(net, v, ns)
            state["pred"] = order[i - 1] if i > 0 else None
            state["succ"] = order[i + 1] if i < len(order) - 1 else None
            if i > 0:
                net.grant_knowledge(v, order[i - 1])
                net.grant_knowledge(order[i - 1], v)
        log_n = max(1.0, math.log2(max(2, len(scope))))
        net.charge(math.ceil(CHARGED_SORT_CONSTANT * log_n**3), reason="sort")
        return ns, order
    if fidelity != "full":
        raise ValueError(f"unknown fidelity {fidelity!r}")

    # Drop any membership bookkeeping a previous sort left under this
    # namespace (callers may reuse an explicit ns on the same network).
    cache = _members_cache(net)
    for key in [k for k in cache if k[0] == ns]:
        del cache[key]

    tree_ns = fresh_ns("st")
    if members is None:
        tree_head = yield from build_undirected_path(net, tree_ns)
    else:
        if path_ns is None or head is None:
            raise ProtocolError("sub-network sorts need path_ns and head")
        mem = net.mem
        for v in scope:
            node_mem = mem[v]
            src = node_mem.get(path_ns)
            if src is None:
                src = node_mem[path_ns] = {}
            node_mem[tree_ns] = {"pred": src.get("pred"), "succ": src.get("succ")}
        tree_head = head
    levels = yield from build_levels(net, tree_ns, scope)
    root = yield from controlled_bfs(net, tree_ns, scope, tree_head, levels)
    final_run = yield from _sort_subtree(net, ns, tree_ns, root)

    order = list(_run_members(net, ns, final_run))
    cache.pop((ns, final_run.head), None)
    if len(order) != len(scope):
        raise ProtocolError(f"sort lost nodes: {len(order)} of {len(scope)}")
    return ns, order
