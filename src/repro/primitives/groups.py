"""Local computational primitives (Theorems 6, 7, 8) — public wrappers.

Thin protocol wrappers over :class:`~repro.primitives.butterfly.ButterflyEmulation`.
Group specifications are *problem inputs*: each member knows its group id
and the group's destination/source as part of the task (exactly the
paper's setting), so the wrappers seed that knowledge before routing
begins.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.ncc.network import Network
from repro.primitives.butterfly import (
    AggGroup,
    ButterflyEmulation,
    ColGroup,
    McGroup,
)
from repro.primitives.protocol import Proto


def local_aggregate(
    net: Network, ns: str, groups: Sequence[AggGroup]
) -> Proto:
    """Protocol (Theorem 6): aggregate each group's values to its destination.

    ``ns`` must be an indexed path namespace (positions + 𝓛 levels).
    Returns ``{gid: aggregate}``.
    """
    emu = ButterflyEmulation(net, ns)
    for group in groups:
        for member in group.members:
            net.grant_knowledge(member, group.dest)
    result = yield from emu.aggregate(groups)
    return result


def local_multicast(net: Network, ns: str, groups: Sequence[McGroup]) -> Proto:
    """Protocol (Theorem 7): deliver each source's token to its members.

    Returns the total number of deliveries; members store tokens under
    ``mc:<gid>`` in ``ns``.
    """
    emu = ButterflyEmulation(net, ns)
    result = yield from emu.multicast(groups)
    return result


def token_collect(net: Network, ns: str, groups: Sequence[ColGroup]) -> Proto:
    """Protocol (Theorem 8): collect each group's tokens at its destination.

    Tokens are ``(ids, data)`` pairs; arriving ``ids`` become known to the
    destination.  Groups either name a destination the members know
    (``dest``) or use the claim mechanism (``claimant`` self-identifies by
    group id).  Returns ``{gid: [(ids, data), ...]}``; destinations also
    store tokens under ``col:<gid>``.
    """
    emu = ButterflyEmulation(net, ns)
    for group in groups:
        if group.dest is not None:
            for member, _token in group.token_items():
                net.grant_knowledge(member, group.dest)
    result = yield from emu.collect(groups)
    return result
