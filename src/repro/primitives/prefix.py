"""Distributed prefix sums over a BBST (used by Algorithms 4 and 5).

Two tree passes, exactly as the paper sketches ("reminiscent of computing
inorder traversal numbers"): a bottom-up convergecast of subtree value
sums, then a top-down pass handing each node the sum of all values at
strictly smaller positions.  ``O(height) = O(log n)`` rounds.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.ncc.errors import ProtocolError
from repro.ncc.message import msg
from repro.ncc.network import Network
from repro.primitives.protocol import Proto, ns_state, take, take_one


def prefix_sums(
    net: Network,
    ns: str,
    members: Sequence[int],
    root: int,
    value_of: Callable[[int], int],
    key: str = "prefix",
) -> Proto:
    """Protocol: every node learns ``sum(value of nodes before it)``.

    "Before" means smaller inorder position on the ``ns`` path.  The
    node's own value is excluded.  Results land in ``state[key]``;
    returns the grand total at the root.
    """
    up_tag, down_tag = f"{ns}:psum", f"{ns}:pacc"

    # Pass 1: subtree value sums (convergecast).
    pending = {}
    ready = []
    for v in members:
        state = ns_state(net, v, ns)
        state["val"] = value_of(v)
        state["lsum"] = 0
        state["rsum"] = 0
        kids = [c for c in (state.get("left"), state.get("right")) if c is not None]
        pending[v] = len(kids)
        if not kids:
            state["vsum"] = state["val"]
            ready.append(v)

    done = 0
    while done < len(members):
        sends = []
        for v in ready:
            state = ns_state(net, v, ns)
            parent = state.get("parent")
            done += 1
            if parent is not None:
                sends.append((v, parent, msg(up_tag, data=(state["vsum"],))))
        ready = []
        if done >= len(members) and not sends:
            break
        inboxes = yield sends
        for v in members:
            for report in take(inboxes, v, up_tag):
                state = ns_state(net, v, ns)
                if state.get("left") == report.src:
                    state["lsum"] = report.data[0]
                else:
                    state["rsum"] = report.data[0]
                pending[v] -= 1
                if pending[v] == 0:
                    state["vsum"] = state["val"] + state["lsum"] + state["rsum"]
                    ready.append(v)

    # Pass 2: accumulate downward.
    root_state = ns_state(net, root, ns)
    total = root_state["vsum"]

    def settle(v: int, acc: int) -> None:
        state = ns_state(net, v, ns)
        state[key] = acc + state["lsum"]

    settle(root, 0)
    frontier = [(root, 0)]
    while frontier:
        sends = []
        for v, acc in frontier:
            state = ns_state(net, v, ns)
            left, right = state.get("left"), state.get("right")
            if left is not None:
                sends.append((v, left, msg(down_tag, data=(acc,))))
            if right is not None:
                right_acc = acc + state["lsum"] + state["val"]
                sends.append((v, right, msg(down_tag, data=(right_acc,))))
        if not sends:
            break
        inboxes = yield sends
        frontier = []
        for v in members:
            accepted = take_one(inboxes, v, down_tag)
            if accepted is not None:
                settle(v, accepted.data[0])
                frontier.append((v, accepted.data[0]))
    return total
