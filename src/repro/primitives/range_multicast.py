"""Position-range multicast over structure 𝓛 (the workhorse of §§4–6).

Algorithms 3–6 repeatedly need: *a node at position ``p`` delivers a token
to every node in the contiguous position range ``[lo, hi]`` adjacent to
it* (its block of successors or predecessors in a sorted path).  The
levels of structure 𝓛 give every node pointers to the nodes exactly
``2^i`` positions away, so a classical doubling broadcast does this in
``O(log(range width))`` rounds with **one send and one receive per node
per round**, and disjoint concurrent ranges never interfere — which is
how Algorithm 3 runs all its ``q`` groups in parallel within a phase.

Message payload: the token (IDs + data) plus the range bound still to be
covered — constant words.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.ncc.errors import ProtocolError
from repro.ncc.message import msg
from repro.ncc.network import Network
from repro.primitives.protocol import Proto, ns_state, take

Token = Tuple[Tuple[int, ...], Tuple]


def range_multicast(
    net: Network,
    ns: str,
    requests: Sequence[Tuple[int, int, int, Token]],
    key: str = "rm_token",
) -> Proto:
    """Protocol: serve many disjoint range-multicasts concurrently.

    Parameters
    ----------
    ns:
        Namespace holding positions (``pos``) and 𝓛 level pointers
        (``lp{i}``/``ls{i}``) for the path being addressed.
    requests:
        ``(source_id, lo, hi, token)`` tuples.  ``[lo, hi]`` are 0-based
        positions on the ``ns`` path, inclusive; the source must sit at
        position ``lo - 1`` or ``hi + 1`` (adjacent block, as in the
        paper's algorithms).  Ranges must be pairwise disjoint.
    key:
        Receivers store the token under this state key.

    Rounds: ``O(log max_width)``.  Returns the number of deliveries.
    """
    tag = f"{ns}:rm"
    # Validate and initialise: each source knows only its own request.
    intervals: List[Tuple[int, int]] = []
    for source, lo, hi, _token in requests:
        if lo > hi:
            raise ProtocolError(f"empty range [{lo}, {hi}]")
        src_pos = ns_state(net, source, ns).get("pos")
        if src_pos is None:
            raise ProtocolError(f"source {source} has no position in {ns!r}")
        if src_pos not in (lo - 1, hi + 1):
            raise ProtocolError(
                f"source at position {src_pos} is not adjacent to [{lo}, {hi}]"
            )
        intervals.append((lo, hi))
    intervals.sort()
    for (_, first_hi), (second_lo, _) in zip(intervals, intervals[1:]):
        if second_lo <= first_hi:
            raise ProtocolError("range multicast requires disjoint ranges")

    # carriers: node -> (direction, covered_up_to, bound, token)
    # "covered" means [lo..covered] (rightward) or [covered..hi] (leftward)
    # is fully informed.  Every informed node keeps doubling into the
    # uncovered remainder using its level pointers.
    active: Dict[int, Tuple[int, int, Token]] = {}
    deliveries = 0

    # Round 0: each source seeds its adjacent neighbour (level-0 pointer).
    sends = []
    for source, lo, hi, token in requests:
        src_pos = ns_state(net, source, ns)["pos"]
        direction = 1 if src_pos == lo - 1 else -1
        first = lo if direction == 1 else hi
        bound = hi if direction == 1 else lo
        pointer = "ls0" if direction == 1 else "lp0"
        neighbor = ns_state(net, source, ns).get(pointer)
        if neighbor is None:
            raise ProtocolError(f"source {source} lacks a {pointer} neighbour")
        sends.append(
            (
                source,
                neighbor,
                msg(tag, ids=token[0], data=(direction, bound) + token[1]),
            )
        )

    guard = 0
    while sends or active:
        inboxes = yield sends
        for v in net.node_ids:
            for message in take(inboxes, v, tag):
                direction, bound = message.data[0], message.data[1]
                token = (message.ids, tuple(message.data[2:]))
                state = ns_state(net, v, ns)
                state[key] = token
                deliveries += 1
                active[v] = (direction, bound, token)

        sends = []
        finished = []
        for v, (direction, bound, token) in active.items():
            state = ns_state(net, v, ns)
            pos = state["pos"]
            remaining = (bound - pos) if direction == 1 else (pos - bound)
            if remaining <= 0:
                finished.append(v)
                continue
            # Largest power-of-two jump that stays within the range.
            jump = 0
            while (1 << (jump + 1)) <= remaining:
                jump += 1
            pointer = f"ls{jump}" if direction == 1 else f"lp{jump}"
            target = state.get(pointer)
            if target is None:
                raise ProtocolError(
                    f"node {v} at pos {pos} lacks pointer {pointer} "
                    f"needed to cover range (bound {bound})"
                )
            sends.append(
                (v, target, msg(tag, ids=token[0], data=(direction, bound) + token[1]))
            )
            # v's responsibility shrinks: the recipient covers the far part.
            new_bound = (pos + (1 << jump) - 1) if direction == 1 else (pos - (1 << jump) + 1)
            if new_bound == pos:
                finished.append(v)
            else:
                active[v] = (direction, new_bound, token)
        for v in finished:
            active.pop(v, None)
        guard += 1
        if guard > 4 * max(1, net.n).bit_length() + 16:
            raise ProtocolError("range multicast exceeded its round guard")
    return deliveries
