"""Butterfly emulation in NCC0 (Section 3.2's substrate, adapting [3, 4]).

The paper's local computational primitives (Theorems 6–8) are stated via
an emulated butterfly network.  Structure 𝓛 already gives every node
pointers to the nodes exactly ``2^i`` positions away — i.e. the full
hypercube/butterfly wiring over positions — so after the Theorem-1 build
the emulation needs **no further setup rounds**.

Routing is dimension-ordered bit fixing inside the power-of-two subcube
``[0, 2^k)``, ``k = floor(log2 n)``; nodes at positions ``>= 2^k`` first
descend into the subcube by clearing their high bits.  Per round, every
node forwards at most one packet per dimension edge, so in-flow is at
most ``k + O(1) <= recv_cap`` and strict cap enforcement never trips;
congestion manifests as queueing delay, which the benches measure.

Group rendezvous: group ``gid`` meets at row ``hash(gid) mod 2^k`` (a
shared seeded hash — the standard shared-randomness assumption of [3]).
Dimension-ordered paths into one row form a tree, so

* **aggregation** combines same-group packets wherever they meet and
  accumulates at the rendezvous, which hands the final value to the
  group's destination;
* **multicast** first lets members send JOIN packets toward the
  rendezvous, recording reverse-path state (exactly [3]'s multicast
  trees), then floods the source token down the recorded tree;
* **token collection** pipelines tokens to the rendezvous and streams
  them to the destination under a per-destination rate share.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.ncc.errors import ProtocolError
from repro.ncc.message import msg
from repro.ncc.network import Network
from repro.primitives.protocol import Proto, ns_state, take

#: Aggregate operator codes carried in packets (one word).
OPS: Dict[str, Callable[[int, int], int]] = {
    "sum": lambda a, b: a + b,
    "max": max,
    "min": min,
}
OP_CODE = {name: i for i, name in enumerate(sorted(OPS))}
CODE_OP = {i: name for name, i in OP_CODE.items()}


@dataclass(frozen=True)
class AggGroup:
    """One aggregation group: members' values combine to ``dest``."""

    gid: int
    members: Dict[int, int]  # node id -> local value
    dest: int
    op: str = "sum"


@dataclass(frozen=True)
class McGroup:
    """One multicast group: ``source``'s token reaches all members."""

    gid: int
    source: int
    members: Tuple[int, ...]
    token: Tuple[int, ...] = ()  # ids payload
    data: Tuple = ()


@dataclass(frozen=True)
class ColGroup:
    """One collection group: members' tokens stream to the destination.

    Tokens are ``(ids, data)`` pairs — the ``ids`` part teaches the
    destination those node IDs on arrival (how explicit realizations
    spread addresses).  The destination is either

    * ``dest`` — a node ID the members already know (the wrapper seeds
      that knowledge, as when an implicit edge holder introduces itself），or
    * claim-based (``dest=None``): the destination — whichever node knows
      itself to be group ``gid``'s collector — registers a *claim* at the
      rendezvous row, which forwards buffered tokens to it.  This is the
      paper's device for groups whose endpoints only share a group ID
      (Theorem 8's "agree on a group ID" discussion).
    """

    gid: int
    #: either {node: (ids, data)} or [(node, (ids, data)), ...] — the list
    #: form allows several tokens per holder.
    tokens: object
    dest: Optional[int] = None
    claimant: Optional[int] = None  # the self-identified collector

    def token_items(self) -> List[Tuple[int, Tuple[Tuple[int, ...], Tuple]]]:
        if isinstance(self.tokens, dict):
            return list(self.tokens.items())
        return list(self.tokens)


class ButterflyEmulation:
    """Hypercube/butterfly routing layer over an indexed path namespace."""

    def __init__(self, net: Network, ns: str) -> None:
        self.net = net
        self.ns = ns
        self.k = max(1, int(math.floor(math.log2(max(2, net.n)))))
        if (1 << self.k) > net.n:
            self.k -= 1
        self.k = max(0, self.k)
        self._pos: Dict[int, int] = {}
        self._by_pos: Dict[int, int] = {}
        for v in net.node_ids:
            pos = ns_state(net, v, ns).get("pos")
            if pos is None:
                raise ProtocolError(
                    f"butterfly emulation requires positions in {ns!r}"
                )
            self._pos[v] = pos
            self._by_pos[pos] = v

    # ------------------------------------------------------------------ #
    # Wiring helpers (node-local decisions)                              #
    # ------------------------------------------------------------------ #

    def rendezvous_row(self, gid: int) -> int:
        """Shared hash: the subcube row where group ``gid`` meets."""
        if self.k == 0:
            return 0
        x = (gid * 0x9E3779B97F4A7C15 + (self.net.config.seed << 17) + 0x85EBCA6B) & (
            (1 << 61) - 1
        )
        x ^= x >> 29
        return x % (1 << self.k)

    def next_hop(self, v: int, target_row: int) -> Optional[Tuple[int, int]]:
        """``(neighbor_id, dim)`` for the next bit-fixing hop, or ``None``.

        Node-local: uses only ``v``'s position and its 𝓛 pointers.
        """
        p = self._pos[v]
        if p == target_row:
            return None
        if p >= (1 << self.k):
            dim = p.bit_length() - 1  # clear the highest bit: descend
        else:
            diff = p ^ target_row
            dim = (diff & -diff).bit_length() - 1  # lowest differing bit
        q = p ^ (1 << dim)
        pointer = f"ls{dim}" if q > p else f"lp{dim}"
        neighbor = ns_state(self.net, v, self.ns).get(pointer)
        if neighbor is None:
            raise ProtocolError(
                f"missing 𝓛 pointer {pointer} at position {p} (target {target_row})"
            )
        return neighbor, dim

    # ------------------------------------------------------------------ #
    # Aggregation (Theorem 6)                                            #
    # ------------------------------------------------------------------ #

    def aggregate(self, groups: Sequence[AggGroup]) -> Proto:
        """Protocol: run all aggregation groups concurrently.

        Returns ``{gid: value}``; each destination also stores the value
        under ``agg:<gid>``.  Packets of a group combine wherever they
        meet; the rendezvous row accumulates and finally reports to the
        group's destination.
        """
        net, ns = self.net, self.ns
        tag = f"{ns}:bfa"
        fin = f"{ns}:bfafin"
        ops = {g.gid: g.op for g in groups}
        dests = {g.gid: g.dest for g in groups}
        expected: Dict[int, int] = {g.gid: len(g.members) for g in groups}

        # queue entries: gid -> (value, count) waiting at node
        queues: Dict[int, Dict[int, Tuple[int, int]]] = {
            v: {} for v in net.node_ids
        }
        acc: Dict[int, Tuple[int, int]] = {}  # gid -> (value, count) at rendezvous

        def enqueue(v: int, gid: int, value: int, count: int) -> None:
            op = OPS[ops[gid]]
            if self._pos[v] == self.rendezvous_row(gid):
                if gid in acc:
                    old_v, old_c = acc[gid]
                    acc[gid] = (op(old_v, value), old_c + count)
                else:
                    acc[gid] = (value, count)
                return
            if gid in queues[v]:
                old_v, old_c = queues[v][gid]
                queues[v][gid] = (op(old_v, value), old_c + count)
            else:
                queues[v][gid] = (value, count)

        for group in groups:
            for v, value in group.members.items():
                enqueue(v, group.gid, value, 1)

        results: Dict[int, int] = {}
        reported: Set[int] = set()
        guard = 0
        limit = 8 * (sum(expected.values()) + self.k + 8)
        while len(results) < len(groups):
            sends = []
            # Forward: one packet per dimension edge per node per round.
            for v in net.node_ids:
                if not queues[v]:
                    continue
                used_dims: Set[int] = set()
                sent_gids: List[int] = []
                for gid, (value, count) in queues[v].items():
                    hop = self.next_hop(v, self.rendezvous_row(gid))
                    if hop is None:  # pragma: no cover - enqueue handles this
                        continue
                    neighbor, dim = hop
                    if dim in used_dims:
                        continue
                    used_dims.add(dim)
                    sent_gids.append(gid)
                    sends.append(
                        (
                            v,
                            neighbor,
                            msg(
                                tag,
                                ids=(dests[gid],),
                                data=(gid, value, count, OP_CODE[ops[gid]]),
                            ),
                        )
                    )
                for gid in sent_gids:
                    del queues[v][gid]
            # Rendezvous rows with complete accumulators report out.
            ready = [
                gid
                for gid, (value, count) in acc.items()
                if count == expected[gid] and gid not in reported
            ]
            for gid in ready:
                value, _count = acc[gid]
                rendezvous = self._by_pos[self.rendezvous_row(gid)]
                if rendezvous == dests[gid]:
                    ns_state(net, rendezvous, ns)[f"agg:{gid}"] = value
                    results[gid] = value
                else:
                    sends.append(
                        (rendezvous, dests[gid], msg(fin, data=(gid, value)))
                    )
                reported.add(gid)

            if not sends and len(results) < len(groups):
                raise ProtocolError("aggregation stalled before completion")
            if len(results) == len(groups):
                break
            inboxes = yield sends
            for v in net.node_ids:
                for message in take(inboxes, v, tag):
                    gid, value, count, _op_code = message.data
                    enqueue(v, gid, value, count)
                for message in take(inboxes, v, fin):
                    gid, value = message.data
                    ns_state(net, v, ns)[f"agg:{gid}"] = value
                    results[gid] = value
            guard += 1
            if guard > limit:
                raise ProtocolError("aggregation exceeded its round guard")
        return results

    # ------------------------------------------------------------------ #
    # Multicast (Theorem 7)                                              #
    # ------------------------------------------------------------------ #

    def multicast(self, groups: Sequence[McGroup]) -> Proto:
        """Protocol: run all multicast groups concurrently.

        Members receive the group token under ``mc:<gid>``.  Returns the
        total number of member deliveries.
        """
        net, ns = self.net, self.ns
        join_tag, tok_tag = f"{ns}:bfj", f"{ns}:bft"
        group_by_gid = {g.gid: g for g in groups}

        # join_state[v][gid] = set of child node ids (reverse-path tree).
        join_state: Dict[int, Dict[int, Set[int]]] = {v: {} for v in net.node_ids}
        member_flag: Dict[int, Set[int]] = {v: set() for v in net.node_ids}

        # Phase 1: joins ascend to the rendezvous.
        join_queue: Dict[int, deque] = {v: deque() for v in net.node_ids}
        pending_roots: Set[int] = set()
        for group in groups:
            for v in group.members:
                member_flag[v].add(group.gid)
                if self._pos[v] == self.rendezvous_row(group.gid):
                    join_state[v].setdefault(group.gid, set())
                    pending_roots.add(group.gid)
                elif group.gid not in join_state[v]:
                    join_state[v].setdefault(group.gid, set())
                    join_queue[v].append(group.gid)

        joins_in_flight = sum(len(q) for q in join_queue.values())
        guard = 0
        limit = 8 * (sum(len(g.members) for g in groups) + self.k + 8)
        while joins_in_flight:
            sends = []
            for v in net.node_ids:
                used_dims: Set[int] = set()
                deferred = deque()
                while join_queue[v]:
                    gid = join_queue[v].popleft()
                    hop = self.next_hop(v, self.rendezvous_row(gid))
                    if hop is None:  # pragma: no cover - seeding filters these
                        joins_in_flight -= 1
                        continue
                    neighbor, dim = hop
                    if dim in used_dims:
                        deferred.append(gid)  # stays in flight, retried next round
                        continue
                    used_dims.add(dim)
                    sends.append((v, neighbor, msg(join_tag, data=(gid,))))
                    joins_in_flight -= 1
                join_queue[v] = deferred
            if not sends and joins_in_flight:
                raise ProtocolError("multicast join phase stalled")
            if not sends:
                break
            inboxes = yield sends
            for v in net.node_ids:
                for message in take(inboxes, v, join_tag):
                    gid = message.data[0]
                    if gid in join_state[v]:
                        join_state[v][gid].add(message.src)
                    else:
                        join_state[v][gid] = {message.src}
                        if self._pos[v] != self.rendezvous_row(gid):
                            join_queue[v].append(gid)
                            joins_in_flight += 1
            guard += 1
            if guard > limit:
                raise ProtocolError("multicast join exceeded its round guard")

        # Phase 2: source tokens ascend to the rendezvous, then flood down.
        tok_queue: Dict[int, deque] = {v: deque() for v in net.node_ids}
        down_queue: Dict[int, deque] = {v: deque() for v in net.node_ids}
        deliveries = 0
        expected = sum(len(g.members) for g in groups)

        def deliver_local(v: int, gid: int, token_ids: Tuple[int, ...], data: Tuple):
            nonlocal deliveries
            if gid in member_flag[v]:
                ns_state(net, v, ns)[f"mc:{gid}"] = (token_ids, data)
                member_flag[v].discard(gid)
                deliveries += 1

        for group in groups:
            source = group.source
            if self._pos[source] == self.rendezvous_row(group.gid):
                down_queue[source].append((group.gid, group.token, group.data))
                deliver_local(source, group.gid, group.token, group.data)
            else:
                tok_queue[source].append((group.gid, group.token, group.data))

        guard = 0
        while deliveries < expected:
            sends = []
            for v in net.node_ids:
                # Ascending tokens: one per dimension edge.
                used_dims: Set[int] = set()
                deferred = deque()
                while tok_queue[v]:
                    gid, token_ids, data = tok_queue[v].popleft()
                    hop = self.next_hop(v, self.rendezvous_row(gid))
                    if hop is None:
                        down_queue[v].append((gid, token_ids, data))
                        deliver_local(v, gid, token_ids, data)
                        continue
                    neighbor, dim = hop
                    if dim in used_dims:
                        deferred.append((gid, token_ids, data))
                        continue
                    used_dims.add(dim)
                    sends.append(
                        (v, neighbor, msg(tok_tag, ids=token_ids, data=(gid, 0) + data))
                    )
                tok_queue[v] = deferred
                # Descending tokens: fan out to recorded children.
                budget = max(1, net.send_cap - len(used_dims) - 1)
                deferred = deque()
                while down_queue[v]:
                    gid, token_ids, data = down_queue[v].popleft()
                    children = join_state[v].get(gid, set())
                    if len(children) > budget:
                        deferred.append((gid, token_ids, data))
                        budget = 0
                        continue
                    for child in children:
                        sends.append(
                            (
                                v,
                                child,
                                msg(tok_tag, ids=token_ids, data=(gid, 1) + data),
                            )
                        )
                    budget -= len(children)
                down_queue[v] = deferred
            if not sends and deliveries < expected:
                raise ProtocolError("multicast token phase stalled")
            if deliveries >= expected and not sends:
                break
            inboxes = yield sends
            for v in net.node_ids:
                for message in take(inboxes, v, tok_tag):
                    gid, descending = message.data[0], message.data[1]
                    data = tuple(message.data[2:])
                    token_ids = message.ids
                    if descending:
                        deliver_local(v, gid, token_ids, data)
                        down_queue[v].append((gid, token_ids, data))
                    else:
                        if self._pos[v] == self.rendezvous_row(gid):
                            deliver_local(v, gid, token_ids, data)
                            down_queue[v].append((gid, token_ids, data))
                        else:
                            tok_queue[v].append((gid, token_ids, data))
            guard += 1
            if guard > limit:
                raise ProtocolError("multicast token phase exceeded its guard")
        return deliveries

    # ------------------------------------------------------------------ #
    # Token collection (Theorem 8)                                       #
    # ------------------------------------------------------------------ #

    def collect(self, groups: Sequence[ColGroup]) -> Proto:
        """Protocol: run all collection groups concurrently.

        Tokens pipeline to each group's rendezvous, which streams them to
        the destination under a rate share of ``recv_cap / (2 * l2)``
        where ``l2`` is the max number of groups sharing a destination.
        For claim-based groups the rendezvous buffers tokens until the
        claimant's registration arrives.  Destinations store tokens under
        ``col:<gid>``; returns ``{gid: [(ids, data), ...]}``.
        """
        net, ns = self.net, self.ns
        tag, fin = f"{ns}:bfc", f"{ns}:bfcfin"
        claim_tag = f"{ns}:bfclaim"
        expected = {g.gid: len(g.token_items()) for g in groups}
        # Destination resolution at the rendezvous: either carried by the
        # group spec (dest known to members) or learned from a claim.
        known_dest: Dict[int, Optional[int]] = {g.gid: g.dest for g in groups}

        final_dest: Dict[int, int] = {}
        for g in groups:
            final_dest[g.gid] = g.dest if g.dest is not None else g.claimant
            if final_dest[g.gid] is None:
                raise ProtocolError(f"group {g.gid} has neither dest nor claimant")
        dest_groups: Dict[int, int] = {}
        for g in groups:
            d = final_dest[g.gid]
            dest_groups[d] = dest_groups.get(d, 0) + 1
        l2 = max(dest_groups.values(), default=1)
        share = max(1, net.recv_cap // (2 * l2))

        queues: Dict[int, deque] = {v: deque() for v in net.node_ids}
        outbox: Dict[int, deque] = {v: deque() for v in net.node_ids}  # at rendezvous
        claim_queue: Dict[int, deque] = {v: deque() for v in net.node_ids}
        rendezvous_dest: Dict[int, Optional[int]] = {}  # gid -> dest once known
        results: Dict[int, List[Tuple]] = {g.gid: [] for g in groups}

        for group in groups:
            rendezvous = self._by_pos[self.rendezvous_row(group.gid)]
            if group.dest is not None:
                rendezvous_dest.setdefault(group.gid, None)
            else:
                claimant = group.claimant
                if self._pos[claimant] == self.rendezvous_row(group.gid):
                    rendezvous_dest[group.gid] = claimant
                else:
                    rendezvous_dest[group.gid] = None
                    claim_queue[claimant].append((group.gid, claimant))
            for v, token in group.token_items():
                entry = (group.gid, tuple(token[0]), tuple(token[1]))
                if self._pos[v] == self.rendezvous_row(group.gid):
                    outbox[v].append(entry)
                else:
                    queues[v].append(entry)
            if group.dest is not None:
                # Members carry the destination in their packets; mark it
                # resolved at the rendezvous immediately (spec knowledge).
                rendezvous_dest[group.gid] = group.dest

        done = 0
        total = sum(expected.values())
        guard = 0
        limit = 10 * (total + self.k + 16)
        while done < total:
            sends = []
            for v in net.node_ids:
                used_dims: Set[int] = set()
                # Claims ride the same dimension-ordered routing.
                deferred_claims = deque()
                while claim_queue[v]:
                    gid, claimant = claim_queue[v].popleft()
                    hop = self.next_hop(v, self.rendezvous_row(gid))
                    if hop is None:
                        rendezvous_dest[gid] = claimant
                        continue
                    neighbor, dim = hop
                    if dim in used_dims:
                        deferred_claims.append((gid, claimant))
                        continue
                    used_dims.add(dim)
                    sends.append(
                        (v, neighbor, msg(claim_tag, ids=(claimant,), data=(gid,)))
                    )
                claim_queue[v] = deferred_claims

                deferred = deque()
                while queues[v]:
                    gid, token_ids, token_data = queues[v].popleft()
                    hop = self.next_hop(v, self.rendezvous_row(gid))
                    if hop is None:
                        outbox[v].append((gid, token_ids, token_data))
                        continue
                    neighbor, dim = hop
                    if dim in used_dims:
                        deferred.append((gid, token_ids, token_data))
                        continue
                    used_dims.add(dim)
                    # Dest-known groups carry the destination address in
                    # transit so the rendezvous learns it (one extra
                    # word); claim-based groups learn it from the claim.
                    dest = known_dest.get(gid)
                    wire_ids = ((dest,) + token_ids) if dest is not None else token_ids
                    sends.append(
                        (v, neighbor, msg(tag, ids=wire_ids, data=(gid,) + token_data))
                    )
                queues[v] = deferred

                emitted = 0
                held = deque()
                while outbox[v] and emitted < share:
                    gid, token_ids, token_data = outbox[v].popleft()
                    dest = rendezvous_dest.get(gid)
                    if dest is None:
                        held.append((gid, token_ids, token_data))
                        continue
                    if dest == v:
                        ns_state(net, v, ns).setdefault(f"col:{gid}", []).append(
                            (token_ids, token_data)
                        )
                        results[gid].append((token_ids, token_data))
                        done += 1
                    else:
                        sends.append(
                            (v, dest, msg(fin, ids=token_ids, data=(gid,) + token_data))
                        )
                        emitted += 1
                outbox[v].extendleft(reversed(held))
            if not sends and done < total:
                raise ProtocolError("collection stalled before completion")
            if done >= total:
                break
            inboxes = yield sends
            for v in net.node_ids:
                for message in take(inboxes, v, claim_tag):
                    gid = message.data[0]
                    if self._pos[v] == self.rendezvous_row(gid):
                        rendezvous_dest[gid] = message.ids[0]
                    else:
                        # Forward the claim onward next round.
                        claim_queue[v].append((gid, message.ids[0]))
                for message in take(inboxes, v, tag):
                    gid = message.data[0]
                    token_ids = message.ids
                    if known_dest.get(gid) is not None:
                        token_ids = token_ids[1:]  # strip the carried dest
                    token_data = tuple(message.data[1:])
                    if self._pos[v] == self.rendezvous_row(gid):
                        outbox[v].append((gid, token_ids, token_data))
                    else:
                        queues[v].append((gid, token_ids, token_data))
                for message in take(inboxes, v, fin):
                    gid = message.data[0]
                    token = (message.ids, tuple(message.data[1:]))
                    ns_state(net, v, ns).setdefault(f"col:{gid}", []).append(token)
                    results[gid].append(token)
                    done += 1
            guard += 1
            if guard > limit:
                raise ProtocolError("collection exceeded its round guard")
        return results
