"""Path structure bootstrap (Section 3.1, first paragraph).

The initial knowledge graph ``Gk`` is a *directed* path: each node knows
its successor only.  In one round the path becomes undirected and ordered:
every ``u`` messages its successor ``v``, which thereby learns ``u``'s ID
and records ``u`` as predecessor.

The resulting pointers are stored in a protocol namespace so later
structures (runs, sub-paths, levels of 𝓛) can coexist: node ``v`` holds
``mem[v][ns] = {"pred": id | None, "succ": id | None}``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.ncc.message import msg
from repro.ncc.network import Network
from repro.primitives.protocol import Proto, ns_state, take_one


def build_undirected_path(
    net: Network, ns: str, order: Optional[Sequence[int]] = None
) -> Proto:
    """Protocol: undirectify the initial path into namespace ``ns``.

    Parameters
    ----------
    net:
        The network; its simulator index order *is* the ``Gk`` order.
    ns:
        Namespace for the pred/succ pointers.
    order:
        Node IDs in path order.  Defaults to ``net.node_ids`` (the Gk
        path).  When given (e.g. for sub-paths whose links already exist
        in node knowledge), consecutive nodes must already know their
        forward neighbour.

    Returns
    -------
    The head node's ID (protocol result).
    """
    ids = list(order) if order is not None else list(net.node_ids)

    sends = []
    for u, v in zip(ids, ids[1:]):
        state = ns_state(net, u, ns)
        state["succ"] = v
        sends.append((u, v, msg(f"{ns}:rev", ids=(u,))))
    # Heads/tails get explicit None pointers.
    for v in ids:
        state = ns_state(net, v, ns)
        state.setdefault("succ", None)
        state.setdefault("pred", None)

    inboxes = yield sends
    for v in ids:
        message = take_one(inboxes, v, f"{ns}:rev")
        if message is not None:
            ns_state(net, v, ns)["pred"] = message.src
    return ids[0] if ids else None


def path_members_from(net: Network, ns: str, head: int) -> List[int]:
    """Walk ``succ`` pointers from ``head`` (validation helper, not a protocol)."""
    out: List[int] = []
    cursor: Optional[int] = head
    seen = set()
    while cursor is not None:
        if cursor in seen:
            raise ValueError(f"cycle in path namespace {ns!r} at {cursor}")
        seen.add(cursor)
        out.append(cursor)
        cursor = ns_state(net, cursor, ns).get("succ")
    return out
