"""Global computational primitives (Theorem 4): broadcast & aggregation.

Both run over a communication tree (the Theorem-1 BBST in practice): a
designated leader hands its token to the root, which floods it down
(``O(log n)`` rounds); aggregation is the reverse convergecast of a
distributive aggregate function, with the result forwarded to the leader.

The leader/root handshake assumes the root's ID is common knowledge; the
tree builders publish it (``publish_root``) for exactly this purpose, as
in the paper where the root is the head of ``Gk``.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence, Tuple

from repro.ncc.errors import ProtocolError
from repro.ncc.message import msg
from repro.ncc.network import Network
from repro.primitives.protocol import Proto, ns_state, take, take_one
from repro.primitives.traversal import broadcast_from_root


def global_broadcast(
    net: Network,
    ns: str,
    members: Sequence[int],
    root: int,
    leader: int,
    value: Tuple = (),
    value_ids: Tuple[int, ...] = (),
    key: str = "bc_token",
) -> Proto:
    """Protocol: leader's token reaches every member.  ``O(log n)`` rounds.

    The token is ``(value_ids, value)``; every member stores it under
    ``key``.  Returns the token.
    """
    if leader != root:
        inboxes = yield [(leader, root, msg(f"{ns}:tok", ids=value_ids, data=value))]
        arrived = take_one(inboxes, root, f"{ns}:tok")
        if arrived is None:
            raise ProtocolError("leader token lost en route to root")
        value_ids, value = arrived.ids, arrived.data
    yield from broadcast_from_root(
        net, ns, members, root, key=key, value=value, value_ids=value_ids
    )
    return (tuple(value_ids), tuple(value))


def global_aggregate(
    net: Network,
    ns: str,
    members: Sequence[int],
    root: int,
    leader: int,
    value_of: Callable[[int], int],
    combine: Callable[[int, int], int],
    key: str = "agg_result",
) -> Proto:
    """Protocol: leader learns ``combine``-fold of all members' values.

    ``combine`` must be a distributive aggregate (max, min, +, ...) on
    integers — one O(log n)-bit word per message, as the model requires.
    The result is returned and stored at the leader under ``key``.
    ``O(log n)`` rounds over the tree.
    """
    pending = {}
    ready = []
    for v in members:
        state = ns_state(net, v, ns)
        kids = [c for c in (state.get("left"), state.get("right")) if c is not None]
        pending[v] = len(kids)
        state["agg_acc"] = value_of(v)
        if not kids:
            ready.append(v)

    done = 0
    result: Optional[int] = None
    while done < len(members):
        sends = []
        for v in ready:
            state = ns_state(net, v, ns)
            parent = state.get("parent")
            done += 1
            if parent is not None:
                sends.append((v, parent, msg(f"{ns}:agg", data=(state["agg_acc"],))))
            else:
                result = state["agg_acc"]
        ready = []
        if done >= len(members) and not sends:
            break
        inboxes = yield sends
        for v in members:
            for report in take(inboxes, v, f"{ns}:agg"):
                state = ns_state(net, v, ns)
                state["agg_acc"] = combine(state["agg_acc"], report.data[0])
                pending[v] -= 1
                if pending[v] == 0:
                    ready.append(v)

    if result is None:
        raise ProtocolError("aggregation never reached the root")
    if leader != root:
        inboxes = yield [(root, leader, msg(f"{ns}:aggr", data=(result,)))]
        arrived = take_one(inboxes, leader, f"{ns}:aggr")
        if arrived is None:
            raise ProtocolError("aggregate lost en route to leader")
        result = arrived.data[0]
    ns_state(net, leader, ns)[key] = result
    return result
