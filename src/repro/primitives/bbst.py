"""Balanced binary search tree via structure 𝓛 + controlled BFS.

Implements Section 3.1.1's main construction (Theorem 1, Algorithm 1,
Figure 2):

1. **Structure 𝓛** — ``⌈log n⌉ + 1`` levels of interleaved paths.  Level 0
   is the undirected path; at level ``i`` every node links to the nodes at
   distance ``2^i`` in the original order, learned in one round per level
   by forwarding predecessor/successor IDs (grand-neighbour learning).
2. **Controlled BFS** (Algorithm 1) — the path head ``r`` (the unique node
   with no level-0 predecessor) seeds sets ``Sp``/``Ss``; sweeping levels
   from top to bottom, ``Sp`` members invite their level-``i``
   predecessors as left children and ``Ss`` members their level-``i``
   successors as right children; invited nodes join, then themselves
   enter ``Sp``/``Ss``.

The result is a binary tree of height ≤ ``⌈log n⌉ + 1`` whose **inorder
traversal is the original path order** — the property every later
algorithm (positions, sorting, range multicast) relies on.

The construction is generic over a *sub-path*: the mergesort builds BBSTs
on runs by passing the run's members.  All state lives under the caller's
namespace: level pointers ``lp{i}``/``ls{i}``, tree pointers ``parent`` /
``left`` / ``right``, and the ``in_tree`` flag.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.ncc.errors import ProtocolError
from repro.ncc.message import msg
from repro.ncc.network import Network
from repro.primitives.path_ops import build_undirected_path
from repro.primitives.protocol import Proto, fresh_ns, ns_state, take, take_one


def build_levels(net: Network, ns: str, members: Sequence[int]) -> Proto:
    """Protocol: build structure 𝓛's level pointers over ``members``.

    ``members`` must already form an undirected path in ``ns`` (keys
    ``pred``/``succ``); it is orchestration bookkeeping only — all data
    flows through messages.  Returns the number of levels built.
    """
    size = len(members)
    levels = math.ceil(math.log2(size)) if size > 1 else 0
    for v in members:
        state = ns_state(net, v, ns)
        state["lp0"] = state["pred"]
        state["ls0"] = state["succ"]

    for i in range(1, levels + 1):
        prev_p, prev_s = f"lp{i - 1}", f"ls{i - 1}"
        sends = []
        for v in members:
            state = ns_state(net, v, ns)
            pred, succ = state[prev_p], state[prev_s]
            if succ is not None:
                payload = (pred,) if pred is not None else ()
                sends.append((v, succ, msg(f"{ns}:l{i}p", ids=payload)))
            if pred is not None:
                payload = (succ,) if succ is not None else ()
                sends.append((v, pred, msg(f"{ns}:l{i}s", ids=payload)))
        inboxes = yield sends
        for v in members:
            state = ns_state(net, v, ns)
            gp = take_one(inboxes, v, f"{ns}:l{i}p")
            gs = take_one(inboxes, v, f"{ns}:l{i}s")
            state[f"lp{i}"] = gp.ids[0] if gp and gp.ids else None
            state[f"ls{i}"] = gs.ids[0] if gs and gs.ids else None
    return levels


def controlled_bfs(
    net: Network, ns: str, members: Sequence[int], head: int, levels: int
) -> Proto:
    """Protocol: Algorithm 1 — turn structure 𝓛 into the BBST.

    Returns the root (== ``head``).  Tree pointers are written to ``ns``.
    """
    for v in members:
        state = ns_state(net, v, ns)
        state["parent"] = None
        state["left"] = None
        state["right"] = None
        state["in_tree"] = False
        state["sp"] = False
        state["ss"] = False

    root_state = ns_state(net, head, ns)
    root_state["in_tree"] = True
    root_state["sp"] = True
    root_state["ss"] = True

    for i in range(levels - 1, -1, -1):
        # Invitation round.
        sends = []
        for v in members:
            state = ns_state(net, v, ns)
            if state["sp"]:
                pred_i = state.get(f"lp{i}")
                if pred_i is not None:
                    sends.append((v, pred_i, msg(f"{ns}:invL")))
                    state["sp"] = False
            if state["ss"]:
                succ_i = state.get(f"ls{i}")
                if succ_i is not None:
                    sends.append((v, succ_i, msg(f"{ns}:invR")))
                    state["ss"] = False
        inboxes = yield sends

        # Acceptance round.
        sends = []
        for v in members:
            state = ns_state(net, v, ns)
            if state["in_tree"]:
                continue
            invites = take(inboxes, v, f"{ns}:invL") + take(inboxes, v, f"{ns}:invR")
            if not invites:
                continue
            chosen = invites[0]
            side = "L" if chosen.kind.endswith("invL") else "R"
            state["in_tree"] = True
            state["parent"] = chosen.src
            state["sp"] = True
            state["ss"] = True
            sends.append((v, chosen.src, msg(f"{ns}:acc", data=(side,))))
        inboxes = yield sends

        for v in members:
            for accept in take(inboxes, v, f"{ns}:acc"):
                state = ns_state(net, v, ns)
                slot = "left" if accept.data[0] == "L" else "right"
                if state[slot] is not None:
                    raise ProtocolError(f"node {v} gained two {slot} children")
                state[slot] = accept.src

    missing = [v for v in members if not ns_state(net, v, ns)["in_tree"]]
    if missing:
        raise ProtocolError(
            f"controlled BFS left {len(missing)} nodes out of the tree "
            f"(first few: {missing[:5]})"
        )
    return head


def build_bbst(
    net: Network,
    ns: Optional[str] = None,
    members: Optional[Sequence[int]] = None,
    head: Optional[int] = None,
) -> Proto:
    """Protocol: full BBST construction (Theorem 1).

    Without arguments, bootstraps from the Gk path: undirectifies it,
    builds 𝓛, runs the controlled BFS.  With ``members``/``head``, builds
    on an existing undirected sub-path in ``ns``.

    Returns ``(ns, root)``.
    """
    if ns is None:
        ns = fresh_ns("bbst")
    if members is None:
        members = list(net.node_ids)
        head = yield from build_undirected_path(net, ns)
    if head is None:
        raise ProtocolError("BBST build requires a non-empty path")
    levels = yield from build_levels(net, ns, members)
    root = yield from controlled_bfs(net, ns, members, head, levels)
    return ns, root


def build_indexed_path(
    net: Network,
    ns: str,
    members: Sequence[int],
    head: int,
    publish_root: bool = False,
) -> Proto:
    """Protocol: full position machinery on an existing undirected path.

    Runs, in order: structure 𝓛, the controlled BFS (BBST), subtree
    sizes, and inorder position annotation — after which every member
    knows its ``pos``, its subtree ``range``, the ``total`` length, and
    (optionally, ``publish_root``) the root's ID under ``root_id``.

    Returns the BBST root.  ``O(log n)`` rounds total (Theorem 1 +
    Corollary 2).
    """
    from repro.primitives.traversal import (
        annotate_positions,
        broadcast_from_root,
        compute_subtree_sizes,
    )

    levels = yield from build_levels(net, ns, members)
    root = yield from controlled_bfs(net, ns, members, head, levels)
    yield from compute_subtree_sizes(net, ns, members)
    yield from annotate_positions(net, ns, members, root)
    if publish_root:
        yield from broadcast_from_root(
            net, ns, members, root, key="root_pack", value=(), value_ids=(root,)
        )
        for v in members:
            state = ns_state(net, v, ns)
            state["root_id"] = state["root_pack"][0][0]
    return root


def level_paths(net: Network, ns: str, members: Sequence[int], level: int) -> List[List[int]]:
    """Reconstruct the level-``level`` paths of 𝓛 (validation helper)."""
    succ_key = f"ls{level}"
    pred_key = f"lp{level}"
    heads = [
        v
        for v in members
        if ns_state(net, v, ns).get(pred_key) is None
        and (succ_key in ns_state(net, v, ns) or level == 0)
    ]
    paths = []
    for h in heads:
        path = [h]
        cursor = ns_state(net, h, ns).get(succ_key)
        while cursor is not None:
            path.append(cursor)
            cursor = ns_state(net, cursor, ns).get(succ_key)
        paths.append(path)
    return paths
