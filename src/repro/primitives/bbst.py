"""Balanced binary search tree via structure 𝓛 + controlled BFS.

Implements Section 3.1.1's main construction (Theorem 1, Algorithm 1,
Figure 2):

1. **Structure 𝓛** — ``⌈log n⌉ + 1`` levels of interleaved paths.  Level 0
   is the undirected path; at level ``i`` every node links to the nodes at
   distance ``2^i`` in the original order, learned in one round per level
   by forwarding predecessor/successor IDs (grand-neighbour learning).
2. **Controlled BFS** (Algorithm 1) — the path head ``r`` (the unique node
   with no level-0 predecessor) seeds sets ``Sp``/``Ss``; sweeping levels
   from top to bottom, ``Sp`` members invite their level-``i``
   predecessors as left children and ``Ss`` members their level-``i``
   successors as right children; invited nodes join, then themselves
   enter ``Sp``/``Ss``.

The result is a binary tree of height ≤ ``⌈log n⌉ + 1`` whose **inorder
traversal is the original path order** — the property every later
algorithm (positions, sorting, range multicast) relies on.

The construction is generic over a *sub-path*: the mergesort builds BBSTs
on runs by passing the run's members.  All state lives under the caller's
namespace: level pointers ``lp{i}``/``ls{i}``, tree pointers ``parent`` /
``left`` / ``right``, and the ``in_tree`` flag.

This module sits on the mergesort's per-merge hot path (every
Recursive-Merge level builds fresh run BSTs), so the round loops resolve
member state once up front, hoist message tags out of the per-member
loops, and scan each round's actual receivers instead of filtering every
member's inbox — re-sorting into member order wherever handling order
feeds a later send loop, so the emitted message stream stays
byte-identical to the naive formulation.
"""

from __future__ import annotations

import math
import sys
from typing import List, Optional, Sequence

from repro.ncc.errors import ProtocolError
from repro.ncc.message import Message, msg
from repro.ncc.network import Network
from repro.primitives.path_ops import build_undirected_path
from repro.primitives.protocol import (
    Proto,
    fresh_ns,
    ns_state,
    ns_states,
)


_new_message = Message.__new__


def build_levels(
    net: Network,
    ns: str,
    members: Sequence[int],
    _states=None,
    _preinit=False,
) -> Proto:
    """Protocol: build structure 𝓛's level pointers over ``members``.

    ``members`` must already form an undirected path in ``ns`` (keys
    ``pred``/``succ``); it is orchestration bookkeeping only — all data
    flows through messages.  Returns the number of levels built.

    ``_states`` lets a caller that already resolved every member's state
    dict (the run-BST builder) share that resolution; ``_preinit`` means
    the caller also seeded ``lp0``/``ls0``.
    """
    size = len(members)
    levels = math.ceil(math.log2(size)) if size > 1 else 0
    states = _states if _states is not None else ns_states(net, members, ns)
    pairs = list(states.items())  # member order (dict preserves insertion)
    if not _preinit:
        for _v, state in pairs:
            state["lp0"] = state["pred"]
            state["ls0"] = state["succ"]

    for i in range(1, levels + 1):
        prev_p, prev_s = f"lp{i - 1}", f"ls{i - 1}"
        tag_p = sys.intern(f"{ns}:l{i}p")
        tag_s = sys.intern(f"{ns}:l{i}s")
        sends = []
        append = sends.append
        # Message construction is inlined (the grand-neighbour exchange
        # is the densest send loop of the whole sort): a blank shell's
        # instance dict is assigned wholesale, exactly what ``msg`` does
        # minus the call overhead.
        for v, state in pairs:
            pred, succ = state[prev_p], state[prev_s]
            if succ is not None:
                shell = _new_message(Message)
                inner = shell.__dict__
                inner["kind"] = tag_p
                inner["ids"] = (pred,) if pred is not None else ()
                inner["data"] = ()
                inner["src"] = -1
                append((v, succ, shell))
            if pred is not None:
                shell = _new_message(Message)
                inner = shell.__dict__
                inner["kind"] = tag_s
                inner["ids"] = (succ,) if succ is not None else ()
                inner["data"] = ()
                inner["src"] = -1
                append((v, pred, shell))
        inboxes = yield sends
        lp_key, ls_key = f"lp{i}", f"ls{i}"
        inboxes_get = inboxes.get
        for v, state in pairs:
            gp = gs = None
            box = inboxes_get(v)
            if box:
                for message in box:
                    kind = message.kind
                    if kind == tag_p:
                        if gp is not None:
                            raise ProtocolError(
                                f"node {v} expected at most one {tag_p!r}"
                            )
                        gp = message
                    elif kind == tag_s:
                        if gs is not None:
                            raise ProtocolError(
                                f"node {v} expected at most one {tag_s!r}"
                            )
                        gs = message
            state[lp_key] = gp.ids[0] if gp is not None and gp.ids else None
            state[ls_key] = gs.ids[0] if gs is not None and gs.ids else None
    return levels


def controlled_bfs(
    net: Network,
    ns: str,
    members: Sequence[int],
    head: int,
    levels: int,
    _states=None,
    _member_index=None,
    _preinit=False,
) -> Proto:
    """Protocol: Algorithm 1 — turn structure 𝓛 into the BBST.

    Returns the root (== ``head``).  Tree pointers are written to ``ns``.

    Only the *active* frontier (nodes with a pending ``Sp``/``Ss`` role)
    is scanned per level, kept in member order so the invitation stream
    matches a full member scan; joined-but-consumed nodes drop out.
    ``_preinit`` means the caller created the state dicts with the tree
    pointers and role flags already reset.
    """
    states = _states if _states is not None else ns_states(net, members, ns)
    pairs = list(states.items())
    member_index = (
        _member_index
        if _member_index is not None
        else {v: i for i, v in enumerate(members)}
    )
    if not _preinit:
        for _v, state in pairs:
            state["parent"] = None
            state["left"] = None
            state["right"] = None
            state["in_tree"] = False
            state["sp"] = False
            state["ss"] = False

    root_state = states[head]
    root_state["in_tree"] = True
    root_state["sp"] = True
    root_state["ss"] = True

    inv_l = sys.intern(f"{ns}:invL")
    inv_r = sys.intern(f"{ns}:invR")
    acc = sys.intern(f"{ns}:acc")
    states_get = states.get
    index_of = member_index.__getitem__
    active = [head]  # nodes with sp or ss still set, in member order

    for i in range(levels - 1, -1, -1):
        # Invitation round.  A node stays active across levels until both
        # its roles are consumed (its level-i neighbour may not exist).
        lp_key, ls_key = f"lp{i}", f"ls{i}"
        sends = []
        append = sends.append
        carry = []
        for v in active:
            state = states[v]
            sp, ss = state["sp"], state["ss"]
            if sp:
                pred_i = state.get(lp_key)
                if pred_i is not None:
                    shell = _new_message(Message)
                    inner = shell.__dict__
                    inner["kind"] = inv_l
                    inner["ids"] = ()
                    inner["data"] = ()
                    inner["src"] = -1
                    append((v, pred_i, shell))
                    state["sp"] = sp = False
            if ss:
                succ_i = state.get(ls_key)
                if succ_i is not None:
                    shell = _new_message(Message)
                    inner = shell.__dict__
                    inner["kind"] = inv_r
                    inner["ids"] = ()
                    inner["data"] = ()
                    inner["src"] = -1
                    append((v, succ_i, shell))
                    state["ss"] = ss = False
            if sp or ss:
                carry.append(v)
        inboxes = yield sends

        # Acceptance round.  Invited nodes are exactly this round's
        # receivers; acceptances are emitted in member order (matching a
        # full member scan) so the send stream is canonical.
        accepted = []
        for dst, box in inboxes.items():
            state = states_get(dst)
            if state is None or state["in_tree"]:
                continue
            chosen = None
            for message in box:
                kind = message.kind
                if kind == inv_l:
                    chosen = message
                    break
                if kind == inv_r and chosen is None:
                    chosen = message
            if chosen is not None:
                accepted.append(dst)
                state["in_tree"] = True
                state["parent"] = chosen.src
                state["sp"] = True
                state["ss"] = True
                state["side"] = "L" if chosen.kind is inv_l else "R"
        if len(accepted) > 1:
            accepted.sort(key=index_of)
        sends = []
        for dst in accepted:
            state = states[dst]
            shell = _new_message(Message)
            inner = shell.__dict__
            inner["kind"] = acc
            inner["ids"] = ()
            inner["data"] = (state.pop("side"),)
            inner["src"] = -1
            sends.append((dst, state["parent"], shell))
        inboxes = yield sends

        for dst, box in inboxes.items():
            state = states_get(dst)
            if state is None:
                continue
            for accept in box:
                if accept.kind != acc:
                    continue
                slot = "left" if accept.data[0] == "L" else "right"
                if state[slot] is not None:
                    raise ProtocolError(f"node {dst} gained two {slot} children")
                state[slot] = accept.src

        if accepted:
            active = sorted(carry + accepted, key=index_of)
        else:
            active = carry

    missing = [v for v, state in pairs if not state["in_tree"]]
    if missing:
        raise ProtocolError(
            f"controlled BFS left {len(missing)} nodes out of the tree "
            f"(first few: {missing[:5]})"
        )
    return head


def build_bbst(
    net: Network,
    ns: Optional[str] = None,
    members: Optional[Sequence[int]] = None,
    head: Optional[int] = None,
) -> Proto:
    """Protocol: full BBST construction (Theorem 1).

    Without arguments, bootstraps from the Gk path: undirectifies it,
    builds 𝓛, runs the controlled BFS.  With ``members``/``head``, builds
    on an existing undirected sub-path in ``ns``.

    Returns ``(ns, root)``.
    """
    if ns is None:
        ns = fresh_ns("bbst")
    if members is None:
        members = list(net.node_ids)
        head = yield from build_undirected_path(net, ns)
    if head is None:
        raise ProtocolError("BBST build requires a non-empty path")
    levels = yield from build_levels(net, ns, members)
    root = yield from controlled_bfs(net, ns, members, head, levels)
    return ns, root


def build_indexed_path(
    net: Network,
    ns: str,
    members: Sequence[int],
    head: int,
    publish_root: bool = False,
) -> Proto:
    """Protocol: full position machinery on an existing undirected path.

    Runs, in order: structure 𝓛, the controlled BFS (BBST), and the
    folded subtree-size + inorder-position pass — after which every
    member knows its ``pos``, its subtree ``range``, the ``total``
    length, and (optionally, ``publish_root``) the root's ID under
    ``root_id``.

    Returns the BBST root.  ``O(log n)`` rounds total (Theorem 1 +
    Corollary 2).
    """
    from repro.primitives.traversal import annotate_index, broadcast_from_root

    levels = yield from build_levels(net, ns, members)
    root = yield from controlled_bfs(net, ns, members, head, levels)
    yield from annotate_index(net, ns, members, root)
    if publish_root:
        yield from broadcast_from_root(
            net, ns, members, root, key="root_pack", value=(), value_ids=(root,)
        )
        for v in members:
            state = ns_state(net, v, ns)
            state["root_id"] = state["root_pack"][0][0]
    return root


def level_paths(net: Network, ns: str, members: Sequence[int], level: int) -> List[List[int]]:
    """Reconstruct the level-``level`` paths of 𝓛 (validation helper)."""
    succ_key = f"ls{level}"
    pred_key = f"lp{level}"
    heads = [
        v
        for v in members
        if ns_state(net, v, ns).get(pred_key) is None
        and (succ_key in ns_state(net, v, ns) or level == 0)
    ]
    paths = []
    for h in heads:
        path = [h]
        cursor = ns_state(net, h, ns).get(succ_key)
        while cursor is not None:
            path.append(cursor)
            cursor = ns_state(net, cursor, ns).get(succ_key)
        paths.append(path)
    return paths
