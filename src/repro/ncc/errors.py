"""Exception hierarchy for the NCC simulator.

Every violation of the NCC model's resource constraints raises a dedicated
exception so that test suites can assert *which* constraint a faulty
protocol broke.  All exceptions derive from :class:`NCCError`.
"""

from __future__ import annotations


class NCCError(Exception):
    """Base class for all NCC simulator errors."""


class UnknownRecipientError(NCCError):
    """A node attempted to send a message to an ID it does not know.

    In the NCC model a node can only address peers whose IDs it has learned
    (its "IP addresses").  The simulator refuses such sends outright: this
    is the constraint that makes NCC0 meaningfully harder than NCC1.
    """

    def __init__(self, src: int, dst: int) -> None:
        super().__init__(f"node {src} tried to message unknown ID {dst}")
        self.src = src
        self.dst = dst


class SendCapExceeded(NCCError):
    """A node attempted to send more than its per-round message budget."""

    def __init__(self, src: int, cap: int, attempted: int) -> None:
        super().__init__(
            f"node {src} attempted {attempted} sends in one round (cap {cap})"
        )
        self.src = src
        self.cap = cap
        self.attempted = attempted


class RecvCapExceeded(NCCError):
    """A node was addressed by more messages than its per-round budget.

    Only raised in ``strict`` enforcement mode; in ``defer`` mode surplus
    messages are queued and delivered in subsequent rounds (costing extra
    rounds, as a real congested node would).
    """

    def __init__(self, dst: int, cap: int, attempted: int) -> None:
        super().__init__(
            f"node {dst} addressed by {attempted} messages in one round (cap {cap})"
        )
        self.dst = dst
        self.cap = cap
        self.attempted = attempted


class MessageTooLarge(NCCError):
    """A message exceeded the O(log n)-bit word budget."""

    def __init__(self, words: int, max_words: int) -> None:
        super().__init__(f"message of {words} words exceeds budget of {max_words}")
        self.words = words
        self.max_words = max_words


class ProtocolError(NCCError):
    """A protocol-internal invariant was violated (a bug, not a model issue)."""


class RoundBudgetExceeded(NCCError):
    """A run crossed its caller-imposed round budget.

    Not a model violation: the budget is a *service* isolation knob
    (:meth:`~repro.ncc.network.Network.set_round_budget`, driven by
    ``RealizationRequest.max_rounds``) so one tenant's pathological
    request cannot monopolize an executor worker.
    """

    def __init__(self, budget: int, rounds: int) -> None:
        super().__init__(
            f"round budget exceeded: {rounds} rounds elapsed (budget {budget})"
        )
        self.budget = budget
        self.rounds = rounds


class DeadlineExceeded(NCCError):
    """A run crossed its caller-imposed wall-clock deadline.

    The wall-clock sibling of :class:`RoundBudgetExceeded`: a *service*
    isolation knob (:meth:`~repro.ncc.network.Network.set_wall_deadline`,
    driven by ``RealizationRequest.deadline_ms``), checked cooperatively
    at round boundaries so successful runs stay bit-identical.
    """

    def __init__(self, rounds: int) -> None:
        super().__init__(
            f"wall-clock deadline exceeded after {rounds} rounds"
        )
        self.rounds = rounds


class UnrealizableError(NCCError):
    """Raised by sequential oracles when an input admits no realization.

    Distributed protocols do *not* raise this: per the paper's contract they
    announce ``UNREALIZABLE`` through the network and return a verdict.
    """
