"""Round-execution engines: the reference spec and the batched fast path.

:meth:`~repro.ncc.network.Network.deliver` delegates to one of two
interchangeable engines, selected by ``NCCConfig.engine``:

``reference``
    The executable specification: a per-message loop that validates,
    meters and delivers each send individually, exactly as the model
    section of the paper describes it.  Kept deliberately simple — this
    is the code a reviewer audits for honesty.

``fast`` (default)
    A batched engine with identical enforcement semantics (knowledge
    gating, send/recv caps, word budgets, charged rounds) and
    bit-identical metrics, built for throughput:

    * **memoized word accounting** — scalar word counts are cached per
      ``(type, value)`` so the per-message size check is a dict lookup
      instead of a ``bit_length``/``ceil`` computation, and each size is
      computed once per message instead of once at validation and again
      at delivery;
    * **amortized cap checking** — sends are bucketed in one pass and the
      send-cap test is a single ``max()`` over per-sender counts rather
      than a per-message branch;
    * **in-place stamping** — a message submitted to a plan is
      engine-owned from then on (protocols build one fresh ``msg`` per
      send), so delivery fills the original instance's ``src`` slot
      directly instead of materializing a stamped copy per message;
    * **deferred-spill queue** — receivers with a defer-mode backlog are
      tracked in a pending set, so quiescent rounds do not re-scan every
      queue the run ever congested;
    * **columnar-native lane** — a plan staged as a
      :class:`~repro.ncc.wire.ColumnarRoundBatch` (recorded replays,
      wire-fed rounds) is validated, metered and delivered straight from
      its columns: cap checks are counting passes over the src/receiver
      columns, word accounting one pass over the payload columns, and
      inboxes are lazy column slices that build ``Message`` objects only
      when touched (``Network.engine_stats()`` meters how many stayed
      columnar).

**Equivalence guarantee.**  The fast path first validates the whole plan
without mutating any network state.  If (and only if) the round would
violate a model constraint, it discards its batch and replays the plan
through the reference loop, which raises the same exception with the
same attributes and the same partial delivery state.  Violation-free
rounds — the only rounds a correct protocol ever produces — take the
batched path, whose delivered inboxes (per-receiver FIFO: deferred
backlog first, then plan order), knowledge updates and meters match the
reference loop exactly.  ``tests/test_differential_engines.py``,
``tests/test_engine_cap_fuzz.py`` and ``tests/test_engine_determinism.py``
enforce this equivalence property.
"""

from __future__ import annotations

from collections import Counter
from operator import itemgetter
from time import perf_counter
from typing import TYPE_CHECKING, Dict, List, Tuple, Type

from repro.ncc.config import EnforcementMode
from repro.ncc.errors import (
    MessageTooLarge,
    ProtocolError,
    RecvCapExceeded,
    SendCapExceeded,
    UnknownRecipientError,
)
from repro.ncc.message import (
    Message,
    _scalar_words,
    scalar_words_cached,
    word_cache_evictions,
    word_caches,
)
from repro.ncc.wire import (
    ColumnarInbox,
    materialization_counts,
    note_delivered_columnar,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ncc.network import Network, RoundPlan

Inboxes = Dict[int, List[Message]]


def engine_counts(word_bits: int) -> Dict[str, int]:
    """The shared engine-observability counters (see
    :meth:`~repro.ncc.network.Network.engine_stats`): process-wide
    lazy-materialisation meters plus this width's word-cache evictions."""
    counts = materialization_counts()
    counts["word_cache_evictions"] = word_cache_evictions(word_bits)
    return counts


class ReferenceEngine:
    """Per-message validation and delivery — the executable model spec."""

    name = "reference"

    def __init__(self, net: "Network") -> None:
        self.net = net

    def reset(self) -> None:
        """Forget per-run state (:meth:`Network.reset` hook) — stateless."""

    def stats(self) -> Dict[str, int]:
        """Engine-observability counters (:meth:`Network.engine_stats`)."""
        return engine_counts(self.net.word_bits)

    def deliver(self, plan: "RoundPlan") -> Inboxes:
        """Validate, enforce and deliver one round, message by message."""
        net = self.net
        # Phase observer: only when this engine is the network's own
        # (a violation replay inside fast/sharded reports through the
        # wrapping engine instead, so each round is observed once).
        observer = net.round_observer if net.engine is self else None
        t0 = perf_counter() if observer is not None else 0.0
        per_sender: Dict[int, int] = {}
        staged: Dict[int, List[Message]] = {}

        for src, dst, message in plan.sends:
            if src not in net.known:
                raise ProtocolError(f"unknown sender ID {src}")
            if dst == src:
                raise ProtocolError(f"node {src} attempted a self-send")
            if dst not in net.known[src]:
                raise UnknownRecipientError(src, dst)
            words = message.words(net.word_bits)
            if words > net.config.max_words:
                raise MessageTooLarge(words, net.config.max_words)
            per_sender[src] = attempted = per_sender.get(src, 0) + 1
            if attempted > net.send_cap:
                raise SendCapExceeded(src, net.send_cap, attempted)
            staged.setdefault(dst, []).append(message.with_src(src))

        t1 = perf_counter() if observer is not None else 0.0
        inboxes: Inboxes = {}
        mode = net.config.enforcement
        receivers = set(staged)
        receivers.update(v for v, q in net._deferred.items() if q)
        for dst in receivers:
            queue = net._deferred[dst]
            queue.extend(staged.get(dst, ()))
            arrivals = len(queue)
            if mode is EnforcementMode.STRICT and arrivals > net.recv_cap:
                raise RecvCapExceeded(dst, net.recv_cap, arrivals)
            if mode is EnforcementMode.UNBOUNDED:
                take = arrivals
            else:
                take = min(arrivals, net.recv_cap)
            delivered = [queue.popleft() for _ in range(take)]
            if delivered:
                inboxes[dst] = delivered
                for message in delivered:
                    net.known[dst].add(message.src)
                    for known_id in message.ids:
                        if known_id != dst:
                            net.known[dst].add(known_id)
                    net.messages_delivered += 1
                    net.words_delivered += message.words(net.word_bits)

        net.rounds += 1
        net.simulated_rounds += 1
        load = max((len(v) for v in inboxes.values()), default=0)
        net.max_round_load = max(net.max_round_load, load)
        for tracer in net.tracers:
            tracer(net.rounds, inboxes)
        if observer is not None:
            observer(
                net.rounds,
                {"validate": t1 - t0, "deliver": perf_counter() - t1},
                load,
                net.pending_deferred(),
            )
        return inboxes


class FastEngine:
    """Batched round execution; falls back to the reference loop on any
    model violation so errors and partial state stay bit-identical."""

    name = "fast"

    def __init__(self, net: "Network") -> None:
        self.net = net
        self._reference = ReferenceEngine(net)
        # Scalar word-count caches — the process-wide pair for this
        # network's word width (see repro.ncc.message.word_caches), so
        # every engine and pooled lease at the same width shares warm
        # entries.  Ints get their own cache (keyed by value, the hot
        # case); other types go through a (type, value) key because
        # equal-comparing scalars of different types (2**60 vs 2.0**60)
        # can occupy different word counts.
        self._int_words, self._scalar_words = word_caches(net.word_bits)
        # Receivers whose defer-mode backlog is non-empty.
        self._spill_pending: set = set()

    def reset(self) -> None:
        """Forget per-run state (:meth:`Network.reset` hook).

        Only the defer-mode pending set is per-run.  The word-count
        caches are *pure* memoization — ``word_bits`` is fixed for the
        network's lifetime and the cached count is a function of the
        value alone — so a warm-pool lease keeps them, which is part of
        the point of reusing networks.
        """
        self._spill_pending.clear()

    # -------------------------------------------------------------- #
    # Word accounting                                                #
    # -------------------------------------------------------------- #

    def _words_of(self, message: Message) -> int:
        """Memoized :meth:`Message.words` for this network's word width.

        Delegates to the shared :func:`repro.ncc.message.
        scalar_words_cached` dispatch; the same dispatch is deliberately
        inlined in :meth:`deliver`'s pass-1 loop (function calls are too
        expensive there) — keep that copy in lockstep with the shared
        implementation.
        """
        total = len(message.ids)
        data = message.data
        if data:
            int_cache = self._int_words
            scalar_cache = self._scalar_words
            word_bits = self.net.word_bits
            for value in data:
                total += scalar_words_cached(
                    value, word_bits, int_cache, scalar_cache
                )
        return total

    def stats(self) -> Dict[str, int]:
        """Engine-observability counters (:meth:`Network.engine_stats`)."""
        return engine_counts(self.net.word_bits)

    # -------------------------------------------------------------- #
    # The batched round                                              #
    # -------------------------------------------------------------- #

    def deliver(self, plan: "RoundPlan") -> Inboxes:
        batch = plan._batch
        if batch is not None and plan._sends is None and not self._spill_pending:
            # Columnar-staged plan, no defer backlog anywhere: the
            # native lane — validation and metering as column passes,
            # inboxes as lazy column slices, zero Message construction.
            # (A backlog needs the per-receiver FIFO merge below, which
            # materialises anyway, so such rounds take the object lane.)
            return self._deliver_columnar(plan, batch)
        return self._deliver_objects(plan)

    def _deliver_objects(self, plan: "RoundPlan") -> Inboxes:
        net = self.net
        observer = net.round_observer
        t0 = perf_counter() if observer is not None else 0.0
        known = net.known
        known_get = known.get
        max_words = net.config.max_words
        int_cache = self._int_words
        int_get = int_cache.get
        scalar_cache = self._scalar_words
        scalar_get = scalar_cache.get
        word_bits = net.word_bits
        # One word_caches() call per round keeps the shared caches'
        # growth bound enforced on this hottest writer path too (the
        # inlined inserts below bypass it) — the trim itself lives in
        # one place, repro/ncc/message.py.
        word_caches(word_bits)

        # Pass 1 — validate, meter and bucket in one sweep, mutating no
        # network state.  Messages are stamped *in place* (their ``src``
        # slot is filled) so a violation-free round hands the staged
        # buckets out as the inboxes verbatim with zero per-message
        # allocation.  That is sound because a message submitted to a
        # plan is engine-owned from that point on: protocol code builds
        # one fresh ``msg(...)`` per send and never touches the object
        # again, and ``src`` is a pure function of the send tuple, so
        # even replaying a recorded plan re-stamps identical values.
        # The total word count is accumulated once for the whole round.
        # Scheduler plans cluster a task's consecutive sends, so the
        # sender's knowledge set is cached across iterations.
        sends = plan.sends
        staged: Dict[int, List[Message]] = {}
        staged_get = staged.get
        # dst -> flat list of IDs the receiver learns (senders + payload
        # IDs), filled alongside the buckets so the knowledge pass is one
        # C-speed ``set.update`` per receiver instead of per message.
        gains: Dict[int, List[int]] = {}
        round_words = 0
        violation = False
        last_src = None
        known_to_src = None
        last_dst = None
        bucket: List[Message] = []
        gained: List[int] = []
        for src, dst, message in sends:
            if src != last_src:
                known_to_src = known_get(src)
                if known_to_src is None:
                    violation = True
                    break
                last_src = src
            # A self-send also fails here: src never appears in its own
            # knowledge set (normalised at construction).
            if dst not in known_to_src:
                violation = True
                break
            ids = message.ids
            words = len(ids)
            data = message.data
            if data:
                # Inlined copy of scalar_words_cached's dispatch — keep
                # in lockstep (repro/ncc/message.py).
                try:
                    for value in data:
                        cls = value.__class__
                        if cls is int:
                            scalar = int_get(value)
                            if scalar is None:
                                scalar = _scalar_words(value, word_bits)
                                int_cache[value] = scalar
                        elif cls is float or cls is bool or value is None:
                            scalar = 1
                        else:
                            key = (cls, value)
                            scalar = scalar_get(key)
                            if scalar is None:
                                scalar = _scalar_words(value, word_bits)
                                scalar_cache[key] = scalar
                        words += scalar
                except TypeError:
                    # Non-scalar payload (unhashable): the reference
                    # replay raises the canonical TypeError with
                    # reference-identical partial state.
                    violation = True
                    break
            if words > max_words:
                violation = True
                break
            round_words += words
            message.__dict__["src"] = src
            if dst == last_dst:
                bucket.append(message)
                gained.append(src)
                if ids:
                    gained.extend(ids)
            else:
                last_dst = dst
                bucket = staged_get(dst)
                if bucket is None:
                    staged[dst] = bucket = [message]
                    gains[dst] = gained = [src, *ids] if ids else [src]
                else:
                    bucket.append(message)
                    gained = gains[dst]
                    gained.append(src)
                    if ids:
                        gained.extend(ids)

        # Amortized cap checks: one C-speed counting pass per round
        # instead of a per-message branch.  A round whose *total* send
        # count fits under a cap cannot overdrive any single node.
        total_sends = len(sends)
        if not violation and total_sends > net.send_cap:
            per_sender = Counter(map(itemgetter(0), sends))
            violation = max(per_sender.values()) > net.send_cap

        mode = net.config.enforcement
        deferred = net._deferred
        pending = self._spill_pending
        recv_cap = net.recv_cap
        # Biggest staged bucket: the strict-mode receive check, and (when
        # nothing spills) the round's max inbox load, in one C-speed pass.
        biggest = max(map(len, staged.values())) if staged else 0
        if not violation and mode is EnforcementMode.STRICT:
            if biggest > recv_cap:
                violation = True
            elif pending:
                for dst in pending:
                    arrivals = len(deferred[dst]) + len(staged.get(dst, ()))
                    if arrivals > recv_cap:
                        violation = True
                        break

        t1 = perf_counter() if observer is not None else 0.0

        if violation:
            # Replay through the reference loop: it raises the exact
            # exception (or, if the batch check over-approximated,
            # returns the exact result) with reference-identical state.
            # The observer sees the replay as a ``fallback`` phase; the
            # reference engine stays silent here (it only reports when
            # it is the network's own engine).
            try:
                return self._reference.deliver(plan)
            finally:
                self._spill_pending = {
                    v for v, q in net._deferred.items() if q
                }
                if observer is not None:
                    observer(
                        net.rounds,
                        {
                            "validate": t1 - t0,
                            "fallback": perf_counter() - t1,
                        },
                        biggest,
                        net.pending_deferred(),
                    )

        # Pass 2 — deliver.  No model constraint can fail from here on.
        messages_delivered = len(sends)
        max_load = 0

        if not pending:
            # Fast lane: no defer-mode backlog anywhere.  Everything
            # staged is delivered in place unless defer mode must spill
            # a bucket's tail over the receive cap.
            if mode is EnforcementMode.DEFER and biggest > recv_cap:
                over = [
                    dst
                    for dst, spill_bucket in staged.items()
                    if len(spill_bucket) > recv_cap
                ]
                for dst in over:
                    spill_bucket = staged[dst]
                    tail = spill_bucket[recv_cap:]
                    deferred[dst].extend(tail)
                    pending.add(dst)
                    messages_delivered -= len(tail)
                    for message in tail:
                        round_words -= self._words_of(message)
                    head = spill_bucket[:recv_cap]
                    if head:
                        staged[dst] = head
                        gained = []
                        for message in head:
                            gained.append(message.src)
                            gained.extend(message.ids)
                        gains[dst] = gained
                    else:
                        del staged[dst]
                        del gains[dst]
                biggest = max(map(len, staged.values())) if staged else 0
            # A node never knows itself: pour each receiver's gains in
            # with one C-speed update, then repair a possible self-entry
            # once per receiver, instead of scanning each payload tuple
            # for dst.
            for dst, gained in gains.items():
                known_to_dst = known[dst]
                known_to_dst.update(gained)
                known_to_dst.discard(dst)
            inboxes: Inboxes = staged
            max_load = biggest
            words_delivered = round_words
        else:
            # Slow lane: at least one receiver has a backlog.  Merge
            # per-receiver FIFO (backlog first, then plan order), spill
            # surpluses, and meter per delivered message.
            inboxes = {}
            messages_delivered = 0
            words_delivered = 0
            unbounded = mode is EnforcementMode.UNBOUNDED
            receivers: List[int] = list(staged)
            receivers.extend(v for v in pending if v not in staged)
            for dst in receivers:
                backlog = deferred.get(dst)
                bucket = staged.get(dst)
                if backlog:
                    if bucket:
                        backlog.extend(bucket)
                    arrivals = len(backlog)
                    take = arrivals if unbounded else min(arrivals, recv_cap)
                    delivered = [backlog.popleft() for _ in range(take)]
                    if not backlog:
                        pending.discard(dst)
                else:
                    arrivals = len(bucket)
                    spill = 0 if unbounded else arrivals - recv_cap
                    if spill > 0:
                        delivered = bucket[:recv_cap]
                        deferred[dst].extend(bucket[recv_cap:])
                        pending.add(dst)
                    else:
                        delivered = bucket
                if not delivered:
                    continue
                inboxes[dst] = delivered
                load = len(delivered)
                if load > max_load:
                    max_load = load
                known_to_dst = known[dst]
                add_known = known_to_dst.add
                for message in delivered:
                    add_known(message.src)
                    ids = message.ids
                    if ids:
                        if dst in ids:
                            for known_id in ids:
                                if known_id != dst:
                                    add_known(known_id)
                        else:
                            known_to_dst.update(ids)
                    messages_delivered += 1
                    words_delivered += self._words_of(message)

        net.messages_delivered += messages_delivered
        net.words_delivered += words_delivered
        net.rounds += 1
        net.simulated_rounds += 1
        if max_load > net.max_round_load:
            net.max_round_load = max_load
        if net.tracers:
            for tracer in net.tracers:
                tracer(net.rounds, inboxes)
        if observer is not None:
            observer(
                net.rounds,
                {"validate": t1 - t0, "deliver": perf_counter() - t1},
                max_load,
                net.pending_deferred(),
            )
        return inboxes

    # -------------------------------------------------------------- #
    # The columnar-native round                                      #
    # -------------------------------------------------------------- #

    def _deliver_columnar(self, plan: "RoundPlan", batch) -> Inboxes:
        """Deliver a columnar-staged round straight from its columns.

        Semantically the object lane, entry for entry — same gating
        order, same violation -> reference-replay contract, same meters
        — but the per-message work shrinks to the knowledge-gating dict
        probes and an index append: word budgets check as one ``max()``
        and sum as one ``sum()`` over the word column, send caps count
        with one ``Counter`` over the src column, and the staged buckets
        become :class:`~repro.ncc.wire.ColumnarInbox` slices that build
        ``Message`` objects only if the round's consumer touches them.
        Precondition (checked by :meth:`deliver`): no defer backlog.
        """
        net = self.net
        observer = net.round_observer
        t0 = perf_counter() if observer is not None else 0.0
        known = net.known
        known_get = known.get
        srcs = batch.srcs
        dsts = batch.dsts
        ids_col = batch.ids
        max_words = net.config.max_words
        # Word accounting: a batch that crossed a process boundary
        # already carries its word column (words ride the wire — a
        # relayed column is never re-sized); a locally-staged batch has
        # none, and the gating sweep below computes it inline, exactly
        # the object lane's fused dispatch.  Either way the shared
        # caches' growth bound gets its once-per-round enforcement.
        words_col = batch.words
        violation = words_col is not None and not batch.words_ok
        fused = words_col is None and not violation
        round_words = 0
        if fused:
            words_col = []
            append_word = words_col.append
            data_col = batch.data
            word_bits = net.word_bits
            word_caches(word_bits)
            int_cache = self._int_words
            int_get = int_cache.get
            scalar_cache = self._scalar_words
            scalar_get = scalar_cache.get
        staged: Dict[int, List[int]] = {}
        staged_get = staged.get
        gains: Dict[int, List[int]] = {}
        # Two copies of the gating sweep — fused (computing the word
        # column inline, the object lane's dispatch) and lean (words
        # shipped with the batch) — so the hottest loop carries no
        # per-entry mode branch.  Keep the shared skeleton in lockstep.
        if not violation and fused:
            last_src = None
            known_to_src = None
            last_dst = None
            bucket: List[int] = []
            gained: List[int] = []
            for i, (src, dst) in enumerate(zip(srcs, dsts)):
                if src != last_src:
                    known_to_src = known_get(src)
                    if known_to_src is None:
                        violation = True
                        break
                    last_src = src
                # A self-send also fails here: src never appears in its
                # own knowledge set (normalised at construction).
                if dst not in known_to_src:
                    violation = True
                    break
                ids = ids_col[i]
                words = len(ids)
                data = data_col[i]
                if data:
                    # Inlined copy of scalar_words_cached's dispatch —
                    # keep in lockstep (repro/ncc/message.py).
                    try:
                        for value in data:
                            cls = value.__class__
                            if cls is int:
                                scalar = int_get(value)
                                if scalar is None:
                                    scalar = _scalar_words(value, word_bits)
                                    int_cache[value] = scalar
                            elif cls is float or cls is bool or value is None:
                                scalar = 1
                            else:
                                key = (cls, value)
                                scalar = scalar_get(key)
                                if scalar is None:
                                    scalar = _scalar_words(value, word_bits)
                                    scalar_cache[key] = scalar
                            words += scalar
                    except TypeError:
                        # Non-scalar payload: the reference replay
                        # raises the canonical TypeError.
                        violation = True
                        break
                if words > max_words:
                    violation = True
                    break
                append_word(words)
                round_words += words
                if dst == last_dst:
                    bucket.append(i)
                    gained.append(src)
                    if ids:
                        gained.extend(ids)
                else:
                    last_dst = dst
                    bucket = staged_get(dst)
                    if bucket is None:
                        staged[dst] = bucket = [i]
                        gains[dst] = gained = [src, *ids] if ids else [src]
                    else:
                        bucket.append(i)
                        gained = gains[dst]
                        gained.append(src)
                        if ids:
                            gained.extend(ids)
        elif not violation:
            last_src = None
            known_to_src = None
            last_dst = None
            bucket = []
            gained = []
            for i, (src, dst) in enumerate(zip(srcs, dsts)):
                if src != last_src:
                    known_to_src = known_get(src)
                    if known_to_src is None:
                        violation = True
                        break
                    last_src = src
                if dst not in known_to_src:
                    violation = True
                    break
                ids = ids_col[i]
                if dst == last_dst:
                    bucket.append(i)
                    gained.append(src)
                    if ids:
                        gained.extend(ids)
                else:
                    last_dst = dst
                    bucket = staged_get(dst)
                    if bucket is None:
                        staged[dst] = bucket = [i]
                        gains[dst] = gained = [src, *ids] if ids else [src]
                    else:
                        bucket.append(i)
                        gained = gains[dst]
                        gained.append(src)
                        if ids:
                            gained.extend(ids)

        # Counting passes over the dense columns, all at C speed: the
        # word budget as one max() (shipped columns only — the fused
        # sweep checked per entry), the send cap as one Counter (only
        # when the round total could overdrive a sender at all).
        total_sends = len(srcs)
        if not violation:
            if not fused:
                if words_col and max(words_col) > max_words:
                    violation = True
                else:
                    round_words = sum(words_col)
            if not violation and total_sends > net.send_cap:
                per_sender = Counter(srcs)
                violation = max(per_sender.values()) > net.send_cap
            if not violation and fused:
                # The batch now owns its (complete) word column: a
                # defer spill below re-reads it, and a later wire
                # crossing ships it instead of re-sizing.
                batch.words = words_col

        mode = net.config.enforcement
        deferred = net._deferred
        pending = self._spill_pending  # empty (lane precondition)
        recv_cap = net.recv_cap
        biggest = max(map(len, staged.values())) if staged else 0
        if (
            not violation
            and mode is EnforcementMode.STRICT
            and biggest > recv_cap
        ):
            violation = True

        t1 = perf_counter() if observer is not None else 0.0

        if violation:
            # Replay through the reference loop (this converts the plan
            # to object staging — the only construction this lane ever
            # causes): exact exception, reference-identical state.
            try:
                return self._reference.deliver(plan)
            finally:
                self._spill_pending = {
                    v for v, q in net._deferred.items() if q
                }
                if observer is not None:
                    observer(
                        net.rounds,
                        {
                            "validate": t1 - t0,
                            "fallback": perf_counter() - t1,
                        },
                        biggest,
                        net.pending_deferred(),
                    )

        # Deliver.  No model constraint can fail from here on.
        # (round_words was accumulated by the fused sweep or summed from
        # the shipped column above.)
        messages_delivered = total_sends
        if mode is EnforcementMode.DEFER and biggest > recv_cap:
            # Spilled tails leave the columns: the backlog mirror holds
            # real messages (a later round's object lane delivers them),
            # so the over-cap tail is the one place this lane
            # materialises.
            materialize = batch.materialize
            over = [
                dst
                for dst, spill_bucket in staged.items()
                if len(spill_bucket) > recv_cap
            ]
            for dst in over:
                spill_bucket = staged[dst]
                tail = spill_bucket[recv_cap:]
                deferred[dst].extend(materialize(i) for i in tail)
                pending.add(dst)
                messages_delivered -= len(tail)
                for i in tail:
                    round_words -= words_col[i]
                head = spill_bucket[:recv_cap]
                if head:
                    staged[dst] = head
                    gained = []
                    for i in head:
                        gained.append(srcs[i])
                        gained.extend(ids_col[i])
                    gains[dst] = gained
                else:
                    del staged[dst]
                    del gains[dst]
            biggest = max(map(len, staged.values())) if staged else 0
        for dst, gained in gains.items():
            known_to_dst = known[dst]
            known_to_dst.update(gained)
            known_to_dst.discard(dst)
        inboxes: Inboxes = {
            dst: ColumnarInbox(batch, bucket)
            for dst, bucket in staged.items()
        }
        if batch.messages is None:
            # Field-mode batch: these entries were delivered with no
            # object in existence — the lazy representation's win.
            note_delivered_columnar(messages_delivered)

        net.messages_delivered += messages_delivered
        net.words_delivered += round_words
        net.rounds += 1
        net.simulated_rounds += 1
        if biggest > net.max_round_load:
            net.max_round_load = biggest
        if net.tracers:
            for tracer in net.tracers:
                tracer(net.rounds, inboxes)
        if observer is not None:
            observer(
                net.rounds,
                {"validate": t1 - t0, "deliver": perf_counter() - t1},
                biggest,
                net.pending_deferred(),
            )
        return inboxes


#: Registry of engine names -> classes (the ``NCCConfig.engine`` domain).
ENGINES: Dict[str, Type] = {
    ReferenceEngine.name: ReferenceEngine,
    FastEngine.name: FastEngine,
}

#: Engines resolved on first use (import cycle: they import this module
#: for the reference fallback).  ``"sharded"`` is the multiprocess
#: barrier-exchange engine (:mod:`repro.ncc.sharded`).
_LAZY_ENGINES = {"sharded": ("repro.ncc.sharded", "ShardedEngine")}


def engine_names() -> Tuple[str, ...]:
    """All registered engine names (the ``NCCConfig.engine`` domain)."""
    return tuple(sorted(set(ENGINES) | set(_LAZY_ENGINES)))


def make_engine(name: str, net: "Network"):
    """Instantiate the engine ``name`` ("fast", "reference" or "sharded").

    Beyond ``deliver``/``reset``, engines may implement two optional
    hooks the :class:`~repro.ncc.network.Network` dispatches when
    present: ``note_grant(u, v)`` (out-of-band knowledge grants, so
    replicated state can follow) and ``close()`` (release external
    resources such as worker processes).
    """
    engine_cls = ENGINES.get(name)
    if engine_cls is None:
        lazy = _LAZY_ENGINES.get(name)
        if lazy is None:
            raise ValueError(
                f"unknown NCC engine {name!r}; expected one of "
                f"{list(engine_names())}"
            )
        import importlib

        engine_cls = getattr(importlib.import_module(lazy[0]), lazy[1])
        ENGINES[name] = engine_cls
    return engine_cls(net)
